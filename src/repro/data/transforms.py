"""Dataset transforms: feature hashing, normalisation, subsampling.

The hashing trick is ubiquitous in the large-scale sparse-learning
systems SketchML targets (it is how 29M–58M-feature datasets like the
paper's are produced in the first place).  These transforms operate on
:class:`~repro.data.sparse.SparseDataset` instances and reuse the
library's seeded hash families.
"""

from __future__ import annotations

import numpy as np

from ..sketch.hashing import build_hash_family
from .sparse import SparseDataset

__all__ = ["hash_features", "normalize_rows", "subsample_rows"]


def hash_features(
    dataset: SparseDataset, target_dim: int, seed: int = 0
) -> SparseDataset:
    """Apply the hashing trick: map features into ``target_dim`` buckets.

    Colliding features within a row are summed with a sign hash (the
    Weinberger et al. construction), which keeps inner products
    approximately unbiased.

    Args:
        dataset: input dataset.
        target_dim: hashed dimension (typically << num_features).
        seed: seed for the bucket and sign hashes.
    """
    if target_dim <= 0:
        raise ValueError("target_dim must be positive")
    bucket_hash = build_hash_family(1, target_dim, seed)[0]
    sign_hash = build_hash_family(1, 2, seed + 0xD1CE)[0]
    hashed_cols = bucket_hash(dataset.indices)
    signs = sign_hash(dataset.indices) * 2 - 1
    signed_data = dataset.data * signs

    indptr = np.zeros(dataset.num_rows + 1, dtype=np.int64)
    indices_chunks = []
    data_chunks = []
    for i in range(dataset.num_rows):
        start, end = dataset.indptr[i], dataset.indptr[i + 1]
        cols = hashed_cols[start:end]
        vals = signed_data[start:end]
        # Sum duplicates created by collisions, keep ascending order.
        uniq, inverse = np.unique(cols, return_inverse=True)
        summed = np.zeros(uniq.size)
        np.add.at(summed, inverse, vals)
        nonzero = summed != 0.0
        indices_chunks.append(uniq[nonzero])
        data_chunks.append(summed[nonzero])
        indptr[i + 1] = indptr[i] + int(nonzero.sum())
    indices = (
        np.concatenate(indices_chunks) if indices_chunks else np.empty(0, np.int64)
    )
    data = np.concatenate(data_chunks) if data_chunks else np.empty(0)
    return SparseDataset(indptr, indices, data, dataset.labels.copy(), target_dim)


def normalize_rows(dataset: SparseDataset) -> SparseDataset:
    """L2-normalise every row (empty rows are left untouched)."""
    data = dataset.data.copy()
    for i in range(dataset.num_rows):
        start, end = dataset.indptr[i], dataset.indptr[i + 1]
        norm = np.linalg.norm(data[start:end])
        if norm > 0:
            data[start:end] /= norm
    return SparseDataset(
        dataset.indptr.copy(),
        dataset.indices.copy(),
        data,
        dataset.labels.copy(),
        dataset.num_features,
    )


def subsample_rows(
    dataset: SparseDataset, fraction: float, seed: int = 0
) -> SparseDataset:
    """Random row subsample (without replacement)."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    keep = max(1, int(round(dataset.num_rows * fraction)))
    rows = np.sort(rng.choice(dataset.num_rows, size=keep, replace=False))
    return dataset.subset(rows)
