"""Train/test splitting and worker partitioning.

The paper's protocol (§4.1): 75% train / 25% test, and the train split
partitioned row-wise over ``W`` workers (data-parallel SGD).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .sparse import SparseDataset

__all__ = ["train_test_split", "partition_rows"]


def train_test_split(
    dataset: SparseDataset, test_fraction: float = 0.25, seed: int = 0
) -> Tuple[SparseDataset, SparseDataset]:
    """Random row split into (train, test) with the paper's 75/25 default."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(dataset.num_rows)
    num_test = max(1, int(round(dataset.num_rows * test_fraction)))
    if num_test >= dataset.num_rows:
        raise ValueError("test_fraction leaves no training rows")
    test_rows = np.sort(order[:num_test])
    train_rows = np.sort(order[num_test:])
    return dataset.subset(train_rows), dataset.subset(test_rows)


def partition_rows(num_rows: int, num_workers: int, seed: int = 0) -> List[np.ndarray]:
    """Shuffle rows and deal them into ``num_workers`` near-equal parts."""
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    if num_rows < num_workers:
        raise ValueError(
            f"cannot partition {num_rows} rows across {num_workers} workers"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_rows)
    return [np.sort(chunk) for chunk in np.array_split(order, num_workers)]
