"""Sparse data substrate: structures, synthetic generators, I/O, splits."""

from .io import read_libsvm, write_libsvm
from .sparse import SparseDataset, SparseVector
from .splits import partition_rows, train_test_split
from .synthetic import (
    CTR_LIKE,
    KDD10_LIKE,
    KDD12_LIKE,
    SyntheticProfile,
    ctr_like,
    generate_dataset,
    generate_profile,
    kdd10_like,
    kdd12_like,
    mnist_like,
)
from .transforms import hash_features, normalize_rows, subsample_rows

__all__ = [
    "SparseVector",
    "SparseDataset",
    "read_libsvm",
    "write_libsvm",
    "train_test_split",
    "partition_rows",
    "SyntheticProfile",
    "KDD10_LIKE",
    "KDD12_LIKE",
    "CTR_LIKE",
    "generate_dataset",
    "generate_profile",
    "kdd10_like",
    "kdd12_like",
    "ctr_like",
    "mnist_like",
    "hash_features",
    "normalize_rows",
    "subsample_rows",
]
