"""Synthetic sparse datasets calibrated to the paper's workloads.

The paper trains on KDD CUP 2010, KDD CUP 2012, and a proprietary
Tencent CTR dataset (Table 1).  None of those is shippable here, so we
generate laptop-scale equivalents that preserve the two properties every
experiment depends on:

* **Sparsity** — high-dimensional rows with few nonzeros, feature
  popularity following a power law (a handful of very common features,
  a long tail of rare ones).  This is what makes gradients sparse and
  makes delta-binary keys cheap (popular features cluster at low ids).
* **Nonuniform gradient values** — with power-law features and
  label noise, per-batch gradients concentrate near zero with heavy
  tails, reproducing Figure 4.

Each ``*_like`` profile scales the real dataset's (N, D, nnz/row) down
by a constant factor while keeping density ratios: KDD12-like is
sparser than CTR-like, as §4.3.2 relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sparse import SparseDataset

__all__ = [
    "SyntheticProfile",
    "KDD10_LIKE",
    "KDD12_LIKE",
    "CTR_LIKE",
    "generate_dataset",
    "generate_profile",
    "kdd10_like",
    "kdd12_like",
    "ctr_like",
    "mnist_like",
]


@dataclass(frozen=True)
class SyntheticProfile:
    """Recipe for a synthetic sparse dataset.

    Attributes:
        name: profile label used in benchmark output.
        num_rows: instances ``N``.
        num_features: model dimension ``D``.
        avg_nnz_per_row: mean nonzeros per instance.
        zipf_exponent: power-law exponent of feature popularity
            (closer to 1 → heavier head, gradients more nonuniform).
        task: ``"classification"`` (labels in {-1, +1}) or
            ``"regression"`` (continuous labels).
        label_noise: flip probability (classification) or Gaussian noise
            scale (regression).
    """

    name: str
    num_rows: int
    num_features: int
    avg_nnz_per_row: float
    zipf_exponent: float = 1.1
    task: str = "classification"
    label_noise: float = 0.05


#: KDD CUP 2010 (19M × 29M, ~35 nnz/row) scaled to laptop size.
KDD10_LIKE = SyntheticProfile(
    name="kdd10-like",
    num_rows=12_000,
    num_features=200_000,
    avg_nnz_per_row=35.0,
)

#: KDD CUP 2012 (149M × 54M) — sparser than CTR, bigger than KDD10.
KDD12_LIKE = SyntheticProfile(
    name="kdd12-like",
    num_rows=16_000,
    num_features=400_000,
    avg_nnz_per_row=30.0,
)

#: Tencent CTR (300M × 58M, denser rows): "KDD12 is sparser than CTR".
#: The density gap is exaggerated relative to the raw row counts so the
#: paper's consequence — CTR batches dedup more, making the workload
#: relatively computation-bound and the compression speedup smaller
#: (§4.3.2) — survives the ~10³× downscaling.
CTR_LIKE = SyntheticProfile(
    name="ctr-like",
    num_rows=12_000,
    num_features=60_000,
    avg_nnz_per_row=320.0,
    zipf_exponent=1.3,
)

#: KDD12 variant with a hotter feature head (zipf 1.6).  At the paper's
#: data scale every worker's batch touches all frequent features, so
#: per-worker message sizes *saturate* and total gather volume grows
#: with the worker count — the regime behind Adam's deterioration at 50
#: workers in Fig. 11.  The laptop-scale default profile (zipf 1.1)
#: never reaches saturation, so the scalability bench uses this one.
KDD12_HOTHEAD = SyntheticProfile(
    name="kdd12-hothead",
    num_rows=16_000,
    num_features=400_000,
    avg_nnz_per_row=30.0,
    zipf_exponent=1.6,
)


def _feature_popularity(profile: SyntheticProfile) -> np.ndarray:
    """Zipf-style sampling weights over feature ids."""
    ranks = np.arange(1, profile.num_features + 1, dtype=np.float64)
    weights = ranks ** (-profile.zipf_exponent)
    return weights / weights.sum()


def generate_dataset(
    profile: SyntheticProfile, seed: int = 0, scale: float = 1.0
) -> SparseDataset:
    """Generate a :class:`SparseDataset` from a profile.

    Args:
        profile: the dataset recipe.
        seed: PRNG seed; the same (profile, seed, scale) always yields
            the same dataset.
        scale: multiplier on ``num_rows`` for quick smoke runs
            (``scale=0.1`` → a tenth of the rows).

    The generator draws a sparse ground-truth model, samples each row's
    features from the Zipf popularity law, draws feature values from a
    log-normal (mimicking count-like features), and labels rows from
    the ground-truth score plus noise.
    """
    rng = np.random.default_rng(seed)
    num_rows = max(1, int(round(profile.num_rows * scale)))
    popularity = _feature_popularity(profile)

    # Sparse ground-truth model over the popular head + random tail.
    true_support_size = max(10, profile.num_features // 100)
    head = np.arange(min(true_support_size // 2, profile.num_features))
    tail = rng.choice(
        profile.num_features, size=true_support_size - head.size, replace=False
    )
    support = np.unique(np.concatenate([head, tail]))
    true_theta = np.zeros(profile.num_features)
    true_theta[support] = rng.normal(scale=1.0, size=support.size)

    row_nnz = rng.poisson(profile.avg_nnz_per_row, size=num_rows)
    row_nnz = np.clip(row_nnz, 1, profile.num_features)
    total_nnz = int(row_nnz.sum())
    # Sample all features at once, then dedupe within each row.
    sampled = rng.choice(profile.num_features, size=total_nnz, p=popularity)
    values = rng.lognormal(mean=0.0, sigma=0.5, size=total_nnz)

    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    indices_chunks = []
    data_chunks = []
    cursor = 0
    for i, nnz in enumerate(row_nnz):
        cols = sampled[cursor:cursor + nnz]
        vals = values[cursor:cursor + nnz]
        cursor += nnz
        cols, first = np.unique(cols, return_index=True)
        indices_chunks.append(cols)
        data_chunks.append(vals[first])
        indptr[i + 1] = indptr[i] + cols.size
    indices = np.concatenate(indices_chunks)
    data = np.concatenate(data_chunks)

    # Normalise rows so scores stay O(1) regardless of nnz.
    scores = np.zeros(num_rows)
    for i in range(num_rows):
        start, end = indptr[i], indptr[i + 1]
        norm = np.linalg.norm(data[start:end])
        if norm > 0:
            data[start:end] /= norm
        scores[i] = float(
            np.dot(data[start:end], true_theta[indices[start:end]])
        )

    if profile.task == "classification":
        labels = np.where(scores + rng.normal(scale=0.1, size=num_rows) >= 0, 1.0, -1.0)
        flips = rng.random(num_rows) < profile.label_noise
        labels[flips] *= -1
    elif profile.task == "regression":
        labels = scores + rng.normal(scale=profile.label_noise, size=num_rows)
    else:
        raise ValueError(f"unknown task {profile.task!r}")

    return SparseDataset(indptr, indices, data, labels, profile.num_features)


def generate_profile(name: str, seed: int = 0, scale: float = 1.0) -> SparseDataset:
    """Generate a dataset by profile name (``kdd10`` / ``kdd12`` / ``ctr``)."""
    profiles = {
        "kdd10": KDD10_LIKE,
        "kdd12": KDD12_LIKE,
        "ctr": CTR_LIKE,
        "kdd12-hothead": KDD12_HOTHEAD,
    }
    try:
        profile = profiles[name]
    except KeyError:
        raise ValueError(
            f"unknown profile {name!r}; choose from {sorted(profiles)}"
        ) from None
    return generate_dataset(profile, seed=seed, scale=scale)


def kdd10_like(seed: int = 0, scale: float = 1.0) -> SparseDataset:
    """KDD CUP 2010 stand-in (see :data:`KDD10_LIKE`)."""
    return generate_dataset(KDD10_LIKE, seed=seed, scale=scale)


def kdd12_like(seed: int = 0, scale: float = 1.0) -> SparseDataset:
    """KDD CUP 2012 stand-in (see :data:`KDD12_LIKE`)."""
    return generate_dataset(KDD12_LIKE, seed=seed, scale=scale)


def ctr_like(seed: int = 0, scale: float = 1.0) -> SparseDataset:
    """Tencent CTR stand-in (see :data:`CTR_LIKE`)."""
    return generate_dataset(CTR_LIKE, seed=seed, scale=scale)


def mnist_like(
    num_train: int = 2_000,
    num_classes: int = 10,
    image_size: int = 20,
    seed: int = 0,
) -> "tuple[np.ndarray, np.ndarray]":
    """Synthetic MNIST stand-in for the Appendix B.3 MLP experiment.

    Generates ``num_classes`` random smooth templates over a
    ``image_size × image_size`` grid and draws instances as
    template + pixel noise, giving a learnable 10-class problem with
    dense 400-dim inputs (matching the paper's 20×20 input layer).

    Returns:
        ``(images, labels)`` — float64 array of shape
        ``(num_train, image_size**2)`` scaled to [0, 1], and int labels.
    """
    rng = np.random.default_rng(seed)
    dim = image_size * image_size
    # Smooth templates: low-frequency random fields.
    coarse = rng.normal(size=(num_classes, image_size // 4 + 1, image_size // 4 + 1))
    templates = np.empty((num_classes, dim))
    for c in range(num_classes):
        upsampled = np.kron(coarse[c], np.ones((4, 4)))[:image_size, :image_size]
        templates[c] = upsampled.ravel()
    templates = (templates - templates.min()) / (templates.max() - templates.min())
    labels = rng.integers(0, num_classes, size=num_train)
    images = templates[labels] + rng.normal(scale=0.3, size=(num_train, dim))
    images = np.clip(images, 0.0, 1.0)
    return images, labels
