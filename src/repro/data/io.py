"""LIBSVM-format dataset I/O.

The paper's public datasets (KDD CUP 2010/2012) ship in LIBSVM format
(``label idx:val idx:val ...``); this module lets users run the
reproduction on the real files when they have them, while the synthetic
generators cover the offline case.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

import numpy as np

from .sparse import SparseDataset

__all__ = ["read_libsvm", "write_libsvm"]


def read_libsvm(
    path: "str | os.PathLike",
    num_features: Optional[int] = None,
    zero_based: bool = False,
) -> SparseDataset:
    """Read a LIBSVM-format file into a :class:`SparseDataset`.

    Args:
        path: file path.
        num_features: model dimension; inferred as ``max index + 1``
            when omitted.
        zero_based: whether feature indexes in the file start at 0
            (LIBSVM convention is 1-based).

    Raises:
        ValueError: on malformed lines or out-of-range indexes.
    """
    labels: List[float] = []
    rows: List[Tuple[np.ndarray, np.ndarray]] = []
    max_index = -1
    offset = 0 if zero_based else 1
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            try:
                labels.append(float(parts[0]))
            except ValueError:
                raise ValueError(
                    f"{path}:{line_no}: label {parts[0]!r} is not a number"
                ) from None
            idx_list: List[int] = []
            val_list: List[float] = []
            for token in parts[1:]:
                try:
                    idx_str, val_str = token.split(":", 1)
                    idx = int(idx_str) - offset
                    val = float(val_str)
                except ValueError:
                    raise ValueError(
                        f"{path}:{line_no}: malformed feature token {token!r}"
                    ) from None
                if idx < 0:
                    raise ValueError(
                        f"{path}:{line_no}: feature index {idx_str} below minimum"
                    )
                idx_list.append(idx)
                val_list.append(val)
            idx_arr = np.asarray(idx_list, dtype=np.int64)
            val_arr = np.asarray(val_list, dtype=np.float64)
            order = np.argsort(idx_arr, kind="stable")
            idx_arr = idx_arr[order]
            val_arr = val_arr[order]
            if idx_arr.size > 1 and np.any(np.diff(idx_arr) == 0):
                raise ValueError(f"{path}:{line_no}: duplicate feature index")
            if idx_arr.size:
                max_index = max(max_index, int(idx_arr[-1]))
            rows.append((idx_arr, val_arr))
    if num_features is None:
        num_features = max_index + 1 if max_index >= 0 else 1
    elif max_index >= num_features:
        raise ValueError(
            f"file contains index {max_index} >= num_features {num_features}"
        )
    return SparseDataset.from_rows(rows, np.asarray(labels), num_features)


def write_libsvm(
    dataset: SparseDataset,
    path: "str | os.PathLike",
    zero_based: bool = False,
) -> None:
    """Write a :class:`SparseDataset` in LIBSVM format."""
    offset = 0 if zero_based else 1
    with open(path, "w", encoding="utf-8") as handle:
        for i in range(dataset.num_rows):
            start, end = dataset.indptr[i], dataset.indptr[i + 1]
            tokens = [repr(float(dataset.labels[i]))]
            tokens.extend(
                f"{int(idx) + offset}:{val:.10g}"
                for idx, val in zip(
                    dataset.indices[start:end], dataset.data[start:end]
                )
            )
            handle.write(" ".join(tokens))
            handle.write("\n")
