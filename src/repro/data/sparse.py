"""Sparse data structures: vectors and CSR datasets.

These are the substrate the paper assumes: training instances are
high-dimensional sparse rows, gradients are sparse key–value vectors.
Implemented from scratch on numpy (no scipy dependency in the library
proper) with the vectorised gather/scatter kernels mini-batch SGD needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

__all__ = ["SparseVector", "SparseDataset"]


@dataclass
class SparseVector:
    """A sparse vector as parallel ``(keys, values)`` arrays.

    Keys are strictly ascending int64 indexes into ``[0, dimension)``;
    values are float64.  This is exactly the ``{(k_j, v_j)}`` form the
    paper compresses.
    """

    keys: np.ndarray
    values: np.ndarray
    dimension: int

    def __post_init__(self) -> None:
        self.keys = np.asarray(self.keys, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.keys.shape != self.values.shape or self.keys.ndim != 1:
            raise ValueError("keys and values must be parallel 1-D arrays")
        if self.keys.size:
            if self.keys.min() < 0 or self.keys.max() >= self.dimension:
                raise ValueError(f"keys must lie in [0, {self.dimension})")
            if self.keys.size > 1 and np.any(np.diff(self.keys) <= 0):
                raise ValueError("keys must be strictly ascending")

    @classmethod
    def from_dense(cls, dense: np.ndarray, tolerance: float = 0.0) -> "SparseVector":
        """Extract entries with ``|value| > tolerance`` from a dense vector."""
        dense = np.asarray(dense, dtype=np.float64)
        keys = np.flatnonzero(np.abs(dense) > tolerance)
        return cls(keys=keys, values=dense[keys], dimension=dense.size)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.dimension, dtype=np.float64)
        dense[self.keys] = self.values
        return dense

    @property
    def nnz(self) -> int:
        return int(self.keys.size)

    @property
    def density(self) -> float:
        """Fraction of nonzero dimensions — the paper's 'sparsity' metric."""
        return self.nnz / self.dimension if self.dimension else 0.0

    def dot(self, dense: np.ndarray) -> float:
        """Inner product with a dense vector."""
        return float(np.dot(self.values, dense[self.keys]))

    def add_into(self, dense: np.ndarray, scale: float = 1.0) -> None:
        """In-place ``dense[keys] += scale * values``."""
        np.add.at(dense, self.keys, scale * self.values)

    def scaled(self, scale: float) -> "SparseVector":
        return SparseVector(self.keys.copy(), self.values * scale, self.dimension)

    def l2_norm(self) -> float:
        return float(np.linalg.norm(self.values))

    def __len__(self) -> int:
        return self.nnz

    def __repr__(self) -> str:
        return f"SparseVector(nnz={self.nnz}, dimension={self.dimension})"


class SparseDataset:
    """CSR-format labelled dataset with vectorised mini-batch kernels.

    Rows are training instances; ``labels`` is parallel to rows.  The
    class exposes exactly the two kernels SGD needs:

    * :meth:`dot_rows` — ``X[rows] @ theta`` for a row subset;
    * :meth:`gradient_rows` — ``X[rows].T @ coefficients`` accumulated
      into a dense vector (callers sparsify afterwards).

    Args:
        indptr: CSR row pointer, length ``num_rows + 1``.
        indices: CSR column indices (int64, ascending within each row).
        data: CSR values (float64).
        labels: per-row labels (float64).
        num_features: model dimension ``D``.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        labels: np.ndarray,
        num_features: int,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self.labels = np.asarray(labels, dtype=np.float64)
        self.num_features = int(num_features)
        if self.indptr.ndim != 1 or self.indptr.size < 1:
            raise ValueError("indptr must be a 1-D array of length num_rows + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.shape != self.data.shape:
            raise ValueError("indices and data must be parallel")
        if self.labels.size != self.num_rows:
            raise ValueError(
                f"labels length {self.labels.size} != num_rows {self.num_rows}"
            )
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.num_features
        ):
            raise ValueError(f"indices must lie in [0, {num_features})")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        rows: "list[Tuple[np.ndarray, np.ndarray]]",
        labels: np.ndarray,
        num_features: int,
    ) -> "SparseDataset":
        """Build from a list of per-row ``(indices, values)`` pairs."""
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        for i, (idx, _) in enumerate(rows):
            indptr[i + 1] = indptr[i] + len(idx)
        if rows:
            indices = np.concatenate([np.asarray(idx) for idx, _ in rows])
            data = np.concatenate([np.asarray(val) for _, val in rows])
        else:
            indices = np.empty(0, dtype=np.int64)
            data = np.empty(0, dtype=np.float64)
        return cls(indptr, indices, data, np.asarray(labels), num_features)

    # ------------------------------------------------------------------
    # shape / access
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self.indptr.size - 1

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def avg_nnz_per_row(self) -> float:
        return self.nnz / self.num_rows if self.num_rows else 0.0

    def row(self, i: int) -> SparseVector:
        start, end = self.indptr[i], self.indptr[i + 1]
        return SparseVector(
            self.indices[start:end], self.data[start:end], self.num_features
        )

    def _flat_index(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Flattened CSR positions for a row subset, plus per-row lengths.

        Returns ``(positions, lengths)`` where ``positions`` indexes the
        ``indices``/``data`` arrays, row-major over ``rows``.
        """
        rows = np.asarray(rows, dtype=np.int64)
        starts = self.indptr[rows]
        lengths = self.indptr[rows + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), lengths
        # positions = concat(arange(start_i, start_i + len_i))
        exclusive = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        positions = (
            np.arange(total, dtype=np.int64)
            - np.repeat(exclusive, lengths)
            + np.repeat(starts, lengths)
        )
        return positions, lengths

    # ------------------------------------------------------------------
    # SGD kernels
    # ------------------------------------------------------------------
    def dot_rows(self, rows: np.ndarray, theta: np.ndarray) -> np.ndarray:
        """``X[rows] @ theta`` as a 1-D array of length ``len(rows)``."""
        rows = np.asarray(rows, dtype=np.int64)
        positions, lengths = self._flat_index(rows)
        out = np.zeros(rows.size, dtype=np.float64)
        if positions.size == 0:
            return out
        products = self.data[positions] * theta[self.indices[positions]]
        boundaries = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        nonempty = lengths > 0
        sums = np.add.reduceat(products, boundaries[nonempty])
        out[nonempty] = sums
        return out

    def gradient_rows(
        self, rows: np.ndarray, coefficients: np.ndarray
    ) -> np.ndarray:
        """Dense ``X[rows].T @ coefficients`` (length ``num_features``).

        ``coefficients[i]`` is the per-instance loss-derivative weight
        for ``rows[i]``; the caller extracts the sparse nonzeros.
        """
        rows = np.asarray(rows, dtype=np.int64)
        coefficients = np.asarray(coefficients, dtype=np.float64)
        if rows.shape != coefficients.shape:
            raise ValueError("rows and coefficients must be parallel")
        grad = np.zeros(self.num_features, dtype=np.float64)
        positions, lengths = self._flat_index(rows)
        if positions.size == 0:
            return grad
        weights = np.repeat(coefficients, lengths)
        np.add.at(grad, self.indices[positions], self.data[positions] * weights)
        return grad

    def active_columns(self, rows: np.ndarray) -> np.ndarray:
        """Sorted unique columns touched by a row subset."""
        positions, _ = self._flat_index(np.asarray(rows, dtype=np.int64))
        return np.unique(self.indices[positions])

    # ------------------------------------------------------------------
    # slicing / iteration
    # ------------------------------------------------------------------
    def subset(self, rows: np.ndarray) -> "SparseDataset":
        """A new dataset containing only ``rows`` (copies the data)."""
        rows = np.asarray(rows, dtype=np.int64)
        positions, lengths = self._flat_index(rows)
        indptr = np.concatenate(([0], np.cumsum(lengths)))
        return SparseDataset(
            indptr,
            self.indices[positions],
            self.data[positions],
            self.labels[rows],
            self.num_features,
        )

    def iter_batches(
        self, batch_size: int, rng: np.random.Generator, shuffle: bool = True
    ) -> Iterator[np.ndarray]:
        """Yield row-index arrays covering the dataset once (one epoch)."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = np.arange(self.num_rows)
        if shuffle:
            rng.shuffle(order)
        for start in range(0, self.num_rows, batch_size):
            yield order[start:start + batch_size]

    def __repr__(self) -> str:
        return (
            f"SparseDataset(rows={self.num_rows}, features={self.num_features}, "
            f"nnz={self.nnz})"
        )
