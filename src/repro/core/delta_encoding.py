"""Dynamic delta-binary encoding of gradient keys (paper §3.4).

Gradient keys are non-repetitive, ascending integers that can be large
(tens of millions of dimensions) while the gaps between neighbours are
small.  The codec therefore stores:

1. **Delta encoding** — the first key verbatim, then each key as its
   increment over the previous key.
2. **Binary encoding with byte flags** — each delta is written with the
   least number of bytes that holds it (1 byte for [0, 255], 2 for
   [256, 65535], …) and a 2-bit *byte flag* records that width.  Flags
   are packed four to a byte.

The codec is exactly invertible (keys must decode losslessly or SGD
would update wrong model dimensions, §3.4), and the measured cost is
~1.25–1.5 bytes per key including flags, matching §A.3.

Wire layout::

    [count: uint32 LE] [flags: ceil(count/4) bytes] [payload: var-width deltas]
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "encode_keys",
    "decode_keys",
    "delta_key_stats",
    "DeltaKeyStats",
    "FLAG_BITS_PER_KEY",
]

#: 2-bit flag per key, as in Figure 7.
FLAG_BITS_PER_KEY = 2

_HEADER_BYTES = 4
_MAX_KEY = 2**32 - 1


@dataclass(frozen=True)
class DeltaKeyStats:
    """Accounting record for one encoded key block."""

    num_keys: int
    payload_bytes: int
    flag_bytes: int
    header_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.payload_bytes + self.flag_bytes + self.header_bytes

    @property
    def bytes_per_key(self) -> float:
        """Average cost per key including flags (the paper's ~1.27)."""
        if self.num_keys == 0:
            return 0.0
        return (self.payload_bytes + self.flag_bytes) / self.num_keys


def _byte_widths(deltas: np.ndarray) -> np.ndarray:
    """Least number of bytes (1..4) needed to hold each delta."""
    widths = np.ones(deltas.size, dtype=np.int64)
    widths[deltas > 0xFF] = 2
    widths[deltas > 0xFFFF] = 3
    widths[deltas > 0xFFFFFF] = 4
    return widths


def _validate_keys(keys: np.ndarray) -> np.ndarray:
    keys = np.asarray(keys, dtype=np.int64)
    if keys.ndim != 1:
        raise ValueError("keys must be a 1-D array")
    if keys.size == 0:
        return keys
    if keys.min() < 0 or keys.max() > _MAX_KEY:
        raise ValueError("keys must lie in [0, 2**32 - 1]")
    if keys.size > 1 and np.any(np.diff(keys) <= 0):
        raise ValueError("keys must be strictly ascending (sorted, no repeats)")
    return keys


def encode_keys(keys: np.ndarray) -> bytes:
    """Encode strictly ascending non-negative keys into the wire format.

    Args:
        keys: 1-D strictly ascending int array, values < 2**32.

    Returns:
        The encoded byte string (see module docstring for layout).
    """
    keys = _validate_keys(keys)
    n = keys.size
    header = np.uint32(n).tobytes()
    if n == 0:
        return header
    deltas = np.empty(n, dtype=np.uint64)
    deltas[0] = keys[0]
    deltas[1:] = np.diff(keys).astype(np.uint64)
    widths = _byte_widths(deltas)

    # Pack 2-bit flags (width - 1), four keys per byte, little-end first.
    flags = (widths - 1).astype(np.uint8)
    flag_bytes = np.zeros((n + 3) // 4, dtype=np.uint8)
    for slot in range(4):
        chunk = flags[slot::4]
        flag_bytes[: chunk.size] |= chunk << (2 * slot)

    # Variable-width little-endian payload: scatter each delta's bytes.
    offsets = np.zeros(n, dtype=np.int64)
    np.cumsum(widths[:-1], out=offsets[1:])
    payload = np.zeros(int(widths.sum()), dtype=np.uint8)
    for byte_pos in range(4):
        mask = widths > byte_pos
        if not mask.any():
            break
        payload[offsets[mask] + byte_pos] = (
            deltas[mask] >> np.uint64(8 * byte_pos)
        ) & np.uint64(0xFF)
    return header + flag_bytes.tobytes() + payload.tobytes()


def decode_keys(blob: bytes) -> np.ndarray:
    """Decode a byte string produced by :func:`encode_keys`.

    Returns:
        The original strictly ascending int64 key array.

    Raises:
        ValueError: if the blob is truncated or malformed.
    """
    if len(blob) < _HEADER_BYTES:
        raise ValueError("blob too short to contain a key-count header")
    n = int(np.frombuffer(blob[:_HEADER_BYTES], dtype=np.uint32)[0])
    if n == 0:
        if len(blob) != _HEADER_BYTES:
            raise ValueError("trailing bytes after empty key block")
        return np.empty(0, dtype=np.int64)
    num_flag_bytes = (n + 3) // 4
    flags_end = _HEADER_BYTES + num_flag_bytes
    if len(blob) < flags_end:
        raise ValueError("blob truncated inside the flag section")
    flag_bytes = np.frombuffer(blob[_HEADER_BYTES:flags_end], dtype=np.uint8)
    widths = np.empty(n, dtype=np.int64)
    for slot in range(4):
        extracted = ((flag_bytes >> (2 * slot)) & 0x3) + 1
        target = widths[slot::4]
        target[:] = extracted[: target.size]

    payload_len = int(widths.sum())
    if len(blob) != flags_end + payload_len:
        raise ValueError(
            f"payload length mismatch: expected {payload_len} bytes, "
            f"found {len(blob) - flags_end}"
        )
    payload = np.frombuffer(blob[flags_end:], dtype=np.uint8)
    offsets = np.zeros(n, dtype=np.int64)
    np.cumsum(widths[:-1], out=offsets[1:])
    deltas = np.zeros(n, dtype=np.uint64)
    for byte_pos in range(4):
        mask = widths > byte_pos
        if not mask.any():
            break
        deltas[mask] |= payload[offsets[mask] + byte_pos].astype(np.uint64) << np.uint64(
            8 * byte_pos
        )
    keys = np.cumsum(deltas.astype(np.int64))
    return keys


def delta_key_stats(keys: np.ndarray) -> DeltaKeyStats:
    """Compute the encoding cost of ``keys`` without materialising bytes."""
    keys = _validate_keys(keys)
    n = keys.size
    if n == 0:
        return DeltaKeyStats(0, 0, 0, _HEADER_BYTES)
    deltas = np.empty(n, dtype=np.uint64)
    deltas[0] = keys[0]
    deltas[1:] = np.diff(keys).astype(np.uint64)
    widths = _byte_widths(deltas)
    return DeltaKeyStats(
        num_keys=n,
        payload_bytes=int(widths.sum()),
        flag_bytes=(n + 3) // 4,
        header_bytes=_HEADER_BYTES,
    )
