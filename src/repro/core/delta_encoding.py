"""Dynamic delta-binary encoding of gradient keys (paper §3.4).

Gradient keys are non-repetitive, ascending integers that can be large
(tens of millions of dimensions) while the gaps between neighbours are
small.  The codec therefore stores:

1. **Delta encoding** — the first key verbatim, then each key as its
   increment over the previous key.
2. **Binary encoding with byte flags** — each delta is written with the
   least number of bytes that holds it (1 byte for [0, 255], 2 for
   [256, 65535], …) and a 2-bit *byte flag* records that width.  Flags
   are packed four to a byte.

The codec is exactly invertible (keys must decode losslessly or SGD
would update wrong model dimensions, §3.4), and the measured cost is
~1.25–1.5 bytes per key including flags, matching §A.3.

Wire layout::

    [count: uint32 LE] [flags: ceil(count/4) bytes] [payload: var-width deltas]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .. import kernels

__all__ = [
    "encode_keys",
    "encode_key_groups",
    "encode_key_groups_flat",
    "decode_keys",
    "delta_key_stats",
    "DeltaKeyStats",
    "FLAG_BITS_PER_KEY",
]

#: 2-bit flag per key, as in Figure 7.
FLAG_BITS_PER_KEY = 2

_HEADER_BYTES = 4
_MAX_KEY = 2**32 - 1


@dataclass(frozen=True)
class DeltaKeyStats:
    """Accounting record for one encoded key block."""

    num_keys: int
    payload_bytes: int
    flag_bytes: int
    header_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.payload_bytes + self.flag_bytes + self.header_bytes

    @property
    def bytes_per_key(self) -> float:
        """Average cost per key including flags (the paper's ~1.27)."""
        if self.num_keys == 0:
            return 0.0
        return (self.payload_bytes + self.flag_bytes) / self.num_keys


def _byte_widths(deltas: np.ndarray) -> np.ndarray:
    """Least number of bytes (1..4) needed to hold each delta.

    Summing the three threshold comparisons gives the same widths as
    masked assignment but with plain sequential passes instead of
    boolean scatter stores.
    """
    widths = np.ones(deltas.size, dtype=np.int64)
    np.add(widths, deltas > np.uint64(0xFF), out=widths, casting="unsafe")
    np.add(widths, deltas > np.uint64(0xFFFF), out=widths, casting="unsafe")
    np.add(widths, deltas > np.uint64(0xFFFFFF), out=widths, casting="unsafe")
    return widths


def _validate_keys(keys: np.ndarray) -> np.ndarray:
    keys = np.asarray(keys, dtype=np.int64)
    if keys.ndim != 1:
        raise ValueError("keys must be a 1-D array")
    if keys.size == 0:
        return keys
    if keys.min() < 0 or keys.max() > _MAX_KEY:
        raise ValueError("keys must lie in [0, 2**32 - 1]")
    if keys.size > 1 and np.any(np.diff(keys) <= 0):
        raise ValueError("keys must be strictly ascending (sorted, no repeats)")
    return keys


def encode_keys(keys: np.ndarray) -> bytes:
    """Encode strictly ascending non-negative keys into the wire format.

    Args:
        keys: 1-D strictly ascending int array, values < 2**32.

    Returns:
        The encoded byte string (see module docstring for layout).
    """
    keys = _validate_keys(keys)
    n = keys.size
    header = np.asarray(n, dtype="<u4").tobytes()
    if n == 0:
        return header
    deltas = np.empty(n, dtype=np.uint64)
    deltas[0] = keys[0]
    deltas[1:] = np.diff(keys).astype(np.uint64)
    widths = _byte_widths(deltas)

    # Pack 2-bit flags (width - 1), four keys per byte, little-end first.
    flags = (widths - 1).astype(np.uint8)
    flag_bytes = np.zeros((n + 3) // 4, dtype=np.uint8)
    for slot in range(4):
        chunk = flags[slot::4]
        flag_bytes[: chunk.size] |= chunk << (2 * slot)

    # Variable-width little-endian payload: scatter each delta's bytes.
    offsets = np.zeros(n, dtype=np.int64)
    np.cumsum(widths[:-1], out=offsets[1:])
    payload = np.zeros(int(widths.sum()), dtype=np.uint8)
    for byte_pos in range(4):
        mask = widths > byte_pos
        if not mask.any():
            break
        payload[offsets[mask] + byte_pos] = (
            deltas[mask] >> np.uint64(8 * byte_pos)
        ) & np.uint64(0xFF)
    return header + flag_bytes.tobytes() + payload.tobytes()


def encode_key_groups(key_groups: Sequence[np.ndarray]) -> List[bytes]:
    """Encode several ascending key arrays into one blob per group.

    Produces exactly ``[encode_keys(g) for g in key_groups]`` — same
    wire bytes — but computes deltas, byte widths and the payload
    scatter over one concatenated array instead of re-entering the
    codec per group, which matters because the MinMaxSketch path
    encodes ``2 * num_groups`` small key lists per gradient.
    """
    if not kernels.vectorised_enabled():
        return [encode_keys(g) for g in key_groups]
    arrays = [np.asarray(g, dtype=np.int64) for g in key_groups]
    for arr in arrays:  # repro: noqa[hot-loop] — O(num_groups) shape validation, not per-element work
        if arr.ndim != 1:
            raise ValueError("keys must be a 1-D array")
    sizes = np.asarray([arr.size for arr in arrays], dtype=np.int64)
    if int(sizes.sum()) == 0:
        return [np.asarray(0, dtype="<u4").tobytes() for _ in arrays]
    return encode_key_groups_flat(
        np.concatenate([arr for arr in arrays if arr.size]), sizes
    )


def encode_key_groups_flat(concat: np.ndarray, sizes: np.ndarray) -> List[bytes]:
    """Encode group-concatenated ascending keys into one blob per group.

    ``concat`` holds every group's keys back to back (``sizes[g]`` of
    them for group ``g``) — the layout :meth:`GroupedMinMaxSketch.partition_flat`
    produces — and the result is byte-identical to slicing out each
    group and calling :func:`encode_keys` on it.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    concat = np.asarray(concat, dtype=np.int64)
    if concat.ndim != 1:
        raise ValueError("keys must be a 1-D array")
    total = int(sizes.sum())
    if concat.size != total:
        raise ValueError("sizes must sum to concat.size")
    if total == 0:
        return [np.asarray(0, dtype="<u4").tobytes() for _ in range(sizes.size)]
    if not kernels.vectorised_enabled():
        bounds = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=bounds[1:])
        return [
            encode_keys(concat[bounds[g]:bounds[g + 1]]) for g in range(sizes.size)
        ]
    if concat.min() < 0 or concat.max() > _MAX_KEY:
        raise ValueError("keys must lie in [0, 2**32 - 1]")
    starts = np.zeros(sizes.size, dtype=np.int64)
    np.cumsum(sizes[:-1], out=starts[1:])
    # Group g (when nonempty) occupies concat[starts[g]:starts[g]+sizes[g]].
    nonempty_starts = starts[sizes > 0]
    deltas = np.empty(total, dtype=np.int64)
    deltas[0] = concat[0]
    deltas[1:] = np.diff(concat)
    deltas[nonempty_starts] = concat[nonempty_starts]  # group-local restart
    # Ascending check without a boolean gather: non-positive deltas are
    # only legal at group restarts (a group may start at key 0).
    non_positive = int(np.count_nonzero(deltas <= 0))
    if non_positive and non_positive != int(
        np.count_nonzero(deltas[nonempty_starts] <= 0)
    ):
        raise ValueError("keys must be strictly ascending (sorted, no repeats)")
    udeltas = deltas.astype(np.uint64)
    widths = _byte_widths(udeltas)

    # Global payload positions; group payloads are contiguous slices.
    offsets = np.zeros(total + 1, dtype=np.int64)
    np.cumsum(widths, out=offsets[1:])
    payload = np.zeros(int(offsets[-1]), dtype=np.uint8)
    # Every delta needs at least one byte, so byte 0 skips the mask.
    payload[offsets[:-1]] = udeltas & np.uint64(0xFF)
    for byte_pos in range(1, 4):
        idx = np.flatnonzero(widths > byte_pos)
        if idx.size == 0:
            break
        payload[offsets.take(idx) + byte_pos] = (
            udeltas.take(idx) >> np.uint64(8 * byte_pos)
        ) & np.uint64(0xFF)

    # Pack every group's 2-bit flags in one pass: shift each flag into
    # its in-byte slot, then OR the four-key runs together with a single
    # reduceat over the per-byte boundaries (a run restarts wherever the
    # position within its group is a multiple of 4).
    flags = (widths - 1).astype(np.uint8)
    local = np.arange(total, dtype=np.int64)
    local -= np.repeat(starts, sizes)
    slot = (local & 3).astype(np.uint8)
    shifted = flags << (slot + slot)
    byte_starts = np.flatnonzero(slot == 0)
    packed = np.bitwise_or.reduceat(shifted, byte_starts)
    fb_offsets = np.zeros(sizes.size + 1, dtype=np.int64)
    np.cumsum((sizes + 3) // 4, out=fb_offsets[1:])

    blobs: List[bytes] = []
    for g in range(sizes.size):
        n = int(sizes[g])
        header = np.asarray(n, dtype="<u4").tobytes()
        if n == 0:
            blobs.append(header)
            continue
        lo = int(starts[g])
        fb_lo, fb_hi = int(fb_offsets[g]), int(fb_offsets[g + 1])
        p_lo, p_hi = int(offsets[lo]), int(offsets[lo + n])
        blobs.append(
            header + packed[fb_lo:fb_hi].tobytes() + payload[p_lo:p_hi].tobytes()
        )
    return blobs


def decode_keys(blob: bytes) -> np.ndarray:
    """Decode a byte string produced by :func:`encode_keys`.

    Returns:
        The original strictly ascending int64 key array.

    Raises:
        ValueError: if the blob is truncated or malformed.
    """
    if len(blob) < _HEADER_BYTES:
        raise ValueError("blob too short to contain a key-count header")
    n = int(np.frombuffer(blob[:_HEADER_BYTES], dtype="<u4")[0])
    if n == 0:
        if len(blob) != _HEADER_BYTES:
            raise ValueError("trailing bytes after empty key block")
        return np.empty(0, dtype=np.int64)
    num_flag_bytes = (n + 3) // 4
    flags_end = _HEADER_BYTES + num_flag_bytes
    if len(blob) < flags_end:
        raise ValueError("blob truncated inside the flag section")
    flag_bytes = np.frombuffer(blob[_HEADER_BYTES:flags_end], dtype=np.uint8)
    widths = np.empty(n, dtype=np.int64)
    for slot in range(4):
        extracted = ((flag_bytes >> (2 * slot)) & 0x3) + 1
        target = widths[slot::4]
        target[:] = extracted[: target.size]

    payload_len = int(widths.sum())
    if len(blob) != flags_end + payload_len:
        raise ValueError(
            f"payload length mismatch: expected {payload_len} bytes, "
            f"found {len(blob) - flags_end}"
        )
    payload = np.frombuffer(blob[flags_end:], dtype=np.uint8)
    offsets = np.zeros(n, dtype=np.int64)
    np.cumsum(widths[:-1], out=offsets[1:])
    deltas = np.zeros(n, dtype=np.uint64)
    for byte_pos in range(4):
        mask = widths > byte_pos
        if not mask.any():
            break
        deltas[mask] |= payload[offsets[mask] + byte_pos].astype(np.uint64) << np.uint64(
            8 * byte_pos
        )
    keys = np.cumsum(deltas.astype(np.int64))
    return keys


def delta_key_stats(keys: np.ndarray) -> DeltaKeyStats:
    """Compute the encoding cost of ``keys`` without materialising bytes."""
    keys = _validate_keys(keys)
    n = keys.size
    if n == 0:
        return DeltaKeyStats(0, 0, 0, _HEADER_BYTES)
    deltas = np.empty(n, dtype=np.uint64)
    deltas[0] = keys[0]
    deltas[1:] = np.diff(keys).astype(np.uint64)
    widths = _byte_widths(deltas)
    return DeltaKeyStats(
        num_keys=n,
        payload_bytes=int(widths.sum()),
        flag_bytes=(n + 3) // 4,
        header_bytes=_HEADER_BYTES,
    )
