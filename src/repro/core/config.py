"""Configuration for the SketchML compressor.

Defaults follow §4.1 and Appendix B.2 of the paper: quantile size 128
(Table 3's default; 256 is the studied variant), MinMaxSketch with 2
rows and ``d/5`` columns, ``r = 8`` index groups.  The three ``enable_*`` flags reproduce the
Figure 8 ablation stack:

* ``Adam``                      — all three disabled (identity codec).
* ``Adam+Key``                  — ``enable_delta_keys`` only.
* ``Adam+Key+Quan``             — + ``enable_quantization``.
* ``Adam+Key+Quan+MinMax``      — + ``enable_minmax`` (full SketchML).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["SketchMLConfig"]


@dataclass(frozen=True)
class SketchMLConfig:
    """Hyper-parameters of :class:`~repro.core.compressor.SketchMLCompressor`.

    Attributes:
        num_buckets: quantile bucket count ``q`` (1 byte/value at 256).
        quantile_sketch: ``"kll"``, ``"gk"``, ``"tdigest"`` or ``"exact"``.
        quantile_sketch_size: sketch size parameter (paper default 128).
        minmax_rows: hash rows ``s`` per group sketch (default 2).
        minmax_cols_factor: total bins ``t`` as a fraction of the
            gradient's nnz ``d`` (default 1/5, the paper's ``d/5``).
        minmax_min_cols: lower bound on total bins so tiny gradients
            still get a usable sketch.
        num_groups: bucket groups ``r`` (default 8; max index error q/r).
        enable_delta_keys: compress keys with delta-binary encoding.
        enable_quantization: quantile-bucket quantify the values.
        enable_minmax: push bucket indexes through MinMaxSketches.
        pack_index_bits: in the Adam+Key+Quan path, pack bucket indexes
            at ``ceil(log2(q))`` bits instead of whole bytes (§3.2's
            "binary encode" taken to the bit level; saves 1/8 at the
            default q=128).
        compensate_decay: measure, at encode time, how much the
            MinMaxSketch round-trip decays this gradient's mean
            magnitude, and ship the correction scale (8 bytes) so the
            decoder can multiply it back.  §3.3's "compensate the
            vanishing of gradients" implemented at the codec layer
            instead of relying solely on Adam.
        refit_interval: refit the quantile sketch every N compress
            calls instead of every call (1 = paper behaviour).  Between
            refits the cached splits are reused — gradient value
            distributions drift slowly across adjacent mini-batches, so
            this trades a small quantization-error increase for most of
            the encode CPU (the dominant cost in Fig. 8(c)).
        hash_family: hash family for the MinMaxSketch rows.
        seed: master seed shared by encoder and decoder.
        sanitize: run the :mod:`repro.sanitize` invariant checks on
            every encode/decode through this compressor, regardless of
            the ``REPRO_SANITIZE`` environment variable (sign
            preservation, one-sided index error, index/group bounds,
            strictly-ascending keys, decay-scale clamp).
    """

    num_buckets: int = 128
    quantile_sketch: str = "kll"
    quantile_sketch_size: int = 128
    minmax_rows: int = 2
    minmax_cols_factor: float = 0.2
    minmax_min_cols: int = 64
    num_groups: int = 8
    enable_delta_keys: bool = True
    enable_quantization: bool = True
    enable_minmax: bool = True
    pack_index_bits: bool = False
    compensate_decay: bool = False
    refit_interval: int = 1
    hash_family: str = "multiply_shift"
    seed: int = 0
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.num_buckets < 2:
            raise ValueError("num_buckets must be >= 2")
        if self.quantile_sketch not in ("kll", "gk", "tdigest", "exact"):
            raise ValueError(f"unknown quantile_sketch {self.quantile_sketch!r}")
        if self.minmax_rows <= 0:
            raise ValueError("minmax_rows must be positive")
        if self.minmax_cols_factor <= 0:
            raise ValueError("minmax_cols_factor must be positive")
        if self.num_groups <= 0:
            raise ValueError("num_groups must be positive")
        if self.refit_interval <= 0:
            raise ValueError("refit_interval must be positive")
        if self.enable_minmax and not self.enable_quantization:
            raise ValueError(
                "enable_minmax requires enable_quantization (the sketch "
                "stores bucket indexes)"
            )

    # ------------------------------------------------------------------
    # Figure 8 ablation presets
    # ------------------------------------------------------------------
    @classmethod
    def adam(cls, **overrides) -> "SketchMLConfig":
        """No compression at all (baseline 'Adam' bar of Fig. 8)."""
        return cls(
            enable_delta_keys=False,
            enable_quantization=False,
            enable_minmax=False,
            **overrides,
        )

    @classmethod
    def keys_only(cls, **overrides) -> "SketchMLConfig":
        """Delta-binary keys, raw float values ('Adam+Key')."""
        return cls(
            enable_delta_keys=True,
            enable_quantization=False,
            enable_minmax=False,
            **overrides,
        )

    @classmethod
    def keys_and_quantization(cls, **overrides) -> "SketchMLConfig":
        """Delta keys + bucket-index values, no sketch ('Adam+Key+Quan')."""
        return cls(
            enable_delta_keys=True,
            enable_quantization=True,
            enable_minmax=False,
            **overrides,
        )

    @classmethod
    def full(cls, **overrides) -> "SketchMLConfig":
        """The complete SketchML pipeline ('Adam+Key+Quan+MinMax')."""
        return cls(**overrides)

    def with_overrides(self, **overrides) -> "SketchMLConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def minmax_total_bins(self, nnz: int) -> int:
        """Total MinMaxSketch bins ``t`` for a gradient with ``nnz`` pairs."""
        return max(self.minmax_min_cols, int(nnz * self.minmax_cols_factor))

    @property
    def ablation_label(self) -> str:
        """Figure 8's bar label for this flag combination."""
        if not self.enable_delta_keys and not self.enable_quantization:
            return "Adam"
        if not self.enable_quantization:
            return "Adam+Key"
        if not self.enable_minmax:
            return "Adam+Key+Quan"
        return "Adam+Key+Quan+MinMax"
