"""MinMaxSketch: the paper's novel sketch for bucket indexes (§3.3).

Structure: ``s`` hash rows of ``t`` bins each, like a Count-Min sketch,
but storing *bucket indexes* rather than counters, with a different
collision protocol:

* **Insert (Min)** — a bin keeps the *minimum* index ever written to it.
  Indexes are ordered by gradient magnitude (0 = bucket nearest zero),
  so collisions can only pull a stored index toward zero, never away.
* **Query (Max)** — of the ``s`` candidate bins for a key, return the
  *maximum*: since every candidate is a lower bound on the true index,
  the maximum is the tightest lower bound.

Consequently the decode error is strictly one-sided: the recovered
index is never larger than the true one, so decoded gradients are
*decayed*, never amplified — the property SGD tolerates (and Adam
compensates for), unlike the overestimation of additive sketches.

:class:`GroupedMinMaxSketch` implements §3.3 Solution 2: buckets are
split into ``r`` contiguous groups with one MinMaxSketch per group,
capping the worst-case index error at ``q / r``.  Keys are partitioned
per group (the decoder learns group membership from the per-group key
lists, matching the space analysis in §A.3).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .. import kernels, sanitize
from ..sketch.hashing import build_hash_family, hash_all_grouped

__all__ = ["MinMaxSketch", "GroupedMinMaxSketch"]


def _dtype_for_range(index_range: int) -> np.dtype:
    """Smallest unsigned dtype that can hold indexes in [0, index_range]."""
    if index_range < 2**8:
        return np.dtype(np.uint8)
    if index_range < 2**16:
        return np.dtype(np.uint16)
    return np.dtype(np.uint32)


class MinMaxSketch:
    """A single min-insert / max-query sketch over bucket indexes.

    Args:
        num_rows: number of hash tables ``s`` (paper default 2).
        num_bins: bins per table ``t`` (paper default d/5).
        index_range: exclusive upper bound on stored indexes; sets the
            bin dtype and the empty-bin sentinel.
        seed: hash family seed (encoder and decoder must agree).
        hash_family: see :func:`repro.sketch.hashing.build_hash_family`.
    """

    def __init__(
        self,
        num_rows: int = 2,
        num_bins: int = 1024,
        index_range: int = 256,
        seed: int = 0,
        hash_family: str = "multiply_shift",
    ) -> None:
        if num_rows <= 0 or num_bins <= 0:
            raise ValueError("num_rows and num_bins must be positive")
        if index_range <= 0:
            raise ValueError("index_range must be positive")
        self.num_rows = int(num_rows)
        self.num_bins = int(num_bins)
        self.index_range = int(index_range)
        self._dtype = _dtype_for_range(index_range)
        # Sentinel above any legal index: min-insert overwrites it on
        # first touch, and bins never touched are never queried (every
        # queried key was inserted, so all its bins were written).
        self._sentinel = np.iinfo(self._dtype).max
        if self.index_range > self._sentinel:
            raise ValueError("index_range leaves no room for the empty sentinel")
        # Recorded so the wire format can rebuild identical hash rows.
        self._master_seed = int(seed)
        self._hash_family_name = hash_family
        self._hashes = build_hash_family(num_rows, num_bins, seed, hash_family)
        self._table = np.full((num_rows, num_bins), self._sentinel, dtype=self._dtype)
        self._inserted = 0

    # ------------------------------------------------------------------
    # insert / query
    # ------------------------------------------------------------------
    def insert(self, key: int, index: int) -> None:
        """Insert one ``(key, bucket_index)`` pair (Min protocol)."""
        self.insert_many(
            np.asarray([key], dtype=np.int64), np.asarray([index], dtype=np.int64)
        )

    def insert_many(self, keys: np.ndarray, indexes: np.ndarray) -> None:
        """Vectorised insert of parallel ``keys`` / ``indexes`` arrays."""
        keys = np.asarray(keys, dtype=np.int64)
        indexes = np.asarray(indexes, dtype=np.int64)
        if keys.shape != indexes.shape:
            raise ValueError("keys and indexes must have the same shape")
        if keys.size == 0:
            return
        if indexes.min() < 0 or indexes.max() >= self.index_range:
            raise ValueError(
                f"indexes must lie in [0, {self.index_range}); "
                f"got [{indexes.min()}, {indexes.max()}]"
            )
        values = indexes.astype(self._dtype)
        if kernels.vectorised_enabled():
            # Fused kernel: hash every row at once, then a single
            # segmented min over the flattened (row, bin) space.  A
            # stable argsort groups duplicate bins together and
            # ``np.minimum.reduceat`` takes each group's min in one
            # pass — min is order-free, so this is bit-identical to
            # the scalar scatter loop below, but avoids ``ufunc.at``
            # (which dispatches per element) and the per-row Python
            # loop.
            bins = self._hashes.hash_all(keys)  # (rows, n)
            flat = (
                bins
                + (np.arange(self.num_rows, dtype=np.int64) * self.num_bins)[:, None]
            ).ravel()
            flat_values = np.broadcast_to(values, bins.shape).ravel()
            order = np.argsort(flat, kind="stable")
            sorted_bins = flat[order]
            sorted_values = flat_values[order]
            starts = np.empty(0, dtype=np.int64)
            if sorted_bins.size:
                boundaries = np.flatnonzero(sorted_bins[1:] != sorted_bins[:-1]) + 1
                starts = np.concatenate(([0], boundaries))
            segment_min = np.minimum.reduceat(sorted_values, starts)
            table_flat = self._table.reshape(-1)
            touched = sorted_bins[starts]
            table_flat[touched] = np.minimum(table_flat[touched], segment_min)
        else:
            for row, h in enumerate(self._hashes):
                bins = h(keys)
                np.minimum.at(self._table[row], bins, values)
        self._inserted += keys.size

    def query(self, key: int, strict: bool = False) -> int:
        """Query one key (Max protocol)."""
        return int(
            self.query_many(np.asarray([key], dtype=np.int64), strict=strict)[0]
        )

    def query_many(self, keys: np.ndarray, strict: bool = False) -> np.ndarray:
        """Vectorised query; returns int64 bucket indexes.

        For keys that were inserted, the result is guaranteed to be
        ``<=`` the true index (one-sided error).  Querying a key that
        was never inserted returns whatever its bins hold (possibly the
        sentinel, clipped to ``index_range - 1``).

        With ``strict=True`` (the sanitizer's decode path) a pre-clip
        candidate at or above ``index_range`` — a never-inserted key or
        a corrupted table — raises
        :class:`~repro.sanitize.SanitizerError` instead of being
        silently clipped.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        if kernels.vectorised_enabled():
            bins = self._hashes.hash_all(keys)  # (rows, n)
            candidates = self._table.reshape(-1)[
                bins
                + (np.arange(self.num_rows, dtype=np.int64) * self.num_bins)[:, None]
            ]
        else:
            candidates = np.empty((self.num_rows, keys.size), dtype=self._dtype)
            for row, h in enumerate(self._hashes):
                candidates[row] = self._table[row, h(keys)]
        result = candidates.max(axis=0).astype(np.int64)
        if strict:
            bad = result >= self.index_range
            if bad.any():
                offset = int(np.flatnonzero(bad)[0])
                raise sanitize.SanitizerError(
                    sanitize.INVARIANT_INDEX_RANGE,
                    f"stored bin value {int(result[offset])} at or above "
                    f"index_range {self.index_range} (never-inserted key "
                    "or corrupted table)",
                    offset=offset,
                )
        return np.minimum(result, self.index_range - 1)

    # ------------------------------------------------------------------
    # merge / accounting
    # ------------------------------------------------------------------
    def merge(self, other: "MinMaxSketch") -> "MinMaxSketch":
        """Merge by elementwise minimum (consistent with min-insert)."""
        if not isinstance(other, MinMaxSketch):
            raise TypeError(f"cannot merge with {type(other).__name__}")
        if (self.num_rows, self.num_bins, self.index_range) != (
            other.num_rows,
            other.num_bins,
            other.index_range,
        ):
            raise ValueError("sketch dimensions differ; cannot merge")
        np.minimum(self._table, other._table, out=self._table)
        self._inserted += other._inserted
        return self

    @property
    def inserted_count(self) -> int:
        return self._inserted

    @property
    def size_bytes(self) -> int:
        """Wire size: ``s * t * bytes_per_bin`` (§3.5)."""
        return self._table.nbytes

    @property
    def fill_ratio(self) -> float:
        """Fraction of bins that have been written at least once."""
        return float((self._table != self._sentinel).mean())

    def __repr__(self) -> str:
        return (
            f"MinMaxSketch(rows={self.num_rows}, bins={self.num_bins}, "
            f"range={self.index_range}, inserted={self._inserted})"
        )


class GroupedMinMaxSketch:
    """``r`` MinMaxSketches over contiguous bucket-index groups (§3.3).

    Bucket indexes in ``[0, q)`` are split into ``r`` groups of width
    ``ceil(q / r)``; group ``g`` covers ``[g*width, (g+1)*width)`` and
    owns its own MinMaxSketch storing the *within-group offset*, so the
    worst-case decoded index error drops from ``q`` to ``q / r``.

    The caller partitions keys by group via :meth:`partition` before
    encoding (the per-group key lists travel alongside the sketches, as
    in §A.3's space analysis), and the decoder passes each group's keys
    to :meth:`query_group`.

    Args:
        num_groups: ``r`` (paper default 8).
        index_range: total index range ``q``.
        num_rows: rows per group sketch (paper default 2).
        total_bins: total bin budget ``t`` spread across the ``r`` group
            sketches in proportion to nothing — equally, matching the
            paper's fixed ``s × t / r`` per-group sizing.
        seed: base seed; group ``g`` uses ``seed + g``.
    """

    def __init__(
        self,
        num_groups: int = 8,
        index_range: int = 256,
        num_rows: int = 2,
        total_bins: int = 8192,
        seed: int = 0,
        hash_family: str = "multiply_shift",
    ) -> None:
        if num_groups <= 0:
            raise ValueError("num_groups must be positive")
        if index_range < num_groups:
            num_groups = index_range  # never more groups than indexes
        self.num_groups = int(num_groups)
        self.index_range = int(index_range)
        self.group_width = -(-self.index_range // self.num_groups)  # ceil div
        bins_per_group = max(1, int(total_bins) // self.num_groups)
        self._sketches: List[MinMaxSketch] = [
            MinMaxSketch(
                num_rows=num_rows,
                num_bins=bins_per_group,
                index_range=self.group_width,
                seed=seed + 1009 * g,
                hash_family=hash_family,
            )
            for g in range(self.num_groups)
        ]

    # ------------------------------------------------------------------
    def group_of(self, indexes: np.ndarray) -> np.ndarray:
        """Group id of each bucket index."""
        indexes = np.asarray(indexes, dtype=np.int64)
        if indexes.size and (indexes.min() < 0 or indexes.max() >= self.index_range):
            raise ValueError(f"indexes must lie in [0, {self.index_range})")
        width = self.group_width
        if width & (width - 1) == 0:
            return indexes >> (width.bit_length() - 1)
        return indexes // width

    def partition_flat(
        self, keys: np.ndarray, indexes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Group-sort ``(keys, indexes)`` into flat per-group runs.

        Returns ``(sorted_keys, sorted_offsets, counts)`` where group
        ``g`` occupies ``counts[g]`` contiguous entries (ascending key
        order within each group, as the delta-binary key encoder
        requires).  This is the zero-copy form of :meth:`partition` —
        the insert and key-encode kernels consume it directly without
        slicing into per-group arrays and concatenating them back.
        """
        keys = np.asarray(keys, dtype=np.int64)
        indexes = np.asarray(indexes, dtype=np.int64)
        if keys.shape != indexes.shape:
            raise ValueError("keys and indexes must have the same shape")
        groups = self.group_of(indexes)
        width = self.group_width
        if width & (width - 1) == 0:
            offsets = indexes & (width - 1)
        else:
            offsets = indexes - groups * width
        if kernels.vectorised_enabled():
            # One stable sort by group id replaces num_groups boolean
            # mask passes; stability preserves the ascending key order
            # within each group, so the runs match the mask variant
            # element for element.  Group ids that fit a byte take the
            # uint8 radix path, which is several times faster than the
            # int64 sort.
            if self.num_groups <= 256:
                order = np.argsort(groups.astype(np.uint8), kind="stable")
            else:
                order = np.argsort(groups, kind="stable")
            bounds = np.searchsorted(
                groups.take(order), np.arange(self.num_groups + 1, dtype=np.int64)
            )
            return keys.take(order), offsets.take(order), np.diff(bounds)
        chunks_k: List[np.ndarray] = []
        chunks_o: List[np.ndarray] = []
        counts = np.zeros(self.num_groups, dtype=np.int64)
        for g in range(self.num_groups):
            mask = groups == g
            chunks_k.append(keys[mask])
            chunks_o.append(offsets[mask])
            counts[g] = chunks_k[-1].size
        if not chunks_k:
            return keys, offsets, counts
        return np.concatenate(chunks_k), np.concatenate(chunks_o), counts

    def partition(
        self, keys: np.ndarray, indexes: np.ndarray
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Split ``(keys, indexes)`` into per-group (keys, offsets) pairs.

        Returned lists preserve ascending key order within each group
        (required by the delta-binary key encoder).  Groups with no
        members yield empty arrays.
        """
        sorted_keys, sorted_offsets, counts = self.partition_flat(keys, indexes)
        bounds = np.zeros(self.num_groups + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        return [
            (sorted_keys[bounds[g]:bounds[g + 1]], sorted_offsets[bounds[g]:bounds[g + 1]])
            for g in range(self.num_groups)
        ]

    def insert_group(self, group: int, keys: np.ndarray, offsets: np.ndarray) -> None:
        """Insert one group's keys with within-group offsets."""
        self._sketches[group].insert_many(keys, offsets)

    def insert_partitioned(
        self, partitions: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> None:
        """Insert the output of :meth:`partition`."""
        if len(partitions) != self.num_groups:
            raise ValueError(
                f"expected {self.num_groups} partitions, got {len(partitions)}"
            )
        if kernels.vectorised_enabled() and 1 < self.group_width <= 255:
            key_chunks: List[np.ndarray] = []
            offset_chunks: List[np.ndarray] = []
            counts = np.zeros(self.num_groups, dtype=np.int64)
            for g, (keys, offsets) in enumerate(partitions):
                keys = np.asarray(keys, dtype=np.int64)
                offsets = np.asarray(offsets, dtype=np.int64)
                if keys.shape != offsets.shape:
                    raise ValueError("keys and indexes must have the same shape")
                if keys.size == 0:
                    continue
                counts[g] = keys.size
                key_chunks.append(keys)
                offset_chunks.append(offsets)
            if not key_chunks:
                return
            self._insert_flat_batched(
                np.concatenate(key_chunks), np.concatenate(offset_chunks), counts
            )
            return
        for g, (keys, offsets) in enumerate(partitions):
            if keys.size:
                self.insert_group(g, keys, offsets)

    def insert_flat(
        self, sorted_keys: np.ndarray, sorted_offsets: np.ndarray, counts: np.ndarray
    ) -> None:
        """Insert the flat output of :meth:`partition_flat` directly.

        Skips the per-group slice/re-concatenate round trip of
        :meth:`partition` + :meth:`insert_partitioned`; this is the hot
        encode path.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.size != self.num_groups:
            raise ValueError(
                f"expected {self.num_groups} group counts, got {counts.size}"
            )
        if sorted_keys.shape != sorted_offsets.shape:
            raise ValueError("keys and indexes must have the same shape")
        if sorted_keys.size != int(counts.sum()):
            raise ValueError("counts must sum to sorted_keys.size")
        if sorted_keys.size == 0:
            return
        if kernels.vectorised_enabled() and 1 < self.group_width <= 255:
            self._insert_flat_batched(sorted_keys, sorted_offsets, counts)
            return
        bounds = np.zeros(self.num_groups + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        for g in range(self.num_groups):
            if counts[g]:
                self.insert_group(
                    g,
                    sorted_keys[bounds[g]:bounds[g + 1]],
                    sorted_offsets[bounds[g]:bounds[g + 1]],
                )

    def _insert_flat_batched(
        self, keys_cat: np.ndarray, offs_cat: np.ndarray, counts: np.ndarray
    ) -> None:
        """Scatter-min one flat batch into every group's table at once.

        Offsets span only ``group_width`` distinct values, so the
        scatter-min can run as one fused kernel: hash all group runs at
        once, order the entries by descending offset, and let plain
        fancy assignment finish — the last (smallest) write to each bin
        wins, exactly the Min protocol.
        """
        sketches = self._sketches
        ref = sketches[0]
        rows = ref.num_rows
        bins = ref.num_bins
        num = self.num_groups
        # One range check over the concatenation instead of two small
        # reductions per group.
        if offs_cat.min() < 0 or offs_cat.max() >= ref.index_range:
            raise ValueError(
                f"indexes must lie in [0, {ref.index_range}); "
                f"got [{offs_cat.min()}, {offs_cat.max()}]"
            )
        fresh = [False] * num
        for g in range(num):
            if counts[g]:
                sk = sketches[g]
                fresh[g] = sk._inserted == 0
                sk._inserted += int(counts[g])
        group_ids = np.repeat(np.arange(num, dtype=np.int64), counts)
        hashed = hash_all_grouped(
            [sk._hashes for sk in sketches], keys_cat, counts, group_ids
        )  # (rows, n)
        # Offset every entry into its group's slice of one flat scratch
        # table laid out as num_groups x num_rows x num_bins.
        hashed += (group_ids * (rows * bins))[None, :]
        for row in range(1, rows):
            hashed[row] += row * bins if row > 1 else bins
        # Stable uint8 argsort is a radix sort; reversing it orders the
        # entries by descending offset so the smallest offset is written
        # last into every bin.  Rows scatter into disjoint slices of the
        # scratch table, so each row can be written separately with a
        # contiguous take instead of one transposed fancy gather.
        order = np.argsort(offs_cat.astype(np.uint8), kind="stable")[::-1]
        vals_sorted = offs_cat.take(order).astype(ref._dtype)
        scratch = np.full(num * rows * bins, ref._sentinel, dtype=ref._dtype)
        for row in range(rows):
            scratch[hashed[row].take(order)] = vals_sorted
        span = rows * bins
        for g in range(num):
            if counts[g]:
                sk = sketches[g]
                part = scratch[g * span:(g + 1) * span].reshape(rows, bins)
                if fresh[g]:
                    # An untouched table is all-sentinel, so the min
                    # merge is a plain copy.
                    np.copyto(sk._table, part)
                else:
                    np.minimum(sk._table, part, out=sk._table)

    def query_group(
        self, group: int, keys: np.ndarray, strict: bool = False
    ) -> np.ndarray:
        """Recover global bucket indexes for one group's keys.

        ``strict`` forwards to :meth:`MinMaxSketch.query_many`: the
        sanitizer's decode path rejects pre-clip overflows instead of
        clipping them.
        """
        offsets = self._sketches[group].query_many(keys, strict=strict)
        return np.minimum(
            offsets + group * self.group_width, self.index_range - 1
        )

    # ------------------------------------------------------------------
    @property
    def sketches(self) -> Sequence[MinMaxSketch]:
        return tuple(self._sketches)

    @property
    def size_bytes(self) -> int:
        return sum(s.size_bytes for s in self._sketches)

    @property
    def max_index_error(self) -> int:
        """Worst-case decoded index error: ``group_width - 1`` (= q/r)."""
        return self.group_width - 1

    def __repr__(self) -> str:
        return (
            f"GroupedMinMaxSketch(groups={self.num_groups}, "
            f"range={self.index_range}, width={self.group_width})"
        )
