"""Bit-level packing of small unsigned integers.

§3.2 step 4 "binary encode"s bucket indexes; with ``q = 256`` that is
exactly one byte, but any smaller bucket count wastes bits in byte
alignment (q = 128 needs only 7 bits, q = 16 only 4).  This module
packs an array of values < 2**bits into ``ceil(n * bits / 8)`` bytes
and back, vectorised via numpy's unpackbits/packbits.

Used by the ``pack_index_bits`` option of
:class:`~repro.core.config.SketchMLConfig` (the Adam+Key+Quan path) and
available as a standalone utility.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_uint_array", "unpack_uint_array", "packed_size_bytes"]

_MAX_BITS = 16


def packed_size_bytes(count: int, bits: int) -> int:
    """Bytes needed to pack ``count`` values of ``bits`` bits each."""
    if count < 0:
        raise ValueError("count must be non-negative")
    _validate_bits(bits)
    return -(-count * bits // 8)


def _validate_bits(bits: int) -> None:
    if not 1 <= bits <= _MAX_BITS:
        raise ValueError(f"bits must be in [1, {_MAX_BITS}], got {bits}")


def pack_uint_array(values: np.ndarray, bits: int) -> bytes:
    """Pack unsigned integers < 2**bits into a dense bit string.

    Args:
        values: 1-D array of non-negative ints below ``2**bits``.
        bits: bits per value (1–16).

    Returns:
        ``ceil(len(values) * bits / 8)`` bytes, MSB-first per value.
    """
    _validate_bits(bits)
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 1:
        raise ValueError("values must be a 1-D array")
    if values.size == 0:
        return b""
    if values.min() < 0 or values.max() >= (1 << bits):
        raise ValueError(f"values must lie in [0, 2**{bits})")
    # Expand each value to its `bits` bits (MSB first), then pack.
    shifts = np.arange(bits - 1, -1, -1, dtype=np.int64)
    bit_matrix = ((values[:, None] >> shifts[None, :]) & 1).astype(np.uint8)
    return np.packbits(bit_matrix.ravel()).tobytes()


def unpack_uint_array(blob: bytes, count: int, bits: int) -> np.ndarray:
    """Inverse of :func:`pack_uint_array`.

    Args:
        blob: packed bytes.
        count: number of values to recover.
        bits: bits per value used at pack time.

    Raises:
        ValueError: if the blob is too short for ``count`` values.
    """
    _validate_bits(bits)
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return np.empty(0, dtype=np.int64)
    needed = packed_size_bytes(count, bits)
    if len(blob) < needed:
        raise ValueError(
            f"blob holds {len(blob)} bytes; {needed} needed for "
            f"{count} x {bits}-bit values"
        )
    bit_array = np.unpackbits(
        np.frombuffer(blob[:needed], dtype=np.uint8), count=count * bits
    )
    bit_matrix = bit_array.reshape(count, bits).astype(np.int64)
    shifts = np.arange(bits - 1, -1, -1, dtype=np.int64)
    return (bit_matrix << shifts[None, :]).sum(axis=1)
