"""The SketchML gradient compressor (paper §3, Figure 2).

Encode phase (for a sparse gradient ``{(k_j, v_j)}``):

1. Fit a :class:`~repro.core.quantizer.QuantileBucketQuantizer` on the
   values — separate pos/neg quantile sketches, ``q`` equi-depth
   buckets, indexes ordered by magnitude.
2. Per sign, partition keys by bucket *group* (``r`` groups) and insert
   ``(key, within-group offset)`` into that group's
   :class:`~repro.core.minmax_sketch.MinMaxSketch` (Min protocol).
3. Delta-binary-encode each group's ascending key list.
4. Ship: per-group key blobs + per-group sketch tables + bucket means.

Decode phase reverses it: recover keys from the delta blobs, query each
group's sketch (Max protocol) for bucket indexes, map indexes to bucket
means, merge the parts, and sort by key.

The same class implements the Figure 8 ablation stack through the
``enable_*`` flags on :class:`~repro.core.config.SketchMLConfig`; with
all flags off it degrades to the uncompressed 12-bytes-per-pair Adam
baseline, so one code path serves every bar of Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import sanitize, telemetry
from ..compression.base import (
    BYTES_PER_RAW_KEY,
    BYTES_PER_RAW_VALUE,
    CompressedGradient,
    GradientCompressor,
    register_compressor,
    validate_sparse_gradient,
)
from .bitpack import pack_uint_array, unpack_uint_array
from .config import SketchMLConfig
from .delta_encoding import decode_keys, encode_key_groups_flat, encode_keys
from .minmax_sketch import GroupedMinMaxSketch
from .quantizer import QuantileBucketQuantizer, SignedBuckets

__all__ = ["SketchMLCompressor", "SketchMLPayload", "SignPart"]

_HEADER_BYTES = 16
_PART_HEADER_BYTES = 8


@dataclass
class SignPart:
    """One sign's share of a compressed gradient.

    Exactly one of the key representations and one of the value
    representations is populated, depending on the config flags.
    """

    sign: int
    nnz: int
    buckets: Optional[SignedBuckets] = None
    # --- keys ---
    group_key_blobs: Optional[List[bytes]] = None  # minmax path (per group)
    key_blob: Optional[bytes] = None  # delta keys, no sketch
    raw_keys: Optional[np.ndarray] = None  # 4-byte keys
    # --- values ---
    sketch: Optional[GroupedMinMaxSketch] = None  # minmax path
    indexes: Optional[np.ndarray] = None  # quantized, no sketch
    packed_indexes: Optional[bytes] = None  # bit-packed variant
    index_bits: int = 0  # bits per packed index
    raw_values: Optional[np.ndarray] = None  # unquantized floats


@dataclass
class SketchMLPayload:
    """Payload of a SketchML message: one part per sign present.

    ``decay_scale`` (1.0 when compensation is off) multiplies every
    decoded value: the encoder measures its own round-trip decay and
    ships the correction (§3.3's vanishing-gradient compensation).
    """

    parts: List[SignPart] = field(default_factory=list)
    decay_scale: float = 1.0


def _index_bytes_per_value(num_buckets: int) -> int:
    """Bytes per encoded bucket index (1 for q <= 256, §3.2 step 4)."""
    return 1 if num_buckets <= 256 else 2


@register_compressor("sketchml")
class SketchMLCompressor(GradientCompressor):
    """End-to-end SketchML encode/decode with exact byte accounting.

    Args:
        config: a :class:`SketchMLConfig`; defaults to the paper's
            full pipeline with default hyper-parameters.

    Example:
        >>> import numpy as np
        >>> rng = np.random.default_rng(0)
        >>> keys = np.sort(rng.choice(100_000, size=4000, replace=False))
        >>> values = rng.laplace(scale=0.01, size=4000)
        >>> comp = SketchMLCompressor()
        >>> out_keys, out_values, msg = comp.roundtrip(keys, values, 100_000)
        >>> bool(np.array_equal(out_keys, keys))  # keys are lossless
        True
        >>> msg.compression_rate > 4
        True
    """

    name = "sketchml"

    def __init__(self, config: Optional[SketchMLConfig] = None) -> None:
        self.config = config or SketchMLConfig()
        self._cached_quantizer: Optional[QuantileBucketQuantizer] = None
        self._compress_calls = 0

    def reset(self) -> None:
        """Drop the cached quantizer (used with ``refit_interval > 1``)."""
        self._cached_quantizer = None
        self._compress_calls = 0

    # ------------------------------------------------------------------
    # compression
    # ------------------------------------------------------------------
    def compress(
        self, keys: np.ndarray, values: np.ndarray, dimension: int
    ) -> CompressedGradient:
        with telemetry.span("codec.compress"):
            message = self._compress(keys, values, dimension)
        if telemetry.enabled():
            telemetry.counter("codec.messages", 1)
            telemetry.counter("codec.encoded_bytes", message.num_bytes)
            telemetry.counter("codec.raw_bytes", message.raw_bytes)
        return message

    def _compress(
        self, keys: np.ndarray, values: np.ndarray, dimension: int
    ) -> CompressedGradient:
        keys, values = validate_sparse_gradient(keys, values, dimension)
        cfg = self.config
        sanitize_active = bool(cfg.sanitize) or sanitize.enabled()
        breakdown: Dict[str, int] = {"header": _HEADER_BYTES}
        payload = SketchMLPayload()

        if keys.size == 0:
            return CompressedGradient(
                payload=payload,
                num_bytes=_HEADER_BYTES,
                dimension=dimension,
                nnz=0,
                breakdown=breakdown,
            )

        if not cfg.enable_quantization:
            part, part_bytes = self._compress_unquantized(keys, values, breakdown)
            payload.parts.append(part)
            total = _HEADER_BYTES + part_bytes
            return CompressedGradient(payload, total, dimension, keys.size, breakdown)

        # §3.5 assumes q << d; for tiny gradients a fixed q would make
        # the 8q bucket-means payload dominate the message, so the
        # effective bucket count adapts down (decoding needs nothing
        # extra: the bucket means travel with the message).
        # Integer-index gathers (flatnonzero + take) instead of boolean
        # masks: fancy boolean indexing walks the full mask per gather,
        # an order of magnitude slower for large gradients.
        neg_sel = np.flatnonzero(values < 0)
        pos_sel = np.flatnonzero(values >= 0)
        refit_due = (
            self._cached_quantizer is None
            or self._compress_calls % cfg.refit_interval == 0
        )
        self._compress_calls += 1
        if not refit_due:
            quantizer = self._cached_quantizer
            if (pos_sel.size and quantizer.positive is None) or (
                neg_sel.size and quantizer.negative is None
            ):
                # The cached splits can lack a sign the current gradient
                # has (e.g. an all-positive fit followed by mixed
                # signs); refit on demand.
                refit_due = True
        pos_enc: Optional[np.ndarray] = None
        neg_enc: Optional[np.ndarray] = None
        if refit_due:
            with telemetry.span("codec.quantizer_fit"):
                effective_buckets = min(cfg.num_buckets, max(8, keys.size // 8))
                quantizer = QuantileBucketQuantizer(
                    num_buckets=effective_buckets,
                    sketch=cfg.quantile_sketch,
                    sketch_size=cfg.quantile_sketch_size,
                    seed=cfg.seed,
                )
                # Fitting sorts each sign's magnitudes anyway; take the
                # bucket indexes as a byproduct instead of re-searching
                # every value against the splits afterwards.
                pos_enc, neg_enc = quantizer.fit_encode(
                    values, pos_sel=pos_sel, neg_sel=neg_sel
                )
            self._cached_quantizer = quantizer
        total = _HEADER_BYTES
        group_keys_by_part: List[Optional[Tuple[np.ndarray, np.ndarray]]] = []
        for sign, sel, enc in ((1, pos_sel, pos_enc), (-1, neg_sel, neg_enc)):
            if sel.size == 0:
                continue
            buckets = quantizer.buckets_for_sign(sign)
            if enc is None:
                magnitudes = values.take(sel) if sign > 0 else -values.take(sel)
                enc = buckets.encode(magnitudes)
            part, part_bytes, part_group_keys = self._compress_sign(
                sign,
                keys.take(sel),
                enc,
                buckets,
                breakdown,
                sanitize_active=sanitize_active,
            )
            payload.parts.append(part)
            group_keys_by_part.append(part_group_keys)
            total += part_bytes
        if cfg.compensate_decay and cfg.enable_minmax:
            payload.decay_scale = self._measure_decay_scale(
                payload, values, group_keys_by_part,
                sanitize_active=sanitize_active,
            )
            telemetry.gauge("codec.decay_scale", payload.decay_scale)
            breakdown["decay_scale"] = 8
            total += 8
        return CompressedGradient(payload, total, dimension, keys.size, breakdown)

    def _measure_decay_scale(
        self,
        payload: SketchMLPayload,
        values: np.ndarray,
        group_keys_by_part: List[Optional[Tuple[np.ndarray, np.ndarray]]],
        sanitize_active: bool = False,
    ) -> float:
        """Encoder-side round-trip: true mean |v| over decoded mean |v|.

        The just-built sketches are queried directly with the partition
        key arrays still in hand — no decode of the freshly encoded key
        blobs.  ``decode_keys(encode_keys(k)) == k`` exactly, so the
        measured scale is bit-identical to a full message round-trip.
        """
        decoded_values: List[np.ndarray] = []
        for part, part_group_keys in zip(payload.parts, group_keys_by_part):
            if part.sketch is None or part_group_keys is None:
                _, part_values = self._decompress_part(
                    part, sanitize_active=sanitize_active
                )
                decoded_values.append(part_values)
                continue
            sorted_keys, counts = part_group_keys
            bounds = np.zeros(counts.size + 1, dtype=np.int64)
            np.cumsum(counts, out=bounds[1:])
            index_chunks = [
                part.sketch.query_group(group, sorted_keys[bounds[group]:bounds[group + 1]])
                for group in range(counts.size)
                if counts[group]
            ]
            if not index_chunks:
                continue
            decoded_values.append(part.buckets.decode(np.concatenate(index_chunks)))
        decoded = np.concatenate(decoded_values) if decoded_values else values
        decoded_mean = float(np.abs(decoded).mean()) if decoded.size else 0.0
        if decoded_mean <= 0.0:
            return 1.0
        scale = float(np.abs(values).mean()) / decoded_mean
        # Decay is one-sided, so the correction can only scale *up*;
        # cap it so a pathological sketch cannot explode an update.
        return float(np.clip(scale, 1.0, 8.0))

    def _compress_unquantized(
        self, keys: np.ndarray, values: np.ndarray, breakdown: Dict[str, int]
    ) -> Tuple[SignPart, int]:
        """Adam / Adam+Key paths: raw float values, keys maybe delta'd."""
        cfg = self.config
        part = SignPart(sign=0, nnz=keys.size, raw_values=values.copy())
        value_bytes = BYTES_PER_RAW_VALUE * keys.size
        if cfg.enable_delta_keys:
            with telemetry.span("codec.delta_encode"):
                part.key_blob = encode_keys(keys)
            key_bytes = len(part.key_blob)
        else:
            part.raw_keys = keys.copy()
            key_bytes = BYTES_PER_RAW_KEY * keys.size
        breakdown["keys"] = breakdown.get("keys", 0) + key_bytes
        breakdown["values"] = breakdown.get("values", 0) + value_bytes
        breakdown["part_headers"] = breakdown.get("part_headers", 0) + _PART_HEADER_BYTES
        return part, key_bytes + value_bytes + _PART_HEADER_BYTES

    def _compress_sign(
        self,
        sign: int,
        keys: np.ndarray,
        indexes: np.ndarray,
        buckets: SignedBuckets,
        breakdown: Dict[str, int],
        sanitize_active: bool = False,
    ) -> Tuple[SignPart, int, Optional[List[np.ndarray]]]:
        """Quantized path for one sign, with or without MinMaxSketch.

        Returns the part, its byte cost, and (on the MinMaxSketch path)
        the per-group key arrays so the decay measurement can query the
        sketches without re-decoding the key blobs.  When
        ``sanitize_active`` the freshly built sketch is immediately
        queried back and the §3.3 one-sided/range invariants are checked
        against the known true indexes.
        """
        cfg = self.config
        part = SignPart(sign=sign, nnz=keys.size, buckets=buckets)
        bucket_bytes = buckets.payload_bytes
        breakdown["bucket_means"] = breakdown.get("bucket_means", 0) + bucket_bytes
        breakdown["part_headers"] = breakdown.get("part_headers", 0) + _PART_HEADER_BYTES
        total = bucket_bytes + _PART_HEADER_BYTES
        group_keys: Optional[Tuple[np.ndarray, np.ndarray]] = None

        if cfg.enable_minmax:
            sketch = GroupedMinMaxSketch(
                num_groups=cfg.num_groups,
                index_range=max(buckets.num_buckets, 1),
                num_rows=cfg.minmax_rows,
                total_bins=cfg.minmax_total_bins(keys.size),
                seed=cfg.seed + (0 if sign > 0 else 7_919),
                hash_family=cfg.hash_family,
            )
            # Flat partition: the insert scatter and the key encoder both
            # consume the group-sorted concatenation directly, so no
            # per-group arrays are materialised on the encode path.
            with telemetry.span("codec.minmax_insert"):
                sorted_keys, sorted_offsets, counts = sketch.partition_flat(
                    keys, indexes
                )
                sketch.insert_flat(sorted_keys, sorted_offsets, counts)
            if sanitize_active:
                sanitize.verify_sketch_roundtrip(
                    sketch, sorted_keys, sorted_offsets, counts,
                    part=f"sign={sign}",
                )
            if telemetry.enabled():
                self._trace_sketch_fidelity(
                    sketch, sorted_keys, sorted_offsets, counts, sign
                )
            part.sketch = sketch
            group_keys = (sorted_keys, counts)
            with telemetry.span("codec.delta_encode"):
                part.group_key_blobs = encode_key_groups_flat(sorted_keys, counts)
            key_bytes = sum(len(blob) for blob in part.group_key_blobs)
            sketch_bytes = sketch.size_bytes
            breakdown["keys"] = breakdown.get("keys", 0) + key_bytes
            breakdown["sketch"] = breakdown.get("sketch", 0) + sketch_bytes
            total += key_bytes + sketch_bytes
        else:
            if cfg.pack_index_bits:
                bits = max(1, int(np.ceil(np.log2(max(buckets.num_buckets, 2)))))
                part.packed_indexes = pack_uint_array(indexes, bits)
                part.index_bits = bits
                value_bytes = len(part.packed_indexes)
            else:
                index_width = _index_bytes_per_value(cfg.num_buckets)
                part.indexes = indexes.astype(
                    np.uint8 if index_width == 1 else np.uint16
                )
                value_bytes = index_width * keys.size
            if cfg.enable_delta_keys:
                with telemetry.span("codec.delta_encode"):
                    part.key_blob = encode_keys(keys)
                key_bytes = len(part.key_blob)
            else:
                part.raw_keys = keys.copy()
                key_bytes = BYTES_PER_RAW_KEY * keys.size
            breakdown["keys"] = breakdown.get("keys", 0) + key_bytes
            breakdown["values"] = breakdown.get("values", 0) + value_bytes
            total += key_bytes + value_bytes
        return part, total, group_keys

    @staticmethod
    def _trace_sketch_fidelity(
        sketch: GroupedMinMaxSketch,
        sorted_keys: np.ndarray,
        sorted_offsets: np.ndarray,
        counts: np.ndarray,
        sign: int,
    ) -> None:
        """Query the fresh sketch back against the known true indexes.

        Recording-only (guarded by ``telemetry.enabled()``): emits the
        sketch collision rate (fraction of keys whose decoded global
        bucket index differs from the inserted one) and the mean
        bucket-index decode error.  Min-insert/Max-query is one-sided,
        so errors are how far *below* the true index collisions pull a
        decode (§3.3).
        """
        counts = np.asarray(counts, dtype=np.int64)
        bounds = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        decoded_chunks = [
            sketch.query_group(g, sorted_keys[bounds[g]:bounds[g + 1]])
            for g in range(counts.size)
            if counts[g]
        ]
        if not decoded_chunks:
            return
        decoded = np.concatenate(decoded_chunks)
        group_ids = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
        true_global = (
            np.asarray(sorted_offsets, dtype=np.int64)
            + group_ids * int(sketch.group_width)
        )
        errors = np.abs(true_global - decoded)
        telemetry.gauge(
            "codec.sketch_collision_rate",
            float(np.count_nonzero(errors) / errors.size),
            sign=sign,
        )
        telemetry.hist(
            "codec.bucket_index_error", float(errors.mean()), sign=sign
        )

    # ------------------------------------------------------------------
    # decompression
    # ------------------------------------------------------------------
    def decompress(
        self, message: CompressedGradient
    ) -> Tuple[np.ndarray, np.ndarray]:
        with telemetry.span("codec.decompress"):
            return self._decompress(message)

    def _decompress(
        self, message: CompressedGradient
    ) -> Tuple[np.ndarray, np.ndarray]:
        payload = message.payload
        if not isinstance(payload, SketchMLPayload):
            raise TypeError("message was not produced by SketchMLCompressor")
        sanitize_active = bool(self.config.sanitize) or sanitize.enabled()
        if sanitize_active:
            sanitize.check_decay_scale(payload.decay_scale)
        all_keys: List[np.ndarray] = []
        all_values: List[np.ndarray] = []
        for part_idx, part in enumerate(payload.parts):
            part_keys, part_values = self._decompress_part(
                part, sanitize_active=sanitize_active
            )
            if sanitize_active:
                sanitize.check_sign_preservation(
                    part.sign, part_values, part=part_idx
                )
            all_keys.append(part_keys)
            all_values.append(part_values)
        if not all_keys:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        keys = np.concatenate(all_keys)
        values = np.concatenate(all_values)
        if payload.decay_scale != 1.0:
            values = values * payload.decay_scale
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        if sanitize_active:
            # Post-merge, sorted keys are strictly ascending iff no key
            # appears in more than one part (pos/neg parts are disjoint
            # in any honest message).
            sanitize.check_ascending_keys(keys, part="merged")
        return keys, values[order]

    def _decompress_part(
        self, part: SignPart, sanitize_active: bool = False
    ) -> Tuple[np.ndarray, np.ndarray]:
        if part.raw_values is not None:
            # Unquantized path.
            if part.key_blob is not None:
                keys = decode_keys(part.key_blob)
            else:
                keys = part.raw_keys
            if sanitize_active:
                sanitize.check_ascending_keys(keys, part=part.sign)
            return keys, part.raw_values

        if part.buckets is None:
            raise ValueError("quantized part is missing its bucket metadata")

        if part.sketch is not None:
            # Stage 1: recover every group's key list from its delta
            # blob; stage 2: query the group sketches.  Two passes so
            # each codec stage gets its own span — outputs are
            # identical to an interleaved walk.
            group_key_arrays: List[Tuple[int, np.ndarray]] = []
            with telemetry.span("codec.delta_decode"):
                for group, blob in enumerate(part.group_key_blobs or []):
                    group_keys = decode_keys(blob)
                    if group_keys.size == 0:
                        continue
                    group_key_arrays.append((group, group_keys))
            if sanitize_active:
                for group, group_keys in group_key_arrays:
                    sanitize.check_ascending_keys(
                        group_keys, part=part.sign, group=group
                    )
            keys_chunks: List[np.ndarray] = []
            index_chunks: List[np.ndarray] = []
            with telemetry.span("codec.minmax_query"):
                for group, group_keys in group_key_arrays:
                    keys_chunks.append(group_keys)
                    index_chunks.append(
                        part.sketch.query_group(
                            group, group_keys, strict=sanitize_active
                        )
                    )
            if sanitize_active:
                for (group, _), group_indexes in zip(
                    group_key_arrays, index_chunks
                ):
                    sanitize.check_bucket_indexes(
                        group_indexes,
                        part.sketch.index_range,
                        group=group,
                        group_width=part.sketch.group_width,
                        part=part.sign,
                    )
            if not keys_chunks:
                return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
            keys = np.concatenate(keys_chunks)
            indexes = np.concatenate(index_chunks)
        else:
            if part.key_blob is not None:
                with telemetry.span("codec.delta_decode"):
                    keys = decode_keys(part.key_blob)
            else:
                keys = part.raw_keys
            if part.packed_indexes is not None:
                indexes = unpack_uint_array(
                    part.packed_indexes, keys.size, part.index_bits
                )
            else:
                indexes = part.indexes.astype(np.int64)
            if sanitize_active:
                sanitize.check_ascending_keys(keys, part=part.sign)
                # Pre-clip check: SignedBuckets.decode would silently
                # clamp an out-of-range index.
                sanitize.check_bucket_indexes(
                    indexes, part.buckets.num_buckets, part=part.sign
                )
        values = part.buckets.decode(indexes)
        return keys, values

    def __repr__(self) -> str:
        return f"SketchMLCompressor(config={self.config.ablation_label!r})"
