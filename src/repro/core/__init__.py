"""SketchML core: the paper's primary contribution (§3).

* :class:`QuantileBucketQuantizer` — §3.2 quantile-bucket quantification.
* :class:`MinMaxSketch` / :class:`GroupedMinMaxSketch` — §3.3.
* :func:`encode_keys` / :func:`decode_keys` — §3.4 delta-binary keys.
* :class:`SketchMLCompressor` — the end-to-end pipeline of Figure 2.
"""

from .compressor import SketchMLCompressor, SketchMLPayload, SignPart
from .config import SketchMLConfig
from .delta_encoding import (
    DeltaKeyStats,
    decode_keys,
    delta_key_stats,
    encode_keys,
)
from .minmax_sketch import GroupedMinMaxSketch, MinMaxSketch
from .quantizer import QuantileBucketQuantizer, SignedBuckets
from .serialization import (
    SerializationError,
    deserialize_message,
    serialize_message,
)
from .wire import WireSketchMLCompressor

__all__ = [
    "SketchMLCompressor",
    "SketchMLPayload",
    "SignPart",
    "SketchMLConfig",
    "QuantileBucketQuantizer",
    "SignedBuckets",
    "MinMaxSketch",
    "GroupedMinMaxSketch",
    "encode_keys",
    "decode_keys",
    "delta_key_stats",
    "DeltaKeyStats",
    "serialize_message",
    "deserialize_message",
    "SerializationError",
    "WireSketchMLCompressor",
]
