"""rANS entropy coder for the bucket-index stream.

The quantizer's equi-depth buckets make the index stream *near*
uniform, but never exactly: MinMaxSketch decay skews the effective
distribution (§3.4 compensation shifts mass toward the low buckets),
refit intervals lag the gradient distribution, and real gradients are
heavy-tailed between refits.  That residual skew is free compression —
the payload already ships the bucket table, so the decoder can rebuild
the exact probability model from the same CDF the encoder used.

This module implements a byte-renormalised range asymmetric numeral
system (rANS) with a static frequency table quantised to
``PROB_SCALE`` (:func:`quantize_freqs`).  Properties the wire format
relies on:

* **Deterministic** — no randomness, no floating point in the coder
  itself; the same symbol stream and table always produce the same
  bytes, on every platform (the cross-version golden fixtures pin
  this).
* **Self-checking** — the encoder starts from a known state and the
  decoder must land back on it with every byte consumed, so truncation
  and most corruptions raise :class:`EntropyError` instead of decoding
  silently-wrong symbols.
* **Bounded** — decode performs exactly ``count`` iterations with
  bounds-checked byte reads; a hostile stream can make it *fail*, never
  hang or over-allocate.

The per-symbol loops are deliberate: this is the opt-in v2 payload
path, not a dual-path kernel (see docs/static_analysis.md), and the
state recurrence is sequential by construction.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = [
    "EntropyError",
    "PROB_BITS",
    "PROB_SCALE",
    "quantize_freqs",
    "encode_indexes",
    "decode_indexes",
]

#: Probability resolution: every frequency table sums to ``2**PROB_BITS``.
PROB_BITS = 12
PROB_SCALE = 1 << PROB_BITS

#: Lower bound of the normalised state interval ``[L, 256*L)``.
_RANS_L = 1 << 16
#: Serialized width of the final coder state.
_STATE_BYTES = 4


class EntropyError(ValueError):
    """Raised when a symbol stream cannot be entropy coded or decoded."""


def quantize_freqs(counts: np.ndarray) -> np.ndarray:
    """Quantise raw symbol counts to a table summing to ``PROB_SCALE``.

    Every symbol with a nonzero count keeps a frequency of at least 1
    (a zero frequency would make that symbol unencodable); the rounding
    remainder is settled against the most frequent symbol so the result
    is deterministic.  Returns a little-endian ``uint16`` array.

    Raises:
        EntropyError: if the counts are empty, all zero, or there are
            more distinct symbols than ``PROB_SCALE`` can resolve.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1 or counts.size == 0:
        raise EntropyError("frequency table must be a non-empty 1-d array")
    if counts.size > PROB_SCALE:
        raise EntropyError(
            f"{counts.size} symbols exceed the {PROB_SCALE}-slot model"
        )
    if np.any(counts < 0):
        raise EntropyError("negative symbol count")
    total = int(counts.sum())
    if total <= 0:
        raise EntropyError("cannot build a model from all-zero counts")
    freqs = (counts * PROB_SCALE) // total
    freqs[(counts > 0) & (freqs == 0)] = 1
    diff = PROB_SCALE - int(freqs.sum())
    while diff != 0:
        # Settle the remainder against the largest entry; argmax is
        # deterministic (first occurrence) so the table is reproducible.
        slot = int(np.argmax(freqs))
        if diff > 0:
            freqs[slot] += diff
            diff = 0
        else:
            take = min(-diff, int(freqs[slot]) - 1)
            if take <= 0:
                raise EntropyError("frequency table cannot be normalised")
            freqs[slot] -= take
            diff += take
    return freqs.astype("<u2")


def _validate_freqs(freqs: np.ndarray) -> List[int]:
    freqs = np.asarray(freqs)
    if freqs.ndim != 1 or freqs.size == 0 or freqs.size > PROB_SCALE:
        raise EntropyError(f"invalid frequency table of {freqs.size} entries")
    table: List[int] = [int(f) for f in freqs]
    if any(f < 0 for f in table) or sum(table) != PROB_SCALE:
        raise EntropyError(
            f"frequency table sums to {sum(table)}, expected {PROB_SCALE}"
        )
    return table


def _cumulative(table: List[int]) -> List[int]:
    cum = [0] * len(table)
    run = 0
    for i, f in enumerate(table):
        cum[i] = run
        run += f
    return cum


def encode_indexes(symbols: np.ndarray, freqs: np.ndarray) -> bytes:
    """Encode a symbol stream against a :func:`quantize_freqs` table.

    Returns the coded byte string: 4 bytes of final coder state
    followed by the renormalisation stream in decode order.

    Raises:
        EntropyError: if a symbol falls outside the table or has a zero
            quantised frequency.
    """
    table = _validate_freqs(freqs)
    cum = _cumulative(table)
    num_symbols = len(table)
    x = _RANS_L
    out = bytearray()
    # Encode runs the recurrence backwards so decode streams forwards.
    for s in reversed(np.asarray(symbols).tolist()):
        s = int(s)
        if not 0 <= s < num_symbols:
            raise EntropyError(f"symbol {s} outside {num_symbols}-entry model")
        f = table[s]
        if f == 0:
            raise EntropyError(f"symbol {s} has zero modelled frequency")
        x_max = ((_RANS_L >> PROB_BITS) << 8) * f
        while x >= x_max:
            out.append(x & 0xFF)
            x >>= 8
        x = (x // f) * PROB_SCALE + cum[s] + (x % f)
    out.reverse()
    return x.to_bytes(_STATE_BYTES, "little") + bytes(out)


def decode_indexes(blob: bytes, freqs: np.ndarray, count: int) -> np.ndarray:
    """Decode exactly ``count`` symbols; the inverse of :func:`encode_indexes`.

    The decoder re-derives the slot-to-symbol map from the frequency
    table and checks that the stream lands back on the encoder's start
    state with no bytes left over — truncated, padded, or corrupted
    streams raise :class:`EntropyError` rather than returning wrong
    symbols undetected.
    """
    if count < 0:
        raise EntropyError(f"cannot decode {count} symbols")
    table = _validate_freqs(freqs)
    cum = _cumulative(table)
    if len(blob) < _STATE_BYTES:
        raise EntropyError(f"coded stream of {len(blob)} bytes is too short")
    x = int.from_bytes(blob[:_STATE_BYTES], "little")
    if not _RANS_L <= x < (_RANS_L << 8):
        raise EntropyError(f"coder state {x} outside the normalised interval")
    lookup = np.repeat(
        np.arange(len(table), dtype=np.int64), np.asarray(table, dtype=np.int64)
    ).tolist()
    mask = PROB_SCALE - 1
    pos = _STATE_BYTES
    end = len(blob)
    out: List[int] = []
    for _ in range(count):
        slot = x & mask
        s = lookup[slot]
        x = table[s] * (x >> PROB_BITS) + slot - cum[s]
        while x < _RANS_L:
            if pos >= end:
                raise EntropyError("truncated coded stream")
            x = (x << 8) | blob[pos]
            pos += 1
        out.append(s)
    if x != _RANS_L:
        raise EntropyError("corrupt coded stream: final state mismatch")
    if pos != end:
        raise EntropyError(
            f"{end - pos} trailing bytes after the coded stream"
        )
    return np.asarray(out, dtype=np.int64)


def coded_size_bound(freqs: np.ndarray, counts: np.ndarray) -> Tuple[float, int]:
    """(entropy bits/symbol, table bytes) — sizing hint for callers."""
    table = np.asarray(freqs, dtype=np.float64)
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return 0.0, int(table.size * 2)
    probs = table / PROB_SCALE
    used = counts > 0
    bits = float(-(counts[used] / total * np.log2(probs[used])).sum())
    return bits, int(table.size * 2)
