"""Binary wire format for SketchML messages.

The compressor's byte *accounting* is exact, but a production system
must actually put the message on a wire.  This module serialises a
:class:`~repro.compression.base.CompressedGradient` produced by
:class:`~repro.core.compressor.SketchMLCompressor` into a
self-describing byte string and back, bit-for-bit:

``serialize_message`` → ``bytes`` → ``deserialize_message`` →
decompresses to exactly the same keys/values as the in-memory message.

Two payload versions share one layout (all integers little-endian)::

    header:   magic "SKML" | version u8 | flags u8 | dimension u64 | nnz u64
              | num_parts u8
    per part: sign i8 | nnz u64 | kind u8
      kind 0 (raw values):      key_kind u8, keys, values f64[]
      kind 1 (indexes):         key_kind u8, keys, bucket block, index
                                marker u8, indexes
      kind 2 (grouped sketch):  bucket block, num_groups u8, per group:
                                key blob (delta-binary, length-prefixed) +
                                sketch block
    bucket block:  num_buckets u16 | sign i8 | splits f64[q+1] | means f64[q]
    sketch block:  rows u8 | bins u32 | index_range u32 | seed u64 |
                   hash_family u8 | table bytes

Version 1 is frozen (the committed golden fixtures pin it byte for
byte).  Version 2 keeps the identical layout and adds one optional
encoding: index marker 3 is an rANS entropy-coded bucket-index stream
(:mod:`repro.core.entropy`) modelled by the stream's own quantised
histogram — the same CDF shape the quantile sketch shipped — chosen
per part only when it beats the plain/bit-packed encoding, so v2 is
never larger than v1.  See ``docs/wire.md`` for the full spec.

Both directions stream: :func:`iter_serialize_message` yields the wire
bytes in bounded chunks and :func:`deserialize_message_chunks` parses
straight from a chunk iterator, so a multi-GB gradient never has to
materialise as one contiguous buffer on either side.  Every declared
length is clamped against a configurable byte budget before any
allocation happens — a lying header raises :class:`SerializationError`
instead of an allocation bomb.

The decoder rebuilds the MinMaxSketch hash functions from the recorded
``(rows, bins, seed, family)``, so encoder and decoder agree on every
bin placement without shipping the functions themselves.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, List, Optional, Tuple

import numpy as np

from .. import telemetry
from ..compression.base import CompressedGradient
from . import entropy as _entropy
from .bitpack import pack_uint_array, unpack_uint_array
from .compressor import SketchMLPayload, SignPart
from .minmax_sketch import GroupedMinMaxSketch, MinMaxSketch
from .quantizer import SignedBuckets

__all__ = [
    "serialize_message",
    "iter_serialize_message",
    "deserialize_message",
    "deserialize_message_chunks",
    "SerializationError",
    "PAYLOAD_VERSION_V1",
    "PAYLOAD_VERSION_V2",
    "SUPPORTED_PAYLOAD_VERSIONS",
    "MAX_MESSAGE_BYTES",
    "DEFAULT_CHUNK_BYTES",
]

_MAGIC = b"SKML"

PAYLOAD_VERSION_V1 = 1
PAYLOAD_VERSION_V2 = 2
SUPPORTED_PAYLOAD_VERSIONS = (PAYLOAD_VERSION_V1, PAYLOAD_VERSION_V2)
_VERSION = PAYLOAD_VERSION_V1  # encode default; v1 bytes are frozen

#: Default ceiling on a decoded message (and on any single declared
#: length inside one) — a corrupted u64 length field must fail fast,
#: not drive a multi-gigabyte allocation.  Callers with stricter
#: expectations (fuzzers, small control planes) pass a tighter budget.
MAX_MESSAGE_BYTES = 1 << 31

#: Default streaming chunk size for :func:`iter_serialize_message`.
DEFAULT_CHUNK_BYTES = 64 * 1024

_FLAG_DECAY = 1
_FLAG_ENTROPY = 2

_KIND_RAW = 0
_KIND_INDEXES = 1
_KIND_SKETCH = 2

_KEY_KIND_RAW = 0
_KEY_KIND_DELTA = 1

#: Index markers inside a kind-1 part.  1 and 2 double as the array
#: itemsize, a v1 layout quirk kept for compatibility.
_MARKER_PACKED = 0
_MARKER_ENTROPY = 3
_ENTROPY_ORIGIN_PLAIN = 0
_ENTROPY_ORIGIN_PACKED = 1

_HASH_FAMILIES = ("multiply_shift", "tabulation")


class SerializationError(ValueError):
    """Raised when a byte string cannot be decoded as a SketchML message."""


class _Writer:
    def __init__(self) -> None:
        self._chunks: List[bytes] = []

    def raw(self, data: bytes) -> None:
        self._chunks.append(data)

    def pack(self, fmt: str, *values) -> None:
        self._chunks.append(struct.pack("<" + fmt, *values))

    def blob(self, data: bytes) -> None:
        self.pack("Q", len(data))
        self.raw(data)

    def array(self, arr: np.ndarray) -> None:
        self.blob(arr.tobytes())

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)

    def pieces(self) -> List[bytes]:
        return self._chunks


class _Reader:
    """Bounded cursor over wire bytes, contiguous or chunked.

    With ``source=None`` this is a plain cursor over ``data``.  With a
    chunk iterator it pulls just enough bytes to satisfy each read and
    drops consumed prefixes, so peak memory is one blob, not the whole
    message.  Every read is charged against ``budget``; a declared
    length that cannot fit raises before anything is allocated.
    """

    def __init__(
        self,
        data: bytes = b"",
        *,
        source: Optional[Iterator[bytes]] = None,
        budget: int = MAX_MESSAGE_BYTES,
    ) -> None:
        if budget <= 0:
            raise ValueError("budget must be positive")
        self._data = data
        self._pos = 0
        self._source = iter(source) if source is not None else None
        self._budget = int(budget)
        self._consumed = 0

    def _ensure(self, n: int) -> None:
        if len(self._data) - self._pos >= n:
            return
        if self._source is None:
            raise SerializationError("truncated message")
        parts = [self._data[self._pos:]] if self._pos < len(self._data) else []
        have = sum(len(p) for p in parts)
        while have < n:
            chunk = next(self._source, None)
            if chunk is None:
                self._source = None
                raise SerializationError("truncated message")
            if chunk:
                parts.append(bytes(chunk))
                have += len(chunk)
        self._data = b"".join(parts)
        self._pos = 0

    def raw(self, n: int) -> bytes:
        if n < 0:
            raise SerializationError(f"negative length {n}")
        if self._consumed + n > self._budget:
            raise SerializationError(
                f"declared length {n} exceeds the {self._budget}-byte "
                f"message budget"
            )
        self._ensure(n)
        out = self._data[self._pos:self._pos + n]
        self._pos += n
        self._consumed += n
        return out

    def unpack(self, fmt: str):
        size = struct.calcsize("<" + fmt)
        values = struct.unpack("<" + fmt, self.raw(size))
        return values if len(values) > 1 else values[0]

    def blob(self) -> bytes:
        return self.raw(self.unpack("Q"))

    def array(self, dtype) -> np.ndarray:
        data = self.blob()
        try:
            return np.frombuffer(data, dtype=dtype)
        except ValueError as exc:
            raise SerializationError(f"malformed array blob: {exc}") from None

    def remaining_bound(self) -> int:
        """Upper bound on the bytes this message can still contain."""
        if self._source is None:
            return len(self._data) - self._pos
        return self._budget - self._consumed

    @property
    def exhausted(self) -> bool:
        if self._pos < len(self._data):
            return False
        if self._source is not None:
            for chunk in self._source:
                if chunk:
                    self._data = bytes(chunk)
                    self._pos = 0
                    return False
            self._source = None
        return True


# ----------------------------------------------------------------------
# buckets
# ----------------------------------------------------------------------
def _write_buckets(w: _Writer, buckets: SignedBuckets) -> None:
    w.pack("H", buckets.num_buckets)
    w.pack("b", 1 if buckets.sign > 0 else -1)
    w.array(np.asarray(buckets.splits, dtype="<f8"))
    w.array(np.asarray(buckets.means, dtype="<f8"))


def _read_buckets(r: _Reader) -> SignedBuckets:
    num_buckets = r.unpack("H")
    sign = float(r.unpack("b"))
    splits = r.array("<f8")
    means = r.array("<f8")
    if means.size != num_buckets or splits.size != num_buckets + 1:
        raise SerializationError("bucket table sizes are inconsistent")
    return SignedBuckets(splits=splits.copy(), means=means.copy(), sign=sign)


# ----------------------------------------------------------------------
# sketches
# ----------------------------------------------------------------------
def _write_minmax(w: _Writer, sketch: MinMaxSketch) -> None:
    # Row hash functions derive deterministically from the master seed,
    # so shipping (rows, bins, seed, family) reconstructs them exactly.
    w.pack("BIIq", sketch.num_rows, sketch.num_bins, sketch.index_range,
           sketch._master_seed)
    w.pack("B", _HASH_FAMILIES.index(sketch._hash_family_name))
    itemsize = sketch._table.dtype.itemsize
    w.pack("B", itemsize)
    w.array(np.asarray(sketch._table, dtype=f"<u{itemsize}"))


def _read_minmax(r: _Reader) -> MinMaxSketch:
    rows, bins, index_range, master_seed = r.unpack("BIIq")
    family_id = r.unpack("B")
    if family_id >= len(_HASH_FAMILIES):
        raise SerializationError(f"unknown hash family id {family_id}")
    family = _HASH_FAMILIES[family_id]
    itemsize = r.unpack("B")
    dtype = {1: "u1", 2: "<u2", 4: "<u4"}.get(itemsize)
    if dtype is None:
        raise SerializationError(f"unknown sketch cell width {itemsize}")
    # Validate the declared table dimensions against the bytes that can
    # still follow *before* constructing the sketch — the constructor
    # allocates rows×bins cells, so a lying header must fail here, not
    # drive the allocation.
    if rows < 1 or bins < 1:
        raise SerializationError(f"invalid sketch shape {rows}x{bins}")
    if rows * bins * itemsize > r.remaining_bound():
        raise SerializationError(
            f"declared sketch table ({rows}x{bins}) larger than the "
            f"remaining message"
        )
    table = r.array(dtype)
    if table.size != rows * bins:
        raise SerializationError("sketch table size mismatch")
    try:
        sketch = MinMaxSketch(
            num_rows=rows, num_bins=bins, index_range=index_range,
            seed=master_seed, hash_family=family,
        )
    except ValueError as exc:
        raise SerializationError(f"invalid sketch header: {exc}") from None
    sketch._table = table.reshape(rows, bins).copy()
    return sketch


def _write_grouped(w: _Writer, grouped: GroupedMinMaxSketch) -> None:
    w.pack("BI", grouped.num_groups, grouped.index_range)
    for sketch in grouped.sketches:
        _write_minmax(w, sketch)


def _read_grouped(r: _Reader) -> GroupedMinMaxSketch:
    num_groups, index_range = r.unpack("BI")
    if num_groups < 1 or index_range < 1:
        raise SerializationError(
            f"invalid grouped sketch header ({num_groups} groups, "
            f"range {index_range})"
        )
    grouped = GroupedMinMaxSketch.__new__(GroupedMinMaxSketch)
    grouped.num_groups = num_groups
    grouped.index_range = index_range
    grouped.group_width = -(-index_range // num_groups)
    grouped._sketches = [_read_minmax(r) for _ in range(num_groups)]
    return grouped


# ----------------------------------------------------------------------
# entropy-coded indexes (payload v2 only)
# ----------------------------------------------------------------------
def _entropy_block(
    symbols: np.ndarray, itemsize: int, fallback_len: int
) -> Optional[Tuple[np.ndarray, bytes]]:
    """Try to entropy-code an index stream; ``None`` keeps the fallback.

    ``fallback_len`` is the byte length of the encoding the part would
    otherwise use (plain array or bit-packed).  The choice is
    deterministic, so re-encoding a decoded message reproduces the
    exact wire bytes.
    """
    if symbols.size == 0 or itemsize not in (1, 2):
        return None
    try:
        counts = np.bincount(np.asarray(symbols, dtype=np.int64))
        freqs = _entropy.quantize_freqs(counts)
        coded = _entropy.encode_indexes(symbols, freqs)
    except (_entropy.EntropyError, ValueError):
        return None
    if freqs.size > 0xFFFF:
        return None
    # marker + origin + width + num_symbols + table + prefixed stream
    block_len = 1 + 1 + 1 + 2 + freqs.size * 2 + 8 + len(coded)
    if telemetry.enabled():
        telemetry.counter("codec.entropy.plain_bytes", fallback_len)
        telemetry.counter("codec.entropy.coded_bytes", min(block_len, fallback_len))
    if block_len >= fallback_len:
        return None
    return freqs, coded


def _write_index_stream(w: _Writer, part: SignPart, entropy: bool) -> None:
    if part.packed_indexes is not None:
        # Bit-packed fallback: marker 0 + width + blob.
        packed_len = 1 + 1 + 8 + len(part.packed_indexes)
        block = None
        if entropy:
            symbols = unpack_uint_array(
                part.packed_indexes, part.nnz, part.index_bits
            )
            itemsize = 1 if part.index_bits <= 8 else 2
            block = _entropy_block(symbols, itemsize, packed_len)
        if block is None:
            w.pack("B", _MARKER_PACKED)
            w.pack("B", part.index_bits)
            w.blob(part.packed_indexes)
        else:
            freqs, coded = block
            # Origin 1 (bit-packed) + the pack width, so decoding
            # restores the exact fallback representation and
            # re-encoding the message reproduces the wire bytes.
            w.pack("B", _MARKER_ENTROPY)
            w.pack("B", _ENTROPY_ORIGIN_PACKED)
            w.pack("B", part.index_bits)
            w.pack("H", freqs.size)
            w.raw(freqs.astype("<u2").tobytes())
            w.blob(coded)
    else:
        idx = np.asarray(part.indexes)
        itemsize = idx.dtype.itemsize
        plain_len = 1 + 8 + idx.size * itemsize
        block = _entropy_block(idx, itemsize, plain_len) if entropy else None
        if block is None:
            w.pack("B", itemsize)
            w.array(np.asarray(idx, dtype=f"<u{itemsize}"))
        else:
            freqs, coded = block
            w.pack("B", _MARKER_ENTROPY)
            w.pack("B", _ENTROPY_ORIGIN_PLAIN)
            w.pack("B", itemsize)
            w.pack("H", freqs.size)
            w.raw(freqs.astype("<u2").tobytes())
            w.blob(coded)


def _read_entropy_indexes(r: _Reader, part: SignPart, message_nnz: int) -> None:
    origin = r.unpack("B")
    if origin not in (_ENTROPY_ORIGIN_PLAIN, _ENTROPY_ORIGIN_PACKED):
        raise SerializationError(f"unknown entropy origin {origin}")
    width = r.unpack("B")
    if origin == _ENTROPY_ORIGIN_PACKED:
        if not 1 <= width <= 16:
            raise SerializationError(
                f"invalid packed index width {width}"
            )
        itemsize = 1 if width <= 8 else 2
    else:
        itemsize = width
    dtype = {1: "u1", 2: "<u2"}.get(itemsize)
    if dtype is None:
        raise SerializationError(f"unknown index width {itemsize}")
    num_symbols = r.unpack("H")
    if num_symbols < 1:
        raise SerializationError("empty entropy model")
    table = r.raw(num_symbols * 2)
    try:
        freqs = np.frombuffer(table, dtype="<u2")
    except ValueError as exc:  # pragma: no cover - size is exact by construction
        raise SerializationError(f"malformed entropy table: {exc}") from None
    # The symbol count drives the decode loop; clamp it against the
    # message-level nnz (itself budget-checked) so a lying part header
    # cannot turn decode into an unbounded loop.
    if part.nnz > message_nnz:
        raise SerializationError(
            f"part nnz {part.nnz} exceeds message nnz {message_nnz}"
        )
    # A zero-entropy model (one symbol at full probability) consumes no
    # coded bytes per symbol, so the coded length alone cannot bound
    # the loop.  The part's key stream can: an index part carries one
    # key per index, and the keys were already read as physically
    # present bytes — raw keys at 4 bytes each, delta-coded keys at
    # ≥ 1 payload byte plus a quarter flag byte each after the u4
    # count header.  Reject any nnz those bytes cannot justify before
    # spinning the decode loop.
    if part.raw_keys is not None:
        if part.raw_keys.size != part.nnz:
            raise SerializationError(
                f"part nnz {part.nnz} disagrees with "
                f"{part.raw_keys.size} raw keys"
            )
    elif part.key_blob is not None:
        blob = part.key_blob
        declared = int.from_bytes(blob[:4], "little") if len(blob) >= 4 else -1
        min_len = 4 + (part.nnz + 3) // 4 + part.nnz
        if declared != part.nnz or len(blob) < min_len:
            raise SerializationError(
                f"part nnz {part.nnz} is not justified by its "
                f"{len(blob)}-byte key blob"
            )
    else:
        raise SerializationError(
            "entropy-coded indexes without a key stream"
        )
    coded = r.blob()
    try:
        symbols = _entropy.decode_indexes(coded, freqs, part.nnz)
    except _entropy.EntropyError as exc:
        raise SerializationError(f"corrupt entropy-coded indexes: {exc}") from None
    if num_symbols > (1 << (8 * itemsize)):
        raise SerializationError(
            f"{num_symbols}-symbol model does not fit index width {itemsize}"
        )
    if origin == _ENTROPY_ORIGIN_PACKED:
        if num_symbols > (1 << width):
            raise SerializationError(
                f"{num_symbols}-symbol model does not fit pack width {width}"
            )
        part.index_bits = width
        part.packed_indexes = pack_uint_array(
            symbols.astype(np.uint64), width
        )
    else:
        part.indexes = symbols.astype(dtype)


# ----------------------------------------------------------------------
# parts
# ----------------------------------------------------------------------
def _write_part(w: _Writer, part: SignPart, entropy: bool = False) -> None:
    w.pack("b", part.sign)
    w.pack("Q", part.nnz)
    if part.raw_values is not None:
        w.pack("B", _KIND_RAW)
        _write_keys(w, part)
        w.array(np.asarray(part.raw_values, dtype="<f8"))
    elif part.sketch is not None:
        w.pack("B", _KIND_SKETCH)
        _write_buckets(w, part.buckets)
        blobs = part.group_key_blobs or []
        w.pack("B", len(blobs))
        for blob in blobs:
            w.blob(blob)
        _write_grouped(w, part.sketch)
    else:
        w.pack("B", _KIND_INDEXES)
        _write_keys(w, part)
        _write_buckets(w, part.buckets)
        _write_index_stream(w, part, entropy)


def _write_keys(w: _Writer, part: SignPart) -> None:
    if part.key_blob is not None:
        w.pack("B", _KEY_KIND_DELTA)
        w.blob(part.key_blob)
    else:
        w.pack("B", _KEY_KIND_RAW)
        w.array(np.asarray(part.raw_keys, dtype="<u4"))


def _read_keys(r: _Reader, part: SignPart) -> None:
    key_kind = r.unpack("B")
    if key_kind == _KEY_KIND_DELTA:
        part.key_blob = r.blob()
    elif key_kind == _KEY_KIND_RAW:
        part.raw_keys = r.array("<u4").astype(np.int64)
    else:
        raise SerializationError(f"unknown key kind {key_kind}")


def _read_part(r: _Reader, version: int, message_nnz: int) -> SignPart:
    sign = r.unpack("b")
    nnz = r.unpack("Q")
    kind = r.unpack("B")
    if nnz > r._budget:
        raise SerializationError(
            f"part nnz {nnz} exceeds the message budget"
        )
    part = SignPart(sign=sign, nnz=nnz)
    if kind == _KIND_RAW:
        _read_keys(r, part)
        part.raw_values = r.array("<f8").copy()
    elif kind == _KIND_SKETCH:
        part.buckets = _read_buckets(r)
        num_blobs = r.unpack("B")
        part.group_key_blobs = [r.blob() for _ in range(num_blobs)]
        part.sketch = _read_grouped(r)
    elif kind == _KIND_INDEXES:
        _read_keys(r, part)
        part.buckets = _read_buckets(r)
        marker = r.unpack("B")
        if marker == _MARKER_PACKED:
            part.index_bits = r.unpack("B")
            if not 1 <= part.index_bits <= 16:
                raise SerializationError(
                    f"invalid packed index width {part.index_bits}"
                )
            part.packed_indexes = r.blob()
        elif marker == _MARKER_ENTROPY:
            if version < PAYLOAD_VERSION_V2:
                raise SerializationError(
                    "entropy-coded indexes are not valid in a v1 message"
                )
            _read_entropy_indexes(r, part, message_nnz)
        else:
            dtype = {1: "u1", 2: "<u2"}.get(marker)
            if dtype is None:
                raise SerializationError(f"unknown index width {marker}")
            part.indexes = r.array(dtype).copy()
    else:
        raise SerializationError(f"unknown part kind {kind}")
    return part


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def _build_message(
    message: CompressedGradient, version: int, entropy: bool
) -> _Writer:
    payload = message.payload
    if not isinstance(payload, SketchMLPayload):
        raise TypeError("only SketchML messages can be serialised here")
    if version not in SUPPORTED_PAYLOAD_VERSIONS:
        raise ValueError(f"unsupported payload version {version}")
    if entropy and version < PAYLOAD_VERSION_V2:
        raise ValueError("entropy coding requires payload version 2")
    w = _Writer()
    w.raw(_MAGIC)
    flags = _FLAG_DECAY if payload.decay_scale != 1.0 else 0
    if entropy:
        flags |= _FLAG_ENTROPY
    w.pack("BB", version, flags)
    w.pack("QQ", message.dimension, message.nnz)
    if flags & _FLAG_DECAY:
        w.pack("d", payload.decay_scale)
    w.pack("B", len(payload.parts))
    for part in payload.parts:
        _write_part(w, part, entropy=entropy)
    return w


def serialize_message(
    message: CompressedGradient,
    *,
    version: int = PAYLOAD_VERSION_V1,
    entropy: bool = False,
) -> bytes:
    """Serialise a SketchML message into a self-describing byte string.

    ``version`` selects the payload version negotiated for the
    connection; the default (v1) byte stream is frozen by the golden
    fixtures.  ``entropy`` (v2 only) lets each part swap its
    bucket-index stream for an rANS-coded one when that is smaller.

    Raises:
        TypeError: if the message was not produced by
            :class:`~repro.core.compressor.SketchMLCompressor`.
        ValueError: for an unsupported version/flag combination.
    """
    return _build_message(message, version, entropy).getvalue()


def iter_serialize_message(
    message: CompressedGradient,
    *,
    version: int = PAYLOAD_VERSION_V1,
    entropy: bool = False,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> Iterator[bytes]:
    """Yield the exact :func:`serialize_message` bytes in bounded chunks.

    Every chunk except the last is exactly ``chunk_bytes`` long, and
    the concatenation equals the contiguous encoding bit for bit — but
    no buffer larger than ``chunk_bytes`` (plus one field) is ever
    joined, so a multi-GB gradient streams without materialising
    contiguously.
    """
    if chunk_bytes <= 0:
        raise ValueError("chunk_bytes must be positive")
    w = _build_message(message, version, entropy)
    buf = bytearray()
    for piece in w.pieces():
        start = 0
        while start < len(piece):
            take = min(chunk_bytes - len(buf), len(piece) - start)
            buf += piece[start:start + take]
            start += take
            if len(buf) == chunk_bytes:
                yield bytes(buf)
                del buf[:]
    if buf:
        yield bytes(buf)


def _read_message(
    r: _Reader,
) -> Tuple[SketchMLPayload, int, int]:
    if r.raw(4) != _MAGIC:
        raise SerializationError("bad magic; not a SketchML message")
    version, flags = r.unpack("BB")
    if version not in SUPPORTED_PAYLOAD_VERSIONS:
        raise SerializationError(f"unsupported version {version}")
    known = _FLAG_DECAY
    if version >= PAYLOAD_VERSION_V2:
        known |= _FLAG_ENTROPY
    if flags & ~known:
        raise SerializationError(
            f"unknown flags 0x{flags:02x} for version {version}"
        )
    dimension, nnz = r.unpack("QQ")
    if nnz > r._budget:
        raise SerializationError(f"message nnz {nnz} exceeds the byte budget")
    decay_scale = 1.0
    if flags & _FLAG_DECAY:
        decay_scale = float(r.unpack("d"))
        if not np.isfinite(decay_scale) or decay_scale <= 0.0:
            raise SerializationError(f"invalid decay scale {decay_scale}")
    num_parts = r.unpack("B")
    payload = SketchMLPayload(
        parts=[_read_part(r, version, int(nnz)) for _ in range(num_parts)],
        decay_scale=decay_scale,
    )
    if not r.exhausted:
        raise SerializationError("trailing bytes after message")
    return payload, int(dimension), int(nnz)


def deserialize_message(
    data: bytes, *, max_message_bytes: int = MAX_MESSAGE_BYTES
) -> CompressedGradient:
    """Rebuild a :class:`CompressedGradient` from wire bytes.

    The result decompresses (via
    :meth:`SketchMLCompressor.decompress`) to exactly the same keys and
    values as the original in-memory message; ``num_bytes`` is set to
    the actual wire length.  Declared lengths are clamped against
    ``max_message_bytes`` before any allocation.
    """
    if len(data) > max_message_bytes:
        raise SerializationError(
            f"{len(data)}-byte message exceeds the "
            f"{max_message_bytes}-byte budget"
        )
    r = _Reader(data, budget=max_message_bytes)
    payload, dimension, nnz = _read_message(r)
    return CompressedGradient(
        payload=payload,
        num_bytes=len(data),
        dimension=dimension,
        nnz=nnz,
    )


def deserialize_message_chunks(
    chunks: Iterable[bytes], *, max_message_bytes: int = MAX_MESSAGE_BYTES
) -> CompressedGradient:
    """Rebuild a message from an iterator of byte chunks.

    Equivalent to ``deserialize_message(b"".join(chunks))`` but the
    chunks are consumed incrementally and consumed prefixes are
    dropped, so peak memory is bounded by the largest single field, not
    the whole message.  This is the receive half of
    :func:`iter_serialize_message` (the transports deliver the chunk
    list from ``CHUNK``/``END`` frames).
    """
    total = 0

    def _counted() -> Iterator[bytes]:
        nonlocal total
        for chunk in chunks:
            total += len(chunk)
            yield chunk

    r = _Reader(source=_counted(), budget=max_message_bytes)
    payload, dimension, nnz = _read_message(r)
    return CompressedGradient(
        payload=payload,
        num_bytes=total,
        dimension=dimension,
        nnz=nnz,
    )
