"""Binary wire format for SketchML messages.

The compressor's byte *accounting* is exact, but a production system
must actually put the message on a wire.  This module serialises a
:class:`~repro.compression.base.CompressedGradient` produced by
:class:`~repro.core.compressor.SketchMLCompressor` into a
self-describing byte string and back, bit-for-bit:

``serialize_message`` → ``bytes`` → ``deserialize_message`` →
decompresses to exactly the same keys/values as the in-memory message.

Layout (all integers little-endian)::

    header:   magic "SKML" | version u8 | flags u8 | dimension u64 | nnz u64
              | num_parts u8
    per part: sign i8 | nnz u64 | kind u8
      kind 0 (raw values):      key_kind u8, keys, values f64[]
      kind 1 (indexes):         key_kind u8, keys, bucket block, index dtype
                                u8, indexes
      kind 2 (grouped sketch):  bucket block, num_groups u8, per group:
                                key blob (delta-binary, length-prefixed) +
                                sketch block
    bucket block:  num_buckets u16 | sign f32... splits f64[q+1] | means f64[q]
    sketch block:  rows u8 | bins u32 | index_range u32 | seed u64 |
                   hash_family u8 | table bytes

The decoder rebuilds the MinMaxSketch hash functions from the recorded
``(rows, bins, seed, family)``, so encoder and decoder agree on every
bin placement without shipping the functions themselves.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

import numpy as np

from ..compression.base import CompressedGradient
from .compressor import SketchMLPayload, SignPart
from .minmax_sketch import GroupedMinMaxSketch, MinMaxSketch
from .quantizer import SignedBuckets

__all__ = ["serialize_message", "deserialize_message", "SerializationError"]

_MAGIC = b"SKML"
_VERSION = 1

_KIND_RAW = 0
_KIND_INDEXES = 1
_KIND_SKETCH = 2

_KEY_KIND_RAW = 0
_KEY_KIND_DELTA = 1

_HASH_FAMILIES = ("multiply_shift", "tabulation")


class SerializationError(ValueError):
    """Raised when a byte string cannot be decoded as a SketchML message."""


class _Writer:
    def __init__(self) -> None:
        self._chunks: List[bytes] = []

    def raw(self, data: bytes) -> None:
        self._chunks.append(data)

    def pack(self, fmt: str, *values) -> None:
        self._chunks.append(struct.pack("<" + fmt, *values))

    def blob(self, data: bytes) -> None:
        self.pack("Q", len(data))
        self.raw(data)

    def array(self, arr: np.ndarray) -> None:
        self.blob(arr.tobytes())

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def raw(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise SerializationError("truncated message")
        out = self._data[self._pos:self._pos + n]
        self._pos += n
        return out

    def unpack(self, fmt: str):
        size = struct.calcsize("<" + fmt)
        values = struct.unpack("<" + fmt, self.raw(size))
        return values if len(values) > 1 else values[0]

    def blob(self) -> bytes:
        return self.raw(self.unpack("Q"))

    def array(self, dtype) -> np.ndarray:
        return np.frombuffer(self.blob(), dtype=dtype)

    @property
    def exhausted(self) -> bool:
        return self._pos == len(self._data)


# ----------------------------------------------------------------------
# buckets
# ----------------------------------------------------------------------
def _write_buckets(w: _Writer, buckets: SignedBuckets) -> None:
    w.pack("H", buckets.num_buckets)
    w.pack("b", 1 if buckets.sign > 0 else -1)
    w.array(np.asarray(buckets.splits, dtype="<f8"))
    w.array(np.asarray(buckets.means, dtype="<f8"))


def _read_buckets(r: _Reader) -> SignedBuckets:
    num_buckets = r.unpack("H")
    sign = float(r.unpack("b"))
    splits = r.array("<f8")
    means = r.array("<f8")
    if means.size != num_buckets or splits.size != num_buckets + 1:
        raise SerializationError("bucket table sizes are inconsistent")
    return SignedBuckets(splits=splits.copy(), means=means.copy(), sign=sign)


# ----------------------------------------------------------------------
# sketches
# ----------------------------------------------------------------------
def _write_minmax(w: _Writer, sketch: MinMaxSketch) -> None:
    # Row hash functions derive deterministically from the master seed,
    # so shipping (rows, bins, seed, family) reconstructs them exactly.
    w.pack("BIIq", sketch.num_rows, sketch.num_bins, sketch.index_range,
           sketch._master_seed)
    w.pack("B", _HASH_FAMILIES.index(sketch._hash_family_name))
    itemsize = sketch._table.dtype.itemsize
    w.pack("B", itemsize)
    w.array(np.asarray(sketch._table, dtype=f"<u{itemsize}"))


def _read_minmax(r: _Reader) -> MinMaxSketch:
    rows, bins, index_range, master_seed = r.unpack("BIIq")
    family_id = r.unpack("B")
    if family_id >= len(_HASH_FAMILIES):
        raise SerializationError(f"unknown hash family id {family_id}")
    family = _HASH_FAMILIES[family_id]
    itemsize = r.unpack("B")
    dtype = {1: "u1", 2: "<u2", 4: "<u4"}.get(itemsize)
    if dtype is None:
        raise SerializationError(f"unknown sketch cell width {itemsize}")
    sketch = MinMaxSketch(
        num_rows=rows, num_bins=bins, index_range=index_range,
        seed=master_seed, hash_family=family,
    )
    table = r.array(dtype)
    if table.size != rows * bins:
        raise SerializationError("sketch table size mismatch")
    sketch._table = table.reshape(rows, bins).copy()
    return sketch


def _write_grouped(w: _Writer, grouped: GroupedMinMaxSketch) -> None:
    w.pack("BI", grouped.num_groups, grouped.index_range)
    for sketch in grouped.sketches:
        _write_minmax(w, sketch)


def _read_grouped(r: _Reader) -> GroupedMinMaxSketch:
    num_groups, index_range = r.unpack("BI")
    if num_groups < 1 or index_range < 1:
        raise SerializationError(
            f"invalid grouped sketch header ({num_groups} groups, "
            f"range {index_range})"
        )
    grouped = GroupedMinMaxSketch.__new__(GroupedMinMaxSketch)
    grouped.num_groups = num_groups
    grouped.index_range = index_range
    grouped.group_width = -(-index_range // num_groups)
    grouped._sketches = [_read_minmax(r) for _ in range(num_groups)]
    return grouped


# ----------------------------------------------------------------------
# parts
# ----------------------------------------------------------------------
def _write_part(w: _Writer, part: SignPart) -> None:
    w.pack("b", part.sign)
    w.pack("Q", part.nnz)
    if part.raw_values is not None:
        w.pack("B", _KIND_RAW)
        _write_keys(w, part)
        w.array(np.asarray(part.raw_values, dtype="<f8"))
    elif part.sketch is not None:
        w.pack("B", _KIND_SKETCH)
        _write_buckets(w, part.buckets)
        blobs = part.group_key_blobs or []
        w.pack("B", len(blobs))
        for blob in blobs:
            w.blob(blob)
        _write_grouped(w, part.sketch)
    else:
        w.pack("B", _KIND_INDEXES)
        _write_keys(w, part)
        _write_buckets(w, part.buckets)
        if part.packed_indexes is not None:
            w.pack("B", 0)  # 0 = bit-packed marker
            w.pack("B", part.index_bits)
            w.blob(part.packed_indexes)
        else:
            itemsize = part.indexes.dtype.itemsize
            w.pack("B", itemsize)
            w.array(np.asarray(part.indexes, dtype=f"<u{itemsize}"))


def _write_keys(w: _Writer, part: SignPart) -> None:
    if part.key_blob is not None:
        w.pack("B", _KEY_KIND_DELTA)
        w.blob(part.key_blob)
    else:
        w.pack("B", _KEY_KIND_RAW)
        w.array(np.asarray(part.raw_keys, dtype="<u4"))


def _read_keys(r: _Reader, part: SignPart) -> None:
    key_kind = r.unpack("B")
    if key_kind == _KEY_KIND_DELTA:
        part.key_blob = r.blob()
    elif key_kind == _KEY_KIND_RAW:
        part.raw_keys = r.array("<u4").astype(np.int64)
    else:
        raise SerializationError(f"unknown key kind {key_kind}")


def _read_part(r: _Reader) -> SignPart:
    sign = r.unpack("b")
    nnz = r.unpack("Q")
    kind = r.unpack("B")
    part = SignPart(sign=sign, nnz=nnz)
    if kind == _KIND_RAW:
        _read_keys(r, part)
        part.raw_values = r.array("<f8").copy()
    elif kind == _KIND_SKETCH:
        part.buckets = _read_buckets(r)
        num_blobs = r.unpack("B")
        part.group_key_blobs = [r.blob() for _ in range(num_blobs)]
        part.sketch = _read_grouped(r)
    elif kind == _KIND_INDEXES:
        _read_keys(r, part)
        part.buckets = _read_buckets(r)
        itemsize = r.unpack("B")
        if itemsize == 0:  # bit-packed marker
            part.index_bits = r.unpack("B")
            if not 1 <= part.index_bits <= 16:
                raise SerializationError(
                    f"invalid packed index width {part.index_bits}"
                )
            part.packed_indexes = r.blob()
        else:
            dtype = {1: "u1", 2: "<u2"}.get(itemsize)
            if dtype is None:
                raise SerializationError(f"unknown index width {itemsize}")
            part.indexes = r.array(dtype).copy()
    else:
        raise SerializationError(f"unknown part kind {kind}")
    return part


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def serialize_message(message: CompressedGradient) -> bytes:
    """Serialise a SketchML message into a self-describing byte string.

    Raises:
        TypeError: if the message was not produced by
            :class:`~repro.core.compressor.SketchMLCompressor`.
    """
    payload = message.payload
    if not isinstance(payload, SketchMLPayload):
        raise TypeError("only SketchML messages can be serialised here")
    w = _Writer()
    w.raw(_MAGIC)
    flags = 1 if payload.decay_scale != 1.0 else 0
    w.pack("BB", _VERSION, flags)
    w.pack("QQ", message.dimension, message.nnz)
    if flags & 1:
        w.pack("d", payload.decay_scale)
    w.pack("B", len(payload.parts))
    for part in payload.parts:
        _write_part(w, part)
    return w.getvalue()


def deserialize_message(data: bytes) -> CompressedGradient:
    """Rebuild a :class:`CompressedGradient` from wire bytes.

    The result decompresses (via
    :meth:`SketchMLCompressor.decompress`) to exactly the same keys and
    values as the original in-memory message; ``num_bytes`` is set to
    the actual wire length.
    """
    r = _Reader(data)
    if r.raw(4) != _MAGIC:
        raise SerializationError("bad magic; not a SketchML message")
    version, flags = r.unpack("BB")
    if version != _VERSION:
        raise SerializationError(f"unsupported version {version}")
    dimension, nnz = r.unpack("QQ")
    decay_scale = 1.0
    if flags & 1:
        decay_scale = float(r.unpack("d"))
        if not np.isfinite(decay_scale) or decay_scale <= 0.0:
            raise SerializationError(f"invalid decay scale {decay_scale}")
    num_parts = r.unpack("B")
    payload = SketchMLPayload(
        parts=[_read_part(r) for _ in range(num_parts)],
        decay_scale=decay_scale,
    )
    if not r.exhausted:
        raise SerializationError("trailing bytes after message")
    return CompressedGradient(
        payload=payload,
        num_bytes=len(data),
        dimension=int(dimension),
        nnz=int(nnz),
    )
