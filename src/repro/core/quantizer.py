"""Quantile-bucket quantification (paper §3.2, with §3.3 Solution 1).

A quantile sketch summarises gradient values into ``q`` equi-depth
buckets (each bucket holds the same *number* of values, unlike the
equi-width buckets of uniform quantizers such as ZipML).  Each value is
then encoded by its bucket index — one byte for ``q <= 256`` — and
decoded back to the bucket's mean value.

Positive and negative values get **separate** sketches and separate
bucket ranges (§3.3 Solution 1), so no bucket ever straddles zero and a
decoded value can never change sign.  Within each sign, bucket indexes
are ordered by *magnitude* (index 0 = bucket closest to zero); this is
the ordering the MinMaxSketch's min-insert / max-query protocol relies
on to guarantee one-sided, decaying error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .. import kernels
from ..sketch.quantile import GKSummary, KLLSketch, TDigest, exact_quantiles

__all__ = ["SignedBuckets", "QuantileBucketQuantizer"]


_SKETCH_BUILDERS = {
    "kll": lambda size, seed: KLLSketch(k=max(int(size), 8), seed=seed),
    "gk": lambda size, seed: GKSummary(epsilon=1.0 / max(int(size), 8)),
    "tdigest": lambda size, seed: TDigest(delta=max(float(size), 10.0)),
}


@dataclass
class SignedBuckets:
    """Equi-depth buckets for one sign of the gradient values.

    Attributes:
        splits: ``num_buckets + 1`` ascending split values covering the
            magnitude range (always non-negative; these are magnitudes).
        means: per-bucket mean magnitude, ``(splits[i] + splits[i+1])/2``.
        sign: ``+1.0`` or ``-1.0``; decoded values are ``sign * means``.
    """

    splits: np.ndarray
    means: np.ndarray
    sign: float

    @property
    def num_buckets(self) -> int:
        return int(self.means.size)

    def encode(self, magnitudes: np.ndarray) -> np.ndarray:
        """Map magnitudes to bucket indexes (0 = closest to zero)."""
        if self.num_buckets == 0:
            raise ValueError("cannot encode with zero buckets")
        # searchsorted against interior splits; values at or below the
        # lowest split land in bucket 0, above the top split in the last.
        interior = self.splits[1:-1]
        magnitudes = np.asarray(magnitudes, dtype=np.float64)
        idx = np.searchsorted(interior, magnitudes, side="right")
        return idx.astype(np.int64)

    def decode(self, indexes: np.ndarray) -> np.ndarray:
        """Map bucket indexes back to signed bucket-mean values."""
        indexes = np.clip(np.asarray(indexes, dtype=np.int64), 0, self.num_buckets - 1)
        return self.sign * self.means[indexes]

    @property
    def payload_bytes(self) -> int:
        """Wire size of the bucket metadata (means, as 8-byte floats)."""
        return 8 * self.num_buckets


def _build_buckets(
    ordered: np.ndarray,
    num_buckets: int,
    sign: float,
    sketch: str,
    sketch_size: int,
    seed: int,
) -> SignedBuckets:
    """Fit equi-depth splits for one sign's *ascending* magnitudes."""
    phis = np.linspace(0.0, 1.0, num_buckets + 1)
    if sketch == "exact" or ordered.size <= 4 * num_buckets:
        # For small inputs the sketch machinery is pure overhead and its
        # rank error could exceed a bucket; fall back to exact quantiles.
        splits = exact_quantiles(ordered, phis, assume_sorted=True)
        splits[-1] = float(ordered[-1])
    else:
        sk = _SKETCH_BUILDERS[sketch](sketch_size, seed)
        sk.insert_sorted(ordered)
        splits = np.asarray(sk.query_many(phis), dtype=np.float64)
        splits[0] = float(ordered[0])
        splits[-1] = float(ordered[-1])
    # Monotonicity can be violated by sketch noise on heavy ties; repair.
    splits = np.maximum.accumulate(splits)
    means = 0.5 * (splits[:-1] + splits[1:])
    return SignedBuckets(splits=splits, means=means, sign=sign)


def _expand_sorted_indexes(
    ordered: np.ndarray, perm: np.ndarray, buckets: SignedBuckets
) -> np.ndarray:
    """Bucket indexes for magnitudes given their sort permutation.

    For ascending magnitudes the bucket index ``#{k: interior[k] <= x}``
    is a non-decreasing step function, so it can be materialised with
    one tiny searchsorted (one probe per split, not per value) and a
    run-length expansion, then scattered back through ``perm``.  Exactly
    equal to ``buckets.encode`` on the unsorted magnitudes — ties are
    immaterial because tied values get the same bucket either way.
    """
    interior = buckets.splits[1:-1]
    pos_k = np.searchsorted(ordered, interior, side="left")
    reps = np.diff(np.concatenate(([0], pos_k, [ordered.size])))
    out = np.empty(ordered.size, dtype=np.int64)
    out[perm] = np.repeat(np.arange(interior.size + 1, dtype=np.int64), reps)
    return out


class QuantileBucketQuantizer:
    """End-to-end value quantizer: fit → encode to indexes → decode.

    Args:
        num_buckets: total bucket budget ``q`` across both signs
            (default 256 → one byte per encoded value).
        sketch: ``"kll"`` (default, the DataSketches stand-in), ``"gk"``
            (Greenwald–Khanna), ``"tdigest"``, or ``"exact"`` (full
            sort; for tests).
        sketch_size: the sketch's size parameter (KLL ``k`` or GK
            ``1/epsilon``); paper default 128.
        seed: PRNG seed for randomized sketches.

    Example:
        >>> rng = np.random.default_rng(0)
        >>> values = rng.laplace(scale=0.01, size=5000)
        >>> quant = QuantileBucketQuantizer(num_buckets=256).fit(values)
        >>> signs, idx = quant.encode(values)
        >>> approx = quant.decode(signs, idx)
        >>> bool(np.all(np.sign(approx[values != 0]) == np.sign(values[values != 0])))
        True
    """

    def __init__(
        self,
        num_buckets: int = 256,
        sketch: str = "kll",
        sketch_size: int = 128,
        seed: int = 0,
    ) -> None:
        if num_buckets < 2:
            raise ValueError(f"num_buckets must be >= 2, got {num_buckets}")
        if sketch not in ("kll", "gk", "tdigest", "exact"):
            raise ValueError(f"unknown sketch type {sketch!r}")
        self.num_buckets = int(num_buckets)
        self.sketch = sketch
        self.sketch_size = int(sketch_size)
        self.seed = int(seed)
        self.positive: Optional[SignedBuckets] = None
        self.negative: Optional[SignedBuckets] = None

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(self, values: np.ndarray) -> "QuantileBucketQuantizer":
        """Build pos/neg buckets from a gradient's nonzero values.

        The ``q`` bucket budget is split between the signs in proportion
        to their counts (each nonempty sign gets at least one bucket),
        mirroring the paper's two separate quantile sketches.
        Zero-valued entries are treated as positive.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ValueError("cannot fit a quantizer on an empty gradient")
        if not np.all(np.isfinite(values)):
            raise ValueError("gradient values must be finite")
        # Integer-index gathers: flatnonzero + take is several times
        # faster than boolean-mask fancy indexing for large gradients.
        neg_sel = np.flatnonzero(values < 0)
        pos_sel = np.flatnonzero(values >= 0)
        pos = values.take(pos_sel)
        neg = -values.take(neg_sel)
        q_pos, q_neg = self._split_budget(pos.size, neg.size)
        self.positive = (
            _build_buckets(
                np.sort(pos), q_pos, +1.0, self.sketch, self.sketch_size, self.seed
            )
            if pos.size
            else None
        )
        self.negative = (
            _build_buckets(
                np.sort(neg), q_neg, -1.0, self.sketch, self.sketch_size, self.seed + 1
            )
            if neg.size
            else None
        )
        return self

    def fit_encode(
        self,
        values: np.ndarray,
        pos_sel: Optional[np.ndarray] = None,
        neg_sel: Optional[np.ndarray] = None,
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """Fit and return each sign's bucket indexes as a fit byproduct.

        Fitting already sorts each sign's magnitudes; keeping the sort
        *permutation* lets the bucket index of every fitted value be
        recovered with a run-length expansion instead of a per-value
        binary search, which is the dominant encode cost for large
        gradients.  Returns ``(pos_indexes, neg_indexes)`` aligned with
        ``values[pos_sel]`` / ``-values[neg_sel]`` (``None`` for an
        absent sign), byte-identical to fitting then calling
        :meth:`SignedBuckets.encode`.

        Args:
            values: the gradient values to fit (as :meth:`fit`).
            pos_sel: optional precomputed ``np.flatnonzero(values >= 0)``.
            neg_sel: optional precomputed ``np.flatnonzero(values < 0)``.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ValueError("cannot fit a quantizer on an empty gradient")
        if not np.all(np.isfinite(values)):
            raise ValueError("gradient values must be finite")
        if neg_sel is None:
            neg_sel = np.flatnonzero(values < 0)
        if pos_sel is None:
            pos_sel = np.flatnonzero(values >= 0)
        if not kernels.vectorised_enabled():
            # Reference path: plain fit, then the per-needle searchsorted
            # encode.  The vectorised branch below must match it byte
            # for byte.
            self.fit(values)
            pos_enc = (
                self.positive.encode(values.take(pos_sel)) if pos_sel.size else None
            )
            neg_enc = (
                self.negative.encode(-values.take(neg_sel)) if neg_sel.size else None
            )
            return pos_enc, neg_enc
        pos = values.take(pos_sel)
        neg = -values.take(neg_sel)
        q_pos, q_neg = self._split_budget(pos.size, neg.size)
        pos_enc: Optional[np.ndarray] = None
        neg_enc: Optional[np.ndarray] = None
        self.positive = None
        self.negative = None
        if pos.size:
            perm = np.argsort(pos)
            ordered = pos.take(perm)
            self.positive = _build_buckets(
                ordered, q_pos, +1.0, self.sketch, self.sketch_size, self.seed
            )
            pos_enc = _expand_sorted_indexes(ordered, perm, self.positive)
        if neg.size:
            perm = np.argsort(neg)
            ordered = neg.take(perm)
            self.negative = _build_buckets(
                ordered, q_neg, -1.0, self.sketch, self.sketch_size, self.seed + 1
            )
            neg_enc = _expand_sorted_indexes(ordered, perm, self.negative)
        return pos_enc, neg_enc

    def _split_budget(self, n_pos: int, n_neg: int) -> Tuple[int, int]:
        total = n_pos + n_neg
        if n_pos == 0:
            return 0, self.num_buckets
        if n_neg == 0:
            return self.num_buckets, 0
        q_pos = int(round(self.num_buckets * n_pos / total))
        q_pos = min(max(q_pos, 1), self.num_buckets - 1)
        return q_pos, self.num_buckets - q_pos

    @property
    def is_fitted(self) -> bool:
        return self.positive is not None or self.negative is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("quantizer must be fit() before encode/decode")

    # ------------------------------------------------------------------
    # encode / decode
    # ------------------------------------------------------------------
    def encode(self, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Encode values into ``(signs, magnitude-ordered bucket indexes)``.

        Returns:
            ``signs`` — int8 array of {+1, -1};
            ``indexes`` — int64 array of per-sign bucket indexes where 0
            is the bucket nearest zero.
        """
        self._require_fitted()
        values = np.asarray(values, dtype=np.float64)
        signs = np.where(values >= 0, 1, -1).astype(np.int8)
        indexes = np.zeros(values.size, dtype=np.int64)
        pos_mask = signs > 0
        if pos_mask.any():
            if self.positive is None:
                raise ValueError("positive values seen but no positive buckets fit")
            indexes[pos_mask] = self.positive.encode(values[pos_mask])
        neg_mask = ~pos_mask
        if neg_mask.any():
            if self.negative is None:
                raise ValueError("negative values seen but no negative buckets fit")
            indexes[neg_mask] = self.negative.encode(-values[neg_mask])
        return signs, indexes

    def decode(self, signs: np.ndarray, indexes: np.ndarray) -> np.ndarray:
        """Decode ``(signs, indexes)`` back to bucket-mean values."""
        self._require_fitted()
        signs = np.asarray(signs, dtype=np.int64)
        indexes = np.asarray(indexes, dtype=np.int64)
        out = np.zeros(indexes.size, dtype=np.float64)
        pos_mask = signs > 0
        if pos_mask.any():
            if self.positive is None:
                raise ValueError("positive signs seen but no positive buckets fit")
            out[pos_mask] = self.positive.decode(indexes[pos_mask])
        neg_mask = ~pos_mask
        if neg_mask.any():
            if self.negative is None:
                raise ValueError("negative signs seen but no negative buckets fit")
            out[neg_mask] = self.negative.decode(indexes[neg_mask])
        return out

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round-trip helper: encode then decode (fit must have run)."""
        signs, indexes = self.encode(values)
        return self.decode(signs, indexes)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def buckets_for_sign(self, sign: int) -> SignedBuckets:
        """The :class:`SignedBuckets` for ``sign`` (+1 or -1)."""
        buckets = self.positive if sign > 0 else self.negative
        if buckets is None:
            raise ValueError(f"no buckets fit for sign {sign}")
        return buckets

    @property
    def total_buckets(self) -> int:
        total = 0
        if self.positive is not None:
            total += self.positive.num_buckets
        if self.negative is not None:
            total += self.negative.num_buckets
        return total

    @property
    def payload_bytes(self) -> int:
        """Bytes of bucket metadata shipped with each message (8q, §3.5)."""
        total = 0
        if self.positive is not None:
            total += self.positive.payload_bytes
        if self.negative is not None:
            total += self.negative.payload_bytes
        return total

    def variance_bound(self, values: np.ndarray) -> float:
        """Theorem A.2's bound ``d/(4q) * (phi_min^2 + phi_max^2)``."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return 0.0
        phi_min = float(values.min())
        phi_max = float(values.max())
        return values.size / (4.0 * self.num_buckets) * (phi_min**2 + phi_max**2)

    def __repr__(self) -> str:
        return (
            f"QuantileBucketQuantizer(q={self.num_buckets}, sketch={self.sketch!r}, "
            f"fitted={self.is_fitted})"
        )
