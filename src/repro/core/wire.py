"""SketchML with real bytes on the wire.

:class:`WireSketchMLCompressor` runs the normal SketchML pipeline and
then *actually serialises* every message with
:mod:`repro.core.serialization`: the payload handed to the network is a
byte string, ``num_bytes`` is its true length (framing included), and
decompression starts from those bytes.  Using it in the distributed
trainer makes the whole simulation's byte accounting exact rather than
modelled — the honest-mode variant used to validate that the accounting
model in :class:`~repro.core.compressor.SketchMLCompressor` tracks
reality (they agree within the framing overhead; see
``tests/test_wire_compressor.py``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..compression.base import (
    CompressedGradient,
    GradientCompressor,
    register_compressor,
)
from .compressor import SketchMLCompressor
from .config import SketchMLConfig
from .serialization import deserialize_message, serialize_message

__all__ = ["WireSketchMLCompressor"]


@register_compressor("sketchml-wire")
class WireSketchMLCompressor(GradientCompressor):
    """SketchML whose messages are genuine serialised byte strings.

    Args:
        config: configuration for the inner pipeline.
    """

    name = "sketchml-wire"

    def __init__(self, config: Optional[SketchMLConfig] = None) -> None:
        self._inner = SketchMLCompressor(config)

    @property
    def config(self) -> SketchMLConfig:
        return self._inner.config

    def reset(self) -> None:
        self._inner.reset()

    def compress(
        self, keys: np.ndarray, values: np.ndarray, dimension: int
    ) -> CompressedGradient:
        message = self._inner.compress(keys, values, dimension)
        wire = serialize_message(message)
        return CompressedGradient(
            payload=wire,
            num_bytes=len(wire),
            dimension=message.dimension,
            nnz=message.nnz,
            breakdown={"wire": len(wire)},
        )

    def decompress(self, message: CompressedGradient) -> Tuple[np.ndarray, np.ndarray]:
        if not isinstance(message.payload, (bytes, bytearray)):
            raise TypeError("message was not produced by WireSketchMLCompressor")
        rebuilt = deserialize_message(bytes(message.payload))
        return self._inner.decompress(rebuilt)

    def __repr__(self) -> str:
        return f"WireSketchMLCompressor(config={self.config.ablation_label!r})"
