"""Runtime sanitizer for the codec's paper-proved invariants.

SketchML's correctness rests on invariants the paper *proves* but the
code normally only trusts:

* **sign-preservation** (§3.3 Solution 1) — positive and negative
  values get separate sketches, so a decoded value can never flip sign.
* **one-sided-error** (§3.3) — MinMaxSketch min-insert / max-query
  means a decoded bucket index is never *larger* than the true one:
  gradients decay, never grow.
* **bucket-index-range** (§3.3 Solution 2) — every decoded index lies
  in ``[0, q)`` and inside its group's ``[g*width, (g+1)*width)`` band.
* **ascending-keys** (§3.4) — delta-binary key blobs decode to strictly
  ascending keys, and the merged decode has no duplicate keys.
* **decay-scale-bounds** — the shipped decay correction stays in the
  encoder's documented ``[1, 8]`` clamp.

The sanitizer re-checks these on every encode/decode when enabled via
the ``REPRO_SANITIZE=1`` environment variable, :func:`set_enabled` /
:func:`sanitized`, or the ``sanitize`` flag on
:class:`~repro.core.config.SketchMLConfig`.  A violation raises a
structured :class:`SanitizerError` naming the invariant and the message
offset.  ``SanitizerError`` subclasses :class:`ValueError` so callers
that already treat corrupted messages as typed decode failures (the
failure-injection suite, the trainer) need no changes.

This module depends only on numpy so every codec layer can import it
without cycles.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

import numpy as np

__all__ = [
    "SanitizerError",
    "INVARIANT_SIGN",
    "INVARIANT_ONE_SIDED",
    "INVARIANT_INDEX_RANGE",
    "INVARIANT_ASCENDING_KEYS",
    "INVARIANT_DECAY_SCALE",
    "INVARIANTS",
    "enabled",
    "set_enabled",
    "sanitized",
    "check_sign_preservation",
    "check_bucket_indexes",
    "check_one_sided",
    "check_ascending_keys",
    "check_decay_scale",
    "verify_sketch_roundtrip",
]

#: §3.3 Solution 1 — separate pos/neg sketches; decoding never flips sign.
INVARIANT_SIGN = "sign-preservation"
#: §3.3 — min-insert / max-query: decoded index <= true index.
INVARIANT_ONE_SIDED = "one-sided-error"
#: §3.3 Solution 2 — indexes stay below q and inside their group band.
INVARIANT_INDEX_RANGE = "bucket-index-range"
#: §3.4 — delta-encoded keys decode strictly ascending, no duplicates.
INVARIANT_ASCENDING_KEYS = "ascending-keys"
#: Encoder-side clamp on the §3.3 vanishing-gradient compensation.
INVARIANT_DECAY_SCALE = "decay-scale-bounds"

#: Every invariant id the sanitizer can report, for docs and tests.
INVARIANTS = (
    INVARIANT_SIGN,
    INVARIANT_ONE_SIDED,
    INVARIANT_INDEX_RANGE,
    INVARIANT_ASCENDING_KEYS,
    INVARIANT_DECAY_SCALE,
)


class SanitizerError(ValueError):
    """A paper invariant was violated during encode or decode.

    Attributes:
        invariant: one of :data:`INVARIANTS`.
        part: which message part (sign label or part index) failed.
        group: MinMaxSketch group id, when the check is per group.
        offset: first offending element offset within the checked array.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        part: Optional[object] = None,
        group: Optional[int] = None,
        offset: Optional[int] = None,
    ) -> None:
        self.invariant = invariant
        self.part = part
        self.group = group
        self.offset = offset
        where = []
        if part is not None:
            where.append(f"part={part}")
        if group is not None:
            where.append(f"group={group}")
        if offset is not None:
            where.append(f"offset={offset}")
        suffix = f" ({', '.join(where)})" if where else ""
        super().__init__(f"[{invariant}] {message}{suffix}")


_FORCED: Optional[bool] = None
_TRUTHY_OFF = ("", "0", "false", "off", "no")


def enabled() -> bool:
    """True when sanitizer checks are active for this process.

    :func:`set_enabled` / :func:`sanitized` take precedence; otherwise
    the ``REPRO_SANITIZE`` environment variable decides (any value other
    than empty/``0``/``false``/``off``/``no`` enables).
    """
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() not in _TRUTHY_OFF


def set_enabled(value: Optional[bool]) -> Optional[bool]:
    """Force the sanitizer on/off (``None`` = defer to the environment).

    Returns the previous forced value so callers can restore it.
    """
    global _FORCED
    previous = _FORCED
    _FORCED = value if value is None else bool(value)
    return previous


@contextmanager
def sanitized(value: bool = True) -> Iterator[None]:
    """Run the enclosed block with the sanitizer forced on (or off)."""
    previous = set_enabled(value)
    try:
        yield
    finally:
        set_enabled(previous)


def _first_offending(bad: np.ndarray) -> int:
    return int(np.flatnonzero(bad)[0])


# ----------------------------------------------------------------------
# invariant checks
# ----------------------------------------------------------------------
def check_sign_preservation(
    sign: int, values: np.ndarray, *, part: Optional[object] = None
) -> None:
    """§3.3 Solution 1: a decoded value never crosses zero.

    A positive part must decode to values ``>= 0``, a negative part to
    values ``<= 0`` (zero is legal for both: an empty bucket's mean).
    ``sign == 0`` (the unquantized mixed part) is exempt.
    """
    if sign == 0:
        return
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return
    bad = values < 0 if sign > 0 else values > 0
    if bad.any():
        off = _first_offending(bad)
        raise SanitizerError(
            INVARIANT_SIGN,
            f"decoded value {values[off]!r} has the wrong sign for a "
            f"{'positive' if sign > 0 else 'negative'} part",
            part=part,
            offset=off,
        )


def check_bucket_indexes(
    indexes: np.ndarray,
    num_buckets: int,
    *,
    group: Optional[int] = None,
    group_width: Optional[int] = None,
    part: Optional[object] = None,
) -> None:
    """§3.3 Solution 2: ``0 <= index < q`` and inside the group band."""
    indexes = np.asarray(indexes, dtype=np.int64)
    if indexes.size == 0:
        return
    lo, hi = 0, int(num_buckets)
    if group is not None and group_width is not None:
        lo = int(group) * int(group_width)
        hi = min(lo + int(group_width), hi)
    bad = (indexes < lo) | (indexes >= hi)
    if bad.any():
        off = _first_offending(bad)
        raise SanitizerError(
            INVARIANT_INDEX_RANGE,
            f"bucket index {int(indexes[off])} outside [{lo}, {hi}) "
            f"(q={num_buckets})",
            part=part,
            group=group,
            offset=off,
        )


def check_one_sided(
    true_indexes: np.ndarray,
    decoded_indexes: np.ndarray,
    *,
    group: Optional[int] = None,
    part: Optional[object] = None,
) -> None:
    """§3.3: the MinMaxSketch may under-estimate an index, never over."""
    true_indexes = np.asarray(true_indexes, dtype=np.int64)
    decoded_indexes = np.asarray(decoded_indexes, dtype=np.int64)
    if true_indexes.shape != decoded_indexes.shape:
        raise SanitizerError(
            INVARIANT_ONE_SIDED,
            f"decoded index count {decoded_indexes.size} does not match "
            f"true index count {true_indexes.size}",
            part=part,
            group=group,
        )
    bad = decoded_indexes > true_indexes
    if bad.any():
        off = _first_offending(bad)
        raise SanitizerError(
            INVARIANT_ONE_SIDED,
            f"decoded index {int(decoded_indexes[off])} over-estimates the "
            f"true index {int(true_indexes[off])}",
            part=part,
            group=group,
            offset=off,
        )


def check_ascending_keys(
    keys: np.ndarray,
    *,
    group: Optional[int] = None,
    part: Optional[object] = None,
) -> None:
    """§3.4: decoded keys are non-negative and strictly ascending."""
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        return
    if int(keys[0]) < 0 or (keys.size > 1 and keys.min() < 0):
        bad = keys < 0
        off = _first_offending(bad)
        raise SanitizerError(
            INVARIANT_ASCENDING_KEYS,
            f"decoded key {int(keys[off])} is negative",
            part=part,
            group=group,
            offset=off,
        )
    if keys.size > 1:
        bad = np.zeros(keys.size, dtype=bool)
        bad[1:] = np.diff(keys) <= 0
        if bad.any():
            off = _first_offending(bad)
            raise SanitizerError(
                INVARIANT_ASCENDING_KEYS,
                f"decoded keys not strictly ascending: key {int(keys[off])} "
                f"follows {int(keys[off - 1])}",
                part=part,
                group=group,
                offset=off,
            )


def check_decay_scale(scale: float, *, part: Optional[object] = None) -> None:
    """The shipped decay correction must lie in the encoder's [1, 8] clamp."""
    scale = float(scale)
    if not np.isfinite(scale) or not 1.0 <= scale <= 8.0:
        raise SanitizerError(
            INVARIANT_DECAY_SCALE,
            f"decay scale {scale!r} outside the documented [1.0, 8.0] clamp",
            part=part,
        )


def verify_sketch_roundtrip(
    sketch,
    sorted_keys: np.ndarray,
    sorted_offsets: np.ndarray,
    counts: np.ndarray,
    *,
    part: Optional[object] = None,
) -> None:
    """Encoder-side proof obligation: query back everything just inserted.

    ``sketch`` is a :class:`~repro.core.minmax_sketch.GroupedMinMaxSketch`
    (duck-typed to avoid an import cycle) that was just filled from the
    flat partition ``(sorted_keys, sorted_offsets, counts)``.  For every
    group this re-queries the inserted keys and asserts the §3.3
    guarantees against the *known* true indexes: decoded index in range,
    inside the group band, and never above the true index.
    """
    counts = np.asarray(counts, dtype=np.int64)
    width = int(sketch.group_width)
    q = int(sketch.index_range)
    bounds = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    for g in range(counts.size):
        if not counts[g]:
            continue
        keys_g = sorted_keys[bounds[g]:bounds[g + 1]]
        true_global = (
            np.asarray(sorted_offsets[bounds[g]:bounds[g + 1]], dtype=np.int64)
            + g * width
        )
        decoded = sketch.query_group(g, keys_g, strict=True)
        check_bucket_indexes(
            decoded, q, group=g, group_width=width, part=part
        )
        check_one_sided(true_global, decoded, group=g, part=part)
