"""High-concurrency gather soak: hundreds of simulated workers.

The transport micro-benchmark (:mod:`~repro.perf.transport_bench`)
measures per-frame codec + syscall cost with a handful of real worker
processes.  This module measures the thing the ``aio`` backend exists
for: **gather latency under fan-in at C10k-adjacent scale**, where the
driver must collect one gradient from each of 500 workers per round
and a few stragglers dominate every barrier.

Spawning 500 OS processes on a CI box is a non-starter, so the swarm
is simulated: one service thread owns ``W`` real TCP client sockets
(real connects, real SKRT hellos, real frames on real kernel buffers)
multiplexed on a ``selectors`` loop with a timer heap.  Each request
is answered with a canned *serialized gradient message* after a seeded
per-worker service delay — a small base cost plus an occasional
straggler stall, the fan-in shape the SketchML paper's cluster traces
motivate.  The driver side then decodes every reply through the real
``deserialize_message`` path.

Three driver modes bracket the design space:

``tcp``
    The blocking baseline: :class:`~repro.runtime.transport.
    TcpTransport` gathers each round in worker-id order.  The barrier
    waits on the slowest worker *and* replies queue behind the id-order
    walk.
``aio``
    Same barrier-per-round protocol over :class:`~repro.runtime.aio.
    AioTransport`, but replies are serviced in **arrival order** via
    :meth:`ready_workers` — early gradients decode while stragglers
    are still thinking (the cluster's gather does exactly this).
``aio-overlap``
    No global barrier: each worker is re-armed the moment its reply is
    decoded, so one straggler stalls one pipeline instead of all
    ``W``.  This is the event-loop payoff the issue targets — round
    throughput approaches the *mean* service time instead of the max.

Results carry messages/s plus p50/p99 per-message round latency and
land in ``BENCH_codec.json`` next to the codec kernels::

    python -m repro perf --soak                  # 8 / 64 / 500 workers
    python -m repro perf --soak --quick          # CI smoke
    python -m repro perf --soak --soak-workers 200 --soak-rounds 10
"""

from __future__ import annotations

import heapq
import selectors
import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import telemetry
from ..core import SketchMLCompressor, SketchMLConfig, deserialize_message, serialize_message
from ..runtime.aio import AioTransport
from ..runtime.framing import (
    KIND_ACK,
    KIND_ECHO,
    KIND_GRAD,
    FrameAssembler,
    pack_ack,
    pack_frame,
    unpack_frame,
)
from ..runtime.transport import TcpTransport, Transport
from .harness import BenchResult

__all__ = [
    "SOAK_MODES",
    "SoakBenchResult",
    "WorkerSwarm",
    "run_soak_bench",
]

#: driver modes, baseline first (REPORT.md quotes ratios against tcp)
SOAK_MODES = ("tcp", "aio", "aio-overlap")

#: gather timeout per reply — generous; stragglers stall well under 1 s
_RECV_TIMEOUT = 30.0


@dataclass(frozen=True)
class SoakBenchResult(BenchResult):
    """One soak run: ``workers`` simulated workers × ``rounds`` gathers.

    ``elements`` counts gathered messages and ``seconds`` is the whole
    run, so the inherited throughput properties are not meaningful —
    :attr:`messages_per_s` and the latency percentiles are the story.
    """

    workers: int = 0
    rounds: int = 0
    p50_ms: float = 0.0
    p99_ms: float = 0.0

    @property
    def messages_per_s(self) -> float:
        if self.seconds == 0.0:
            return 0.0
        return self.elements / self.seconds

    def to_json(self) -> dict:
        record = super().to_json()
        record.update(
            {
                "workers": self.workers,
                "rounds": self.rounds,
                "messages_per_s": round(self.messages_per_s, 1),
                "p50_ms": round(self.p50_ms, 3),
                "p99_ms": round(self.p99_ms, 3),
            }
        )
        return record


def _reply_payload(nnz: int = 2_000, dimension: int = 100_000) -> bytes:
    """A real serialized SketchML gradient message for driver decode.

    Keys + quantization with packed indices: a genuine wire message
    exercising the delta-decode and bit-unpack paths (~50 µs per
    decode), but without the minmax-sketch reconstruction whose fixed
    ~300 µs cost would CPU-bound *every* soak mode on a small CI box
    and mask the concurrency difference the benchmark measures.
    """
    rng = np.random.default_rng(7)
    keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
    values = rng.laplace(scale=0.01, size=nnz)
    values[values == 0.0] = 1e-6
    config = SketchMLConfig.keys_and_quantization(pack_index_bits=True)
    message = SketchMLCompressor(config).compress(keys, values, dimension)
    return serialize_message(message)


class WorkerSwarm:
    """``W`` simulated workers on one thread: real sockets, canned work.

    Each simulated worker connects to the transport's listener, sends
    the standard hello (an ``ACK`` frame naming its id), and answers
    every request with a pre-packed ``GRAD`` frame after a seeded
    service delay.  Delays model the fan-in the soak exists to expose:

    * base: ``base_delay_s`` perturbed ±50 % per message, and
    * stragglers: with probability ``straggler_rate`` a message adds a
      ``straggler_stall_s``-scale stall (a descheduled worker, a GC
      pause, a slow batch).

    The RNG is seeded per ``(seed, worker_id)`` so a fixed seed gives
    an identical delay schedule on every run.  One ``selectors`` loop
    plus a timer heap services all sockets — no per-worker threads, no
    sleeps on the reply path.
    """

    def __init__(
        self,
        host: str,
        port: int,
        num_workers: int,
        reply_payload: bytes,
        *,
        seed: int = 0,
        base_delay_s: float = 0.002,
        straggler_rate: float = 0.01,
        straggler_stall_s: float = 0.6,
    ) -> None:
        self.num_workers = int(num_workers)
        self._host = host
        self._port = port
        self._replies = [
            pack_frame(KIND_GRAD, w, reply_payload) for w in range(num_workers)
        ]
        self._rngs = [
            np.random.default_rng([int(seed), w]) for w in range(num_workers)
        ]
        self._base = float(base_delay_s)
        self._rate = float(straggler_rate)
        self._stall = float(straggler_stall_s)
        self._socks: List[Optional[socket.socket]] = [None] * num_workers
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None
        self.served = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-soak-swarm", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        for sock in self._socks:
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        if self._error is not None:
            raise RuntimeError("worker swarm failed") from self._error

    # ------------------------------------------------------------------
    def _delay(self, worker_id: int) -> float:
        rng = self._rngs[worker_id]
        delay = self._base * float(rng.uniform(0.5, 1.5))
        if self._rate > 0 and float(rng.random()) < self._rate:
            delay += self._stall * float(rng.uniform(0.5, 1.0))
        return delay

    def _run(self) -> None:
        try:
            self._serve()
        except BaseException as exc:  # surfaced by stop()
            self._error = exc

    def _serve(self) -> None:
        sel = selectors.DefaultSelector()
        assemblers: Dict[int, FrameAssembler] = {}
        try:
            for worker_id in range(self.num_workers):
                sock = socket.create_connection(
                    (self._host, self._port), timeout=30.0
                )
                sock.settimeout(None)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self._socks[worker_id] = sock
                sock.sendall(
                    pack_frame(KIND_ACK, worker_id, pack_ack(worker_id))
                )
                sel.register(sock, selectors.EVENT_READ, worker_id)
                assemblers[worker_id] = FrameAssembler()
            # (due_time, tiebreak, worker_id) replies pending their delay
            timers: List[tuple] = []
            seq = 0
            while not self._stop.is_set():
                now = time.monotonic()
                timeout = 0.05
                if timers:
                    timeout = min(timeout, max(timers[0][0] - now, 0.0))
                for key, _ in sel.select(timeout):
                    worker_id = key.data
                    sock = self._socks[worker_id]
                    assembler = assemblers[worker_id]
                    view = assembler.writable()
                    try:
                        n = sock.recv_into(view)
                    except OSError:
                        n = 0
                    if n == 0:
                        sel.unregister(sock)
                        continue
                    assembler.commit(n)
                    while True:
                        frame = assembler.next_frame()
                        if frame is None:
                            break
                        due = time.monotonic() + self._delay(worker_id)
                        heapq.heappush(timers, (due, seq, worker_id))
                        seq += 1
                now = time.monotonic()
                while timers and timers[0][0] <= now:
                    _, _, worker_id = heapq.heappop(timers)
                    sock = self._socks[worker_id]
                    try:
                        sock.sendall(self._replies[worker_id])
                    except OSError:
                        continue  # driver tore this socket down
                    self.served += 1
        finally:
            sel.close()


# ----------------------------------------------------------------------
# driver modes
# ----------------------------------------------------------------------
def _decode_reply(frame: bytes) -> None:
    kind, _, payload = unpack_frame(frame)
    if kind != KIND_GRAD:
        raise RuntimeError(f"soak swarm sent unexpected frame kind {kind}")
    deserialize_message(payload)


def _drive_tcp_barrier(
    transport: Transport, workers: int, rounds: int
) -> List[float]:
    """Baseline: per-round barrier, replies read in worker-id order."""
    latencies = []
    for round_id in range(rounds):
        request = pack_frame(KIND_ECHO, 0, pack_ack(round_id))
        start = time.perf_counter()
        with telemetry.span("soak.round", mode="tcp", round=round_id):
            for worker_id in range(workers):
                transport.send(worker_id, request)
            for worker_id in range(workers):
                _decode_reply(transport.recv(worker_id, _RECV_TIMEOUT))
                latencies.append(time.perf_counter() - start)
    return latencies


def _drive_aio_barrier(
    transport: AioTransport, workers: int, rounds: int
) -> List[float]:
    """Barrier per round, but replies decoded in arrival order."""
    latencies = []
    for round_id in range(rounds):
        request = pack_frame(KIND_ECHO, 0, pack_ack(round_id))
        start = time.perf_counter()
        with telemetry.span("soak.round", mode="aio", round=round_id):
            for worker_id in range(workers):
                transport.send(worker_id, request)
            pending = set(range(workers))
            while pending:
                ready = transport.ready_workers(
                    sorted(pending), timeout=_RECV_TIMEOUT
                )
                if not ready:
                    raise RuntimeError("soak gather timed out")
                for worker_id in ready:
                    _decode_reply(transport.recv(worker_id, _RECV_TIMEOUT))
                    latencies.append(time.perf_counter() - start)
                    pending.discard(worker_id)
    return latencies


def _drive_aio_overlap(
    transport: AioTransport, workers: int, rounds: int
) -> List[float]:
    """No barrier: every worker re-armed as soon as its reply decodes."""
    latencies = []
    issued = [0] * workers
    sent_at = [0.0] * workers
    done = 0
    total = workers * rounds
    with telemetry.span("soak.pipeline", mode="aio-overlap"):
        for worker_id in range(workers):
            sent_at[worker_id] = time.perf_counter()
            transport.send(
                worker_id, pack_frame(KIND_ECHO, 0, pack_ack(0))
            )
            issued[worker_id] = 1
        while done < total:
            ready = transport.ready_workers(timeout=_RECV_TIMEOUT)
            if not ready:
                raise RuntimeError("soak pipeline timed out")
            for worker_id in ready:
                _decode_reply(transport.recv(worker_id, _RECV_TIMEOUT))
                now = time.perf_counter()
                latencies.append(now - sent_at[worker_id])
                done += 1
                if issued[worker_id] < rounds:
                    sent_at[worker_id] = now
                    transport.send(
                        worker_id,
                        pack_frame(
                            KIND_ECHO, 0, pack_ack(issued[worker_id])
                        ),
                    )
                    issued[worker_id] += 1
    return latencies


def _run_mode(
    mode: str,
    workers: int,
    rounds: int,
    payload: bytes,
    *,
    seed: int,
    base_delay_s: float,
    straggler_rate: float,
    straggler_stall_s: float,
) -> SoakBenchResult:
    if mode == "tcp":
        transport: Transport = TcpTransport(workers, spawn_workers=False)
    else:
        transport = AioTransport(workers, spawn_workers=False)
    swarm = WorkerSwarm(
        "127.0.0.1",
        transport.port,
        workers,
        payload,
        seed=seed,
        base_delay_s=base_delay_s,
        straggler_rate=straggler_rate,
        straggler_stall_s=straggler_stall_s,
    )
    try:
        swarm.start()
        if mode == "tcp":
            transport.accept_connections(timeout=60.0)
        else:
            transport.wait_connected(60.0)
        start = time.perf_counter()
        if mode == "tcp":
            latencies = _drive_tcp_barrier(transport, workers, rounds)
        elif mode == "aio":
            latencies = _drive_aio_barrier(transport, workers, rounds)
        elif mode == "aio-overlap":
            latencies = _drive_aio_overlap(transport, workers, rounds)
        else:
            raise ValueError(f"unknown soak mode {mode!r}")
        elapsed = time.perf_counter() - start
    finally:
        transport.close()
        swarm.stop()
    lat_ms = np.asarray(latencies) * 1e3
    total = workers * rounds
    result = SoakBenchResult(
        name=f"soak/{mode}/w{workers}",
        elements=total,
        bytes_processed=total * len(payload),
        seconds=elapsed,
        samples=[elapsed],
        workers=workers,
        rounds=rounds,
        p50_ms=float(np.percentile(lat_ms, 50)),
        p99_ms=float(np.percentile(lat_ms, 99)),
    )
    telemetry.counter(
        "soak.messages", total, mode=mode, workers=workers
    )
    telemetry.event(
        "soak.result",
        mode=mode,
        workers=workers,
        messages_per_s=round(result.messages_per_s, 1),
        p50_ms=round(result.p50_ms, 3),
        p99_ms=round(result.p99_ms, 3),
    )
    return result


def run_soak_bench(
    worker_counts: Sequence[int] = (8, 64, 500),
    rounds: int = 30,
    *,
    modes: Sequence[str] = SOAK_MODES,
    seed: int = 0,
    base_delay_s: float = 0.002,
    straggler_rate: float = 0.01,
    straggler_stall_s: float = 0.6,
) -> List[BenchResult]:
    """Run every ``mode`` × ``worker_counts`` cell and return results.

    Each cell gathers ``rounds`` gradient messages from every simulated
    worker, so a cell moves ``workers × rounds`` messages; the delay
    model (not syscall cost) dominates, which is the production shape —
    see the module docstring for why the three modes separate.
    """
    payload = _reply_payload()
    results: List[BenchResult] = []
    for workers in worker_counts:
        if not 0 < workers <= 0xFFFE:
            raise ValueError(f"worker count {workers} out of range")
        for mode in modes:
            if mode not in SOAK_MODES:
                raise ValueError(
                    f"unknown soak mode {mode!r}; expected one of {SOAK_MODES}"
                )
            results.append(
                _run_mode(
                    mode,
                    workers,
                    rounds,
                    payload,
                    seed=seed,
                    base_delay_s=base_delay_s,
                    straggler_rate=straggler_rate,
                    straggler_stall_s=straggler_stall_s,
                )
            )
    return results
