"""Timed micro-benchmarks for the SketchML codec hot path.

The suite exercises the four kernels the compressor spends its time in
(quantile fit+encode, MinMaxSketch insert/query, delta-key
encode/decode) plus the end-to-end compress/decompress round trip, each
over a range of gradient sizes, and writes the medians to
``BENCH_codec.json`` so perf regressions show up as a diff.

Run it with::

    python -m repro perf             # full suite (5k / 50k / 200k nnz)
    python -m repro perf --quick     # CI smoke (small sizes, few repeats)

Timings use warmup iterations followed by repeat-median (the median is
robust to scheduler noise in a way a mean is not); throughput is quoted
as MB/s over the raw operand bytes each kernel consumes.
"""

from .harness import BenchResult, time_kernel
from .overhead import MAX_OVERHEAD_FRACTION, OverheadReport, measure_overhead
from .suite import (
    BENCH_FILENAME,
    FULL_SIZES,
    QUICK_SIZES,
    run_suite,
    write_results,
)
from .soak_bench import SOAK_MODES, SoakBenchResult, WorkerSwarm, run_soak_bench
from .wire_bench import WIRE_SCHEMA, run_wire_bench
from .transport_bench import (
    TRANSPORT_PAYLOAD_SIZES,
    TransportBenchResult,
    run_transport_bench,
)

__all__ = [
    "BENCH_FILENAME",
    "BenchResult",
    "FULL_SIZES",
    "MAX_OVERHEAD_FRACTION",
    "OverheadReport",
    "QUICK_SIZES",
    "SOAK_MODES",
    "SoakBenchResult",
    "TRANSPORT_PAYLOAD_SIZES",
    "TransportBenchResult",
    "WIRE_SCHEMA",
    "WorkerSwarm",
    "measure_overhead",
    "run_suite",
    "run_transport_bench",
    "run_soak_bench",
    "run_wire_bench",
    "time_kernel",
    "write_results",
]
