"""Wire serialization bench: payload v1 vs v2 entropy coding.

Times ``serialize_message``/``deserialize_message`` at payload version
1 (the frozen legacy encoding) and at version 2 with entropy coding of
the bucket-index streams, over the suite's gradient sizes, and records
the measured bytes-on-wire of each version so the v2 entropy reduction
is a number in ``BENCH_codec.json`` rather than a claim.

The byte accounting comes from the codec's own telemetry counters
(``codec.entropy.plain_bytes`` / ``codec.entropy.coded_bytes``,
emitted inside the rANS block writer): the bench installs a summing
probe recorder around one v2 serialize per size, so the JSON reflects
exactly what the encoder metered on the wire path.

The gradient uses the quantization-only configuration
(``enable_minmax=False``) — the bucket-index stream dominates that
payload, which is where entropy coding is designed to win; the sketch
rows of the full configuration are high-entropy and fall back to the
plain block.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..core.compressor import SketchMLCompressor
from ..core.config import SketchMLConfig
from ..core.serialization import (
    deserialize_message,
    deserialize_message_chunks,
    iter_serialize_message,
    serialize_message,
)
from .harness import BenchResult, time_kernel
from .suite import FULL_SIZES, QUICK_SIZES, _synthetic_gradient

__all__ = ["WIRE_SCHEMA", "run_wire_bench"]

#: schema tag of the ``wire`` section written next to ``kernels``
WIRE_SCHEMA = "repro-bench-wire/1"

#: chunk size for the streaming-encode kernel (matches the runtime
#: default ``RuntimeConfig.chunk_bytes``)
_STREAM_CHUNK_BYTES = 65536


class _NoopSpan:
    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _CounterProbe:
    """Sums telemetry counters by name; records nothing else."""

    def __init__(self) -> None:
        self.totals: Dict[str, int] = {}

    def counter(self, name: str, value: int, attrs: Dict[str, Any]) -> None:
        self.totals[name] = self.totals.get(name, 0) + int(value)

    def span(self, name: str, attrs: Dict[str, Any]) -> _NoopSpan:
        return _NOOP_SPAN

    def gauge(self, name: str, value: float, attrs: Dict[str, Any]) -> None:
        return None

    def hist(self, name: str, value: float, attrs: Dict[str, Any]) -> None:
        return None

    def measure(self, name: str, value: float, unit: str) -> None:
        return None

    def event(self, name: str, attrs: Dict[str, Any]) -> None:
        return None


def _entropy_counters(message) -> Dict[str, int]:
    """One v2 serialize under a summing probe → the codec's byte meters."""
    probe = _CounterProbe()
    previous = telemetry.set_recorder(probe)  # type: ignore[arg-type]
    try:
        serialize_message(message, version=2, entropy=True)
    finally:
        telemetry.set_recorder(previous)
    return {
        "plain_bytes": probe.totals.get("codec.entropy.plain_bytes", 0),
        "coded_bytes": probe.totals.get("codec.entropy.coded_bytes", 0),
    }


def _wire_message(nnz: int):
    keys, values, dimension = _synthetic_gradient(nnz)
    cfg = SketchMLConfig.full(seed=0, enable_minmax=False)
    return SketchMLCompressor(cfg).compress(keys, values, dimension)


def run_wire_bench(
    sizes: Optional[Sequence[int]] = None,
    *,
    quick: bool = False,
    warmup: Optional[int] = None,
    repeats: Optional[int] = None,
) -> Tuple[List[BenchResult], Dict[str, Any]]:
    """Time the wire codec at both payload versions.

    Returns the timed results (merged into the main kernel table) and
    the ``wire`` summary section: per size, the measured serialized
    bytes at v1 and at v2-with-entropy, the percentage reduction, and
    the encoder's own plain/coded telemetry byte counters.
    """
    if sizes is None:
        sizes = QUICK_SIZES if quick else FULL_SIZES
    if warmup is None:
        warmup = 1 if quick else 3
    if repeats is None:
        repeats = 3 if quick else 7
    results: List[BenchResult] = []
    per_size: Dict[str, Dict[str, Any]] = {}
    for nnz in sizes:
        nnz = int(nnz)
        message = _wire_message(nnz)
        v1 = serialize_message(message)
        v2 = serialize_message(message, version=2, entropy=True)
        counters = _entropy_counters(message)
        results.append(time_kernel(
            f"wire_encode_v1/{nnz}",
            lambda m=message: serialize_message(m),
            elements=nnz,
            bytes_processed=len(v1),
            warmup=warmup,
            repeats=repeats,
        ))
        results.append(time_kernel(
            f"wire_encode_v2/{nnz}",
            lambda m=message: serialize_message(m, version=2, entropy=True),
            elements=nnz,
            bytes_processed=len(v2),
            warmup=warmup,
            repeats=repeats,
        ))
        results.append(time_kernel(
            f"wire_decode_v1/{nnz}",
            lambda d=v1: deserialize_message(d),
            elements=nnz,
            bytes_processed=len(v1),
            warmup=warmup,
            repeats=repeats,
        ))
        results.append(time_kernel(
            f"wire_decode_v2/{nnz}",
            lambda d=v2: deserialize_message(d),
            elements=nnz,
            bytes_processed=len(v2),
            warmup=warmup,
            repeats=repeats,
        ))
        # Streaming round trip: chunked encode straight into the
        # incremental decoder, no contiguous payload ever built.
        results.append(time_kernel(
            f"wire_stream_v2/{nnz}",
            lambda m=message: deserialize_message_chunks(
                iter_serialize_message(
                    m, version=2, entropy=True,
                    chunk_bytes=_STREAM_CHUNK_BYTES,
                )
            ),
            elements=nnz,
            bytes_processed=len(v2),
            warmup=warmup,
            repeats=repeats,
        ))
        reduction = (1.0 - len(v2) / len(v1)) if len(v1) else 0.0
        per_size[str(nnz)] = {
            "v1_bytes": len(v1),
            "v2_bytes": len(v2),
            "reduction_pct": round(100.0 * reduction, 2),
            "entropy": {
                "plain_bytes": counters["plain_bytes"],
                "coded_bytes": counters["coded_bytes"],
                "saved_bytes": (
                    counters["plain_bytes"] - counters["coded_bytes"]
                ),
            },
        }
    section = {
        "schema": WIRE_SCHEMA,
        "config": "quantization-only (enable_minmax=False)",
        "sizes": per_size,
    }
    return results, section
