"""Disabled-telemetry overhead guard for the codec hot path.

The telemetry entry points are called from inside ``compress()`` even
when no recorder is installed; each such call must cost no more than a
global check plus a shared no-op object.  This module puts a number on
that promise and enforces the budget (``MAX_OVERHEAD_FRACTION``, 2% of
the e2e compress median):

1. time the e2e compress kernel with telemetry disabled (the normal
   bench condition);
2. install a *counting* probe recorder and run one compress to count
   how many instrumentation calls the hot path actually makes;
3. time the disabled-path primitives (a no-op span enter/exit, a no-op
   counter call) in isolation;
4. bound the instrumentation cost as ``calls x primitive_cost`` and
   compare it to the compress median.

The product is a conservative *upper* bound: with a probe installed
the codec also runs its gated extras (collision-rate query-back), so
the call count over-counts what the disabled path executes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from .. import telemetry
from ..core.compressor import SketchMLCompressor
from ..core.config import SketchMLConfig
from .suite import _synthetic_gradient

__all__ = [
    "MAX_OVERHEAD_FRACTION",
    "MAX_METRICS_OVERHEAD_FRACTION",
    "OverheadReport",
    "measure_overhead",
]

#: Hard budget: disabled-path instrumentation cost as a fraction of the
#: e2e compress median (enforced by ``repro perf`` and the test suite).
MAX_OVERHEAD_FRACTION = 0.02

#: Budget with the live-ops metrics hub installed (no recorder): every
#: counter/gauge call additionally pays the hub tee.  Looser than the
#: disabled path — the hub is an opt-in surface — but still bounded so
#: ``repro top`` never silently taxes training.
MAX_METRICS_OVERHEAD_FRACTION = 0.05


class _CountingSpan:
    """Context-manager stand-in so counted spans still nest correctly."""

    __slots__ = ()

    def __enter__(self) -> "_CountingSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_COUNTING_SPAN = _CountingSpan()


class _ProbeRecorder:
    """Counts instrumentation calls; records nothing.

    Implements the same surface :class:`~repro.telemetry.recorder.
    TraceRecorder` exposes to the module-level API, so installing it
    via ``set_recorder`` routes every call here.
    """

    def __init__(self) -> None:
        self.span_calls = 0
        self.metric_calls = 0

    def span(self, name: str, attrs: Dict[str, Any]) -> _CountingSpan:
        self.span_calls += 1
        return _COUNTING_SPAN

    def counter(self, name: str, value: int, attrs: Dict[str, Any]) -> None:
        self.metric_calls += 1

    def gauge(self, name: str, value: float, attrs: Dict[str, Any]) -> None:
        self.metric_calls += 1

    def hist(self, name: str, value: float, attrs: Dict[str, Any]) -> None:
        self.metric_calls += 1

    def measure(self, name: str, value: float, unit: str) -> None:
        self.metric_calls += 1

    def event(self, name: str, attrs: Dict[str, Any]) -> None:
        self.metric_calls += 1


@dataclass(frozen=True)
class OverheadReport:
    """The measured pieces of the disabled-path overhead bound."""

    nnz: int
    compress_seconds: float
    span_calls: int
    metric_calls: int
    span_noop_seconds: float
    metric_noop_seconds: float
    metrics_enabled: bool = False

    @property
    def instrumented_noop_seconds(self) -> float:
        """Upper bound on per-compress disabled instrumentation cost."""
        return (
            self.span_calls * self.span_noop_seconds
            + self.metric_calls * self.metric_noop_seconds
        )

    @property
    def overhead_fraction(self) -> float:
        if self.compress_seconds <= 0:
            return 0.0
        return self.instrumented_noop_seconds / self.compress_seconds

    @property
    def budget(self) -> float:
        return (
            MAX_METRICS_OVERHEAD_FRACTION
            if self.metrics_enabled
            else MAX_OVERHEAD_FRACTION
        )

    @property
    def within_budget(self) -> bool:
        return self.overhead_fraction <= self.budget

    def describe(self) -> str:
        path = (
            "metrics-hub" if self.metrics_enabled else "disabled-path"
        )
        return (
            f"telemetry {path} overhead: {self.overhead_fraction:.3%} "
            f"of e2e compress at nnz={self.nnz} "
            f"({self.span_calls} spans + {self.metric_calls} metric calls, "
            f"budget {self.budget:.0%})"
        )


def _median_seconds(kernel, warmup: int, repeats: int) -> float:
    for _ in range(warmup):
        kernel()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        kernel()
        samples.append(time.perf_counter() - t0)
    samples.sort()
    return samples[len(samples) // 2]


def _noop_primitive_seconds(iterations: int = 20_000):
    """Per-call cost of the disabled span and counter paths."""
    t0 = time.perf_counter()
    for _ in range(iterations):
        with telemetry.span("overhead.probe"):
            pass
    span_cost = (time.perf_counter() - t0) / iterations
    t0 = time.perf_counter()
    for _ in range(iterations):
        telemetry.counter("overhead.probe", 1)
    metric_cost = (time.perf_counter() - t0) / iterations
    return span_cost, metric_cost


def measure_overhead(
    nnz: int = 50_000,
    *,
    warmup: int = 2,
    repeats: int = 5,
    config: Optional[SketchMLConfig] = None,
    metrics_hub: bool = False,
) -> OverheadReport:
    """Measure the disabled-path bound at one gradient size.

    Requires telemetry to be disabled on entry (the guard temporarily
    installs its counting probe and restores the previous recorder).
    With ``metrics_hub=True`` the primitive costs are measured with a
    live :class:`~repro.telemetry.metrics.MetricsHub` installed — the
    ``repro top`` / exporter condition — against its looser budget.
    """
    keys, values, dimension = _synthetic_gradient(nnz)
    compressor = SketchMLCompressor(config or SketchMLConfig())

    previous = telemetry.set_recorder(None)
    previous_hub = telemetry.set_metrics_hub(None)
    try:
        compress_seconds = _median_seconds(
            lambda: compressor.compress(keys, values, dimension),
            warmup,
            repeats,
        )
        if metrics_hub:
            from ..telemetry.metrics import MetricsHub

            telemetry.set_metrics_hub(MetricsHub())
        span_noop, metric_noop = _noop_primitive_seconds()
        telemetry.set_metrics_hub(None)
        probe = _ProbeRecorder()
        telemetry.set_recorder(probe)  # type: ignore[arg-type]
        # Fresh compressor: the counted compress includes the cold
        # quantizer-fit path, so the call count is the worst case.
        SketchMLCompressor(config or SketchMLConfig()).compress(
            keys, values, dimension
        )
    finally:
        telemetry.set_recorder(previous)
        telemetry.set_metrics_hub(previous_hub)
    return OverheadReport(
        nnz=nnz,
        compress_seconds=compress_seconds,
        span_calls=probe.span_calls,
        metric_calls=probe.metric_calls,
        span_noop_seconds=span_noop,
        metric_noop_seconds=metric_noop,
        metrics_enabled=metrics_hub,
    )
