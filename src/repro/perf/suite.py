"""The codec benchmark suite: kernels x gradient sizes -> BENCH_codec.json.

Each kernel closes over pre-built operands so the timed region covers
only the work the compressor's hot path actually does per message.
Operand bytes (for the MB/s column) count the raw int64 keys and/or
float64 values the kernel consumes, i.e. the uncompressed traffic the
codec stage is processing.
"""

from __future__ import annotations

import json
import platform
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.compressor import SketchMLCompressor
from ..core.config import SketchMLConfig
from ..core.delta_encoding import decode_keys, encode_keys
from ..core.minmax_sketch import GroupedMinMaxSketch
from ..core.quantizer import QuantileBucketQuantizer
from .harness import BenchResult, time_kernel

__all__ = [
    "BENCH_FILENAME",
    "FULL_SIZES",
    "QUICK_SIZES",
    "run_suite",
    "write_results",
]

BENCH_FILENAME = "BENCH_codec.json"

#: gradient sizes (nnz) for the full suite
FULL_SIZES = (5_000, 50_000, 200_000)
#: CI smoke sizes: fast but still past the scalar/vector crossover
QUICK_SIZES = (5_000, 50_000)

_KEY_BYTES = 8  # int64 wire keys
_VALUE_BYTES = 8  # float64 gradient values


def _synthetic_gradient(nnz: int, seed: int = 0):
    """The suite's canonical gradient: Laplace values on sorted keys."""
    rng = np.random.default_rng(seed)
    dimension = max(10 * nnz, 64)
    keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
    values = rng.laplace(scale=0.01, size=nnz)
    values[values == 0.0] = 1e-4
    return keys, values, dimension


def _bench_quantizer_fit(
    nnz: int, cfg: SketchMLConfig, warmup: int, repeats: int
) -> BenchResult:
    _, values, _ = _synthetic_gradient(nnz)
    pos_sel = np.flatnonzero(values >= 0)
    neg_sel = np.flatnonzero(values < 0)

    def kernel():
        quantizer = QuantileBucketQuantizer(
            num_buckets=cfg.num_buckets,
            sketch=cfg.quantile_sketch,
            sketch_size=cfg.quantile_sketch_size,
            seed=cfg.seed,
        )
        return quantizer.fit_encode(values, pos_sel=pos_sel, neg_sel=neg_sel)

    return time_kernel(
        f"quantizer_fit/{nnz}",
        kernel,
        elements=nnz,
        bytes_processed=nnz * _VALUE_BYTES,
        warmup=warmup,
        repeats=repeats,
    )


def _minmax_operands(nnz: int, cfg: SketchMLConfig):
    keys, values, _ = _synthetic_gradient(nnz)
    # Bucket indexes from a real fit so insert sees realistic skew.
    quantizer = QuantileBucketQuantizer(
        num_buckets=cfg.num_buckets,
        sketch=cfg.quantile_sketch,
        sketch_size=cfg.quantile_sketch_size,
        seed=cfg.seed,
    )
    pos_sel = np.flatnonzero(values >= 0)
    neg_sel = np.flatnonzero(values < 0)
    pos_enc, neg_enc = quantizer.fit_encode(
        values, pos_sel=pos_sel, neg_sel=neg_sel
    )
    # Benchmark whichever sign part is larger (tiny grids can come out
    # single-signed).
    if pos_sel.size >= neg_sel.size:
        sign_keys, sign_enc, buckets = keys.take(pos_sel), pos_enc, quantizer.positive
    else:
        sign_keys, sign_enc, buckets = keys.take(neg_sel), neg_enc, quantizer.negative

    def make_sketch() -> GroupedMinMaxSketch:
        return GroupedMinMaxSketch(
            num_groups=cfg.num_groups,
            index_range=buckets.num_buckets,
            num_rows=cfg.minmax_rows,
            total_bins=cfg.minmax_total_bins(sign_keys.size),
            seed=cfg.seed,
            hash_family=cfg.hash_family,
        )
    return sign_keys, sign_enc, make_sketch


def _bench_minmax_insert(
    nnz: int, cfg: SketchMLConfig, warmup: int, repeats: int
) -> BenchResult:
    sign_keys, sign_enc, make_sketch = _minmax_operands(nnz, cfg)

    def kernel():
        sketch = make_sketch()
        flat = sketch.partition_flat(sign_keys, sign_enc)
        sketch.insert_flat(*flat)
        return sketch

    return time_kernel(
        f"minmax_insert/{nnz}",
        kernel,
        elements=sign_keys.size,
        bytes_processed=sign_keys.size * (_KEY_BYTES + _VALUE_BYTES),
        warmup=warmup,
        repeats=repeats,
    )


def _bench_minmax_query(
    nnz: int, cfg: SketchMLConfig, warmup: int, repeats: int
) -> BenchResult:
    sign_keys, sign_enc, make_sketch = _minmax_operands(nnz, cfg)
    sketch = make_sketch()
    sorted_keys, sorted_offsets, counts = sketch.partition_flat(
        sign_keys, sign_enc
    )
    sketch.insert_flat(sorted_keys, sorted_offsets, counts)
    bounds = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    group_keys = [
        sorted_keys[bounds[g]:bounds[g + 1]] for g in range(counts.size)
    ]

    def kernel():
        return [
            sketch.query_group(g, chunk)
            for g, chunk in enumerate(group_keys)
            if chunk.size
        ]

    return time_kernel(
        f"minmax_query/{nnz}",
        kernel,
        elements=sign_keys.size,
        bytes_processed=sign_keys.size * _KEY_BYTES,
        warmup=warmup,
        repeats=repeats,
    )


def _bench_delta_encode(
    nnz: int, cfg: SketchMLConfig, warmup: int, repeats: int
) -> BenchResult:
    keys, _, _ = _synthetic_gradient(nnz)
    return time_kernel(
        f"delta_encode/{nnz}",
        lambda: encode_keys(keys),
        elements=nnz,
        bytes_processed=nnz * _KEY_BYTES,
        warmup=warmup,
        repeats=repeats,
    )


def _bench_delta_decode(
    nnz: int, cfg: SketchMLConfig, warmup: int, repeats: int
) -> BenchResult:
    keys, _, _ = _synthetic_gradient(nnz)
    blob = encode_keys(keys)
    return time_kernel(
        f"delta_decode/{nnz}",
        lambda: decode_keys(blob),
        elements=nnz,
        bytes_processed=nnz * _KEY_BYTES,
        warmup=warmup,
        repeats=repeats,
    )


def _bench_e2e_compress(
    nnz: int, cfg: SketchMLConfig, warmup: int, repeats: int
) -> BenchResult:
    keys, values, dimension = _synthetic_gradient(nnz)
    compressor = SketchMLCompressor(cfg)
    return time_kernel(
        f"e2e_compress/{nnz}",
        lambda: compressor.compress(keys, values, dimension),
        elements=nnz,
        bytes_processed=nnz * (_KEY_BYTES + _VALUE_BYTES),
        warmup=warmup,
        repeats=repeats,
    )


def _bench_e2e_decompress(
    nnz: int, cfg: SketchMLConfig, warmup: int, repeats: int
) -> BenchResult:
    keys, values, dimension = _synthetic_gradient(nnz)
    compressor = SketchMLCompressor(cfg)
    message = compressor.compress(keys, values, dimension)
    return time_kernel(
        f"e2e_decompress/{nnz}",
        lambda: compressor.decompress(message),
        elements=nnz,
        bytes_processed=nnz * (_KEY_BYTES + _VALUE_BYTES),
        warmup=warmup,
        repeats=repeats,
    )


_KERNELS = (
    _bench_quantizer_fit,
    _bench_minmax_insert,
    _bench_minmax_query,
    _bench_delta_encode,
    _bench_delta_decode,
    _bench_e2e_compress,
    _bench_e2e_decompress,
)


def run_suite(
    sizes: Optional[Sequence[int]] = None,
    *,
    quick: bool = False,
    warmup: Optional[int] = None,
    repeats: Optional[int] = None,
    config: Optional[SketchMLConfig] = None,
) -> List[BenchResult]:
    """Run every kernel at every size; returns the timed results.

    ``quick`` trims both the size grid and the repeat counts so the
    whole suite finishes in a couple of seconds — that mode exists for
    CI smoke coverage, not for quotable numbers.
    """
    if sizes is None:
        sizes = QUICK_SIZES if quick else FULL_SIZES
    if warmup is None:
        warmup = 1 if quick else 3
    if repeats is None:
        repeats = 3 if quick else 7
    cfg = config if config is not None else SketchMLConfig()
    results: List[BenchResult] = []
    for nnz in sizes:
        for bench in _KERNELS:
            results.append(bench(int(nnz), cfg, warmup, repeats))
    return results


def results_to_json(
    results: Sequence[BenchResult],
    *,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """``extra`` adds top-level sections (e.g. the wire-bench summary)
    next to ``kernels``; it may not override the fixed keys."""
    payload: Dict[str, object] = {
        "schema": "repro-bench-codec/1",
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "kernels": {r.name: r.to_json() for r in results},
    }
    if extra:
        overlap = payload.keys() & extra.keys()
        if overlap:
            raise ValueError(f"extra sections clash with fixed keys: {sorted(overlap)}")
        payload.update(extra)
    return payload


def write_results(
    results: Sequence[BenchResult],
    path: str,
    *,
    extra: Optional[Dict[str, object]] = None,
) -> None:
    with open(path, "w") as fh:
        json.dump(
            results_to_json(results, extra=extra), fh, indent=2, sort_keys=True
        )
        fh.write("\n")
