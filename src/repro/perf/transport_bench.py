"""Transport echo micro-benchmark: frame round-trip cost per backend.

Times ``ECHO`` round-trips through each runtime transport at a couple
of payload sizes, so BENCH_codec.json records what a gradient exchange
costs *beyond* the codec work: sim's synchronous loopback is the
floor, ``mp`` adds pipe syscalls and process scheduling, ``tcp`` adds
the socket stack.  Workers answer ``ECHO`` before ``INIT``, so no
training state is involved — this isolates pure transport overhead.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..runtime.framing import (
    KIND_ECHO,
    KIND_STOP,
    pack_frame,
    unpack_frame,
)
from ..runtime.transport import (
    TRANSPORT_BACKENDS,
    TransportClosed,
    make_transport,
)
from .harness import BenchResult, time_kernel

__all__ = [
    "TransportBenchResult",
    "TRANSPORT_PAYLOAD_SIZES",
    "run_transport_bench",
]

#: payload sizes bracketing a real compressed-gradient message
#: (a few-KB quantized message and a larger sketch-bearing one)
TRANSPORT_PAYLOAD_SIZES = (4_096, 65_536)

#: echo round-trips per timed call — enough to amortise timer overhead
#: without making the mp/tcp suite slow
_MESSAGES_PER_CALL = 20


class TransportBenchResult(BenchResult):
    """A :class:`BenchResult` whose elements are messages.

    Adds the two quantities the transport rows are read for —
    messages/sec and bytes/message — to the JSON record.
    """

    def to_json(self) -> dict:
        record = super().to_json()
        record["bytes_per_message"] = (
            self.bytes_processed // self.elements if self.elements else 0
        )
        record["messages_per_s"] = (
            round(self.elements / self.seconds, 1) if self.seconds else 0.0
        )
        return record


def _echo_handler(worker_id: int):
    def handler(frame: bytes) -> List[bytes]:
        kind, _, payload = unpack_frame(frame)
        if kind != KIND_ECHO:
            return []
        return [pack_frame(KIND_ECHO, worker_id, payload)]

    return handler


def _build(backend: str):
    if backend == "sim":
        return make_transport("sim", 1, handlers=[_echo_handler(0)])
    return make_transport(backend, 1)


def run_transport_bench(
    backends: Optional[Iterable[str]] = None,
    payload_sizes: Sequence[int] = TRANSPORT_PAYLOAD_SIZES,
    *,
    warmup: int = 1,
    repeats: int = 3,
) -> List[BenchResult]:
    """Echo round-trip timings for each backend and payload size.

    One timed call moves ``_MESSAGES_PER_CALL`` frames driver → worker
    and back; ``bytes_processed`` counts the driver→worker frame bytes
    (the direction a gradient push pays for), so ``mb_per_s`` reads as
    one-way goodput.
    """
    if backends is None:
        backends = TRANSPORT_BACKENDS
    results: List[BenchResult] = []
    for backend in backends:
        if backend not in TRANSPORT_BACKENDS:
            raise ValueError(f"unknown transport backend {backend!r}")
        transport = _build(backend)
        try:
            for size in payload_sizes:
                frame = pack_frame(KIND_ECHO, 0, b"\xa5" * int(size))

                def kernel():
                    for _ in range(_MESSAGES_PER_CALL):
                        transport.send(0, frame)
                        transport.recv(0, 30.0)

                timed = time_kernel(
                    f"transport_echo/{backend}/{size}",
                    kernel,
                    elements=_MESSAGES_PER_CALL,
                    bytes_processed=_MESSAGES_PER_CALL * len(frame),
                    warmup=warmup,
                    repeats=repeats,
                )
                results.append(
                    TransportBenchResult(
                        name=timed.name,
                        elements=timed.elements,
                        bytes_processed=timed.bytes_processed,
                        seconds=timed.seconds,
                        samples=timed.samples,
                    )
                )
        finally:
            try:
                if transport.alive(0):
                    transport.send(0, pack_frame(KIND_STOP, 0))
            except TransportClosed:
                pass
            transport.close()
    return results
