"""Warmup + repeat-median timing harness.

Deliberately tiny: one function that times a no-argument callable and
one dataclass describing the result.  Wall-clock medians over a handful
of repeats are the right tool for kernels in the 0.1–100 ms range — a
mean is skewed by the occasional descheduled repeat, and a min hides
steady-state cache effects.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, List

__all__ = ["BenchResult", "time_kernel"]


@dataclass(frozen=True)
class BenchResult:
    """One timed kernel at one operand size."""

    name: str
    #: number of gradient elements the kernel consumed per call
    elements: int
    #: raw operand bytes the kernel consumed per call
    bytes_processed: int
    #: median wall-clock seconds per call
    seconds: float
    #: all repeat timings, seconds (median of these == ``seconds``)
    samples: List[float]

    @property
    def ns_per_element(self) -> float:
        if self.elements == 0:
            return 0.0
        return self.seconds * 1e9 / self.elements

    @property
    def mb_per_s(self) -> float:
        if self.seconds == 0.0:
            return 0.0
        return self.bytes_processed / self.seconds / 1e6

    def to_json(self) -> dict:
        return {
            "elements": self.elements,
            "bytes": self.bytes_processed,
            "median_ms": round(self.seconds * 1e3, 4),
            "ns_per_element": round(self.ns_per_element, 2),
            "mb_per_s": round(self.mb_per_s, 2),
            "repeats": len(self.samples),
        }


def time_kernel(
    name: str,
    fn: Callable[[], object],
    *,
    elements: int,
    bytes_processed: int,
    warmup: int = 3,
    repeats: int = 7,
) -> BenchResult:
    """Time ``fn`` with ``warmup`` discarded calls then ``repeats`` medians.

    ``fn`` must be self-contained (operands bound via closure) and is
    expected to do the same work on every call — kernels that mutate
    persistent state should rebuild it inside ``fn``.
    """
    if warmup < 0 or repeats <= 0:
        raise ValueError("warmup must be >= 0 and repeats must be positive")
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return BenchResult(
        name=name,
        elements=elements,
        bytes_processed=bytes_processed,
        seconds=statistics.median(samples),
        samples=samples,
    )
