"""Global switch between vectorised and scalar codec kernels.

Every hot-path kernel in the codec (quantile-sketch batch builds,
MinMaxSketch scatter-min, fused hash rows, batched delta-key encoding,
group partitioning) exists in two implementations:

* **vectorised** — numpy array kernels; the default and the path every
  production caller takes.
* **scalar** — a straight-line loop transcription of the same
  semantics, kept as the executable specification.

The two must produce *byte-identical* results — wire blobs, sketch
tables, decoded values — which ``tests/test_golden_equivalence.py``
asserts property-style across seeds, signs and sizes.  The switch is
process-global (not thread-local): it exists for tests and for
``python -m repro perf --compare``, not for concurrent use.

Example:
    >>> from repro import kernels
    >>> kernels.vectorised_enabled()
    True
    >>> with kernels.scalar_kernels():
    ...     kernels.vectorised_enabled()
    False
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "vectorised_enabled",
    "set_vectorised",
    "scalar_kernels",
    "vectorised_kernels",
]

_VECTORISED = True


def vectorised_enabled() -> bool:
    """True when the numpy kernel implementations are active."""
    return _VECTORISED


def set_vectorised(enabled: bool) -> bool:
    """Set the kernel mode; returns the previous mode."""
    global _VECTORISED
    previous = _VECTORISED
    _VECTORISED = bool(enabled)
    return previous


@contextmanager
def scalar_kernels() -> Iterator[None]:
    """Run the enclosed block on the scalar reference kernels."""
    previous = set_vectorised(False)
    try:
        yield
    finally:
        set_vectorised(previous)


@contextmanager
def vectorised_kernels() -> Iterator[None]:
    """Run the enclosed block on the vectorised kernels."""
    previous = set_vectorised(True)
    try:
        yield
    finally:
        set_vectorised(previous)
