"""Seeded membership schedules for elastic training runs.

A :class:`MembershipSchedule` is the ground truth of *who trains when*:
it fixes the initially active worker set and a sorted list of
join/leave events keyed by the global aggregated-round index.  The
schedule is validated up front (a leave must name an active worker, a
join an inactive one, and the active set may never empty), serialises
to a small JSON document (``repro-fleet-schedule/1``, the format
``repro train --elastic sched.json`` loads — see ``docs/fleet.md``),
and can be generated from a seed — the same generator drives churn in
the :mod:`repro.fleet.simulator` replay engine.

Because every membership decision is driver-side data, two backends
running the same schedule under the same seed make byte-identical
membership transitions — the elastic half of the fleet subsystem's
bit-identity guarantee.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SCHEDULE_SCHEMA",
    "MembershipEvent",
    "MembershipSchedule",
    "ScheduleError",
    "shard_weights",
]

SCHEDULE_SCHEMA = "repro-fleet-schedule/1"


class ScheduleError(ValueError):
    """A membership schedule is internally inconsistent."""


@dataclass(frozen=True)
class MembershipEvent:
    """One membership change, applied *before* the named round runs.

    Attributes:
        round: global aggregated-round index (>= 1; round 0 always
            runs with the schedule's start set).
        joins: worker ids entering the membership at this round.
        leaves: worker ids exiting at this round.
    """

    round: int
    joins: Tuple[int, ...] = ()
    leaves: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "joins", tuple(sorted(self.joins)))
        object.__setattr__(self, "leaves", tuple(sorted(self.leaves)))
        if self.round < 1:
            raise ScheduleError(
                f"membership events start at round 1, got {self.round}"
            )
        if not self.joins and not self.leaves:
            raise ScheduleError(f"event at round {self.round} is empty")
        overlap = set(self.joins) & set(self.leaves)
        if overlap:
            raise ScheduleError(
                f"round {self.round}: workers {sorted(overlap)} both "
                "join and leave"
            )


@dataclass(frozen=True)
class MembershipSchedule:
    """A validated timeline of elastic membership over one run.

    Attributes:
        num_workers: the worker *universe* ``W`` (ids ``0..W-1``); every
            worker is booted once, and membership is a logical overlay
            (detach/attach) on top of the running fleet.
        start: initially active ids (defaults to the full universe).
        events: membership changes, strictly increasing in ``round``.
    """

    num_workers: int
    start: Tuple[int, ...] = ()
    events: Tuple[MembershipEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ScheduleError("num_workers must be positive")
        universe = range(self.num_workers)
        start = tuple(sorted(self.start)) or tuple(universe)
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "events", tuple(self.events))
        if any(w not in universe for w in start):
            raise ScheduleError(
                f"start set {start} outside universe 0..{self.num_workers - 1}"
            )
        rounds = [e.round for e in self.events]
        if rounds != sorted(set(rounds)):
            raise ScheduleError(
                "events must be strictly increasing in round"
            )
        active = set(start)
        for event in self.events:
            bad = [w for w in event.joins + event.leaves if w not in universe]
            if bad:
                raise ScheduleError(
                    f"round {event.round}: workers {bad} outside universe"
                )
            already = [w for w in event.joins if w in active]
            if already:
                raise ScheduleError(
                    f"round {event.round}: joins {already} already active"
                )
            missing = [w for w in event.leaves if w not in active]
            if missing:
                raise ScheduleError(
                    f"round {event.round}: leaves {missing} not active"
                )
            active |= set(event.joins)
            active -= set(event.leaves)
            if not active:
                raise ScheduleError(
                    f"round {event.round}: membership would empty"
                )

    # ------------------------------------------------------------------
    @property
    def max_event_round(self) -> int:
        """The last round at which membership changes (0 if static)."""
        return self.events[-1].round if self.events else 0

    def event_at(self, round_index: int) -> Optional[MembershipEvent]:
        """The event applied before ``round_index``, if any."""
        for event in self.events:
            if event.round == round_index:
                return event
            if event.round > round_index:
                return None
        return None

    def active_at(self, round_index: int) -> Tuple[int, ...]:
        """Sorted active worker ids for the given round."""
        active = set(self.start)
        for event in self.events:
            if event.round > round_index:
                break
            active |= set(event.joins)
            active -= set(event.leaves)
        return tuple(sorted(active))

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "schema": SCHEDULE_SCHEMA,
            "num_workers": self.num_workers,
            "start": list(self.start),
            "events": [
                {
                    "round": e.round,
                    "join": list(e.joins),
                    "leave": list(e.leaves),
                }
                for e in self.events
            ],
        }

    @classmethod
    def from_json(cls, obj: Dict[str, object]) -> "MembershipSchedule":
        schema = obj.get("schema", SCHEDULE_SCHEMA)
        if schema != SCHEDULE_SCHEMA:
            raise ScheduleError(f"unknown schedule schema {schema!r}")
        events = tuple(
            MembershipEvent(
                round=int(e["round"]),
                joins=tuple(int(w) for w in e.get("join", ())),
                leaves=tuple(int(w) for w in e.get("leave", ())),
            )
            for e in obj.get("events", ())
        )
        return cls(
            num_workers=int(obj["num_workers"]),
            start=tuple(int(w) for w in obj.get("start", ())),
            events=events,
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "MembershipSchedule":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(json.load(fh))

    # ------------------------------------------------------------------
    @classmethod
    def seeded(
        cls,
        num_workers: int,
        rounds: int,
        seed: int,
        *,
        leave_prob: float = 0.05,
        join_prob: float = 0.1,
        min_active: int = 1,
    ) -> "MembershipSchedule":
        """Generate a random-but-reproducible churn timeline.

        Each round, every active worker leaves with ``leave_prob`` (as
        long as ``min_active`` survive) and every inactive worker
        rejoins with ``join_prob``.  The same ``(seed, parameters)``
        always yield the same schedule — this generator is shared by
        elastic training and the replay engine's churn model.
        """
        if not 1 <= min_active <= num_workers:
            raise ScheduleError("min_active must be in [1, num_workers]")
        rng = np.random.default_rng([seed, num_workers, rounds])
        active = set(range(num_workers))
        events: List[MembershipEvent] = []
        for round_index in range(1, rounds):
            joins = [
                w for w in sorted(set(range(num_workers)) - active)
                if rng.random() < join_prob
            ]
            leaves = []
            for w in sorted(active):
                if len(active) - len(leaves) + len(joins) <= min_active:
                    break
                if rng.random() < leave_prob:
                    leaves.append(w)
            if joins or leaves:
                events.append(
                    MembershipEvent(
                        round=round_index,
                        joins=tuple(joins),
                        leaves=tuple(leaves),
                    )
                )
                active |= set(joins)
                active -= set(leaves)
        return cls(num_workers=num_workers, events=tuple(events))


def shard_weights(shard_sizes: Dict[int, int]) -> Dict[int, float]:
    """Aggregation weights from shard sizes: ``sizeᵢ / Σ size``.

    The deterministic re-partition covers the full training set on
    every membership change, so the weights of the active workers sum
    to 1 (up to float rounding) — the invariant the elastic tests pin.
    """
    total = float(sum(shard_sizes.values()))
    if total <= 0:
        raise ValueError("shard sizes must sum to a positive count")
    return {w: n / total for w, n in sorted(shard_sizes.items())}
