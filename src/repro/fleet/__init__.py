"""repro.fleet — elastic membership + trace-driven fleet replay.

Two halves (see ``docs/fleet.md``):

* **Elastic + stale execution** — :class:`FleetTrainer` runs training
  over the real runtime backends with a seeded
  :class:`MembershipSchedule` (workers join/leave mid-run, shards are
  deterministically re-partitioned, aggregation re-weighted) and an
  optional bounded-staleness gate (``--stale N``) that folds the SSP
  semantics of :mod:`repro.distributed.ssp_trainer` into the wire
  protocol.  All scheduling decisions are driver-side and seeded, so a
  fixed seed is bit-identical across ``sim`` / ``mp`` / ``tcp`` /
  ``aio``.

* **Trace-driven fleet replay** — :func:`fit_cost_model` distils a
  recorded ``repro-trace/1`` flight into per-worker cost
  distributions, and :func:`simulate_fleet` plays scaled what-if
  fleets (thousands of workers, diurnal load, correlated stragglers,
  churn) against them in virtual time, emitting a valid synthetic
  trace plus a fleet summary (``repro replay``).
"""

from .costmodel import CostModel, WorkerCost, fit_cost_model
from .membership import (
    MembershipEvent,
    MembershipSchedule,
    ScheduleError,
    shard_weights,
)
from .replay import ReplayError, run_replay
from .simulator import FleetResult, FleetScenario, simulate_fleet
from .trainer import FleetConfig, FleetTrainer

__all__ = [
    "CostModel",
    "WorkerCost",
    "fit_cost_model",
    "MembershipEvent",
    "MembershipSchedule",
    "ScheduleError",
    "shard_weights",
    "ReplayError",
    "run_replay",
    "FleetResult",
    "FleetScenario",
    "simulate_fleet",
    "FleetConfig",
    "FleetTrainer",
]
