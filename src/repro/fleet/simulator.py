"""Virtual-time fleet simulator: scaled what-if runs over a cost model.

:func:`simulate_fleet` plays a :class:`~repro.fleet.costmodel.CostModel`
fitted from a small recorded run against a :class:`FleetScenario`
describing a much larger fleet — thousands of workers, diurnal load
swings, rack-correlated straggler shocks, and seeded churn (reusing
:meth:`MembershipSchedule.seeded`, the same generator elastic training
uses).  Everything runs in *virtual* time: the module never sleeps,
never touches a socket, and draws every sample from explicitly seeded
generators, so a scenario replays bit-identically and the lint
``async-discipline`` / ``seed-flow`` tiers both hold.

Two gather disciplines are modelled for synchronous rounds:

* ``barrier`` — the driver waits for the slowest worker, then decodes
  all messages serially: ``max(finish) + n·decode + latency``.
* ``overlap`` — decode is pipelined in arrival order (the aio
  transport's behaviour): each message decodes at
  ``max(arrival, previous decode end) + decode``.

With ``staleness`` set the simulation switches to an event-driven
bounded-async loop using the same gate as
:class:`~repro.fleet.trainer.FleetTrainer`: a worker may run ahead of
the slowest active peer by at most ``staleness`` steps.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .costmodel import CostModel
from .membership import MembershipSchedule

__all__ = [
    "FleetScenario",
    "RoundRecord",
    "FleetResult",
    "simulate_fleet",
]

#: Diurnal load never drops a worker below 10% of its fitted speed.
_MIN_LOAD_FACTOR = 0.1

#: At most this many workers get per-step spans in the synthetic trace.
_MAX_SAMPLED_WORKERS = 8


@dataclass(frozen=True)
class FleetScenario:
    """Knobs of one simulated fleet.

    Attributes:
        workers: simulated fleet size (personas cycle the recorded
            workers with seeded speed jitter).
        rounds: synchronous rounds (or per-worker steps in stale mode).
        seed: master seed; every stream derives from it.
        staleness: bounded-async slack; ``None`` = fully synchronous.
        gather: ``"overlap"`` (pipelined decode) or ``"barrier"``.
        diurnal_amplitude: load swing in ``1 + A·sin(2πr/period)``.
        diurnal_period: rounds per diurnal cycle.
        straggler_rate: per-round probability that a rack stalls.
        straggler_stall: seconds added to every worker in a stalled rack.
        rack_size: workers per rack (correlated-failure domain).
        churn_leave_prob / churn_join_prob: per-round membership churn
            (0 = static fleet), fed to :meth:`MembershipSchedule.seeded`.
        min_active: churn never drops membership below this.
    """

    workers: int
    rounds: int
    seed: int = 0
    staleness: Optional[int] = None
    gather: str = "overlap"
    diurnal_amplitude: float = 0.0
    diurnal_period: int = 96
    straggler_rate: float = 0.0
    straggler_stall: float = 0.0
    rack_size: int = 16
    churn_leave_prob: float = 0.0
    churn_join_prob: float = 0.0
    min_active: int = 1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.rounds < 1:
            raise ValueError("rounds must be positive")
        if self.gather not in ("overlap", "barrier"):
            raise ValueError(f"unknown gather discipline {self.gather!r}")
        if self.staleness is not None and self.staleness < 0:
            raise ValueError("staleness must be >= 0")
        if not 0.0 <= self.diurnal_amplitude:
            raise ValueError("diurnal_amplitude must be >= 0")
        if self.diurnal_period < 1:
            raise ValueError("diurnal_period must be positive")
        if not 0.0 <= self.straggler_rate <= 1.0:
            raise ValueError("straggler_rate must be in [0, 1]")
        if self.straggler_stall < 0.0:
            raise ValueError("straggler_stall must be >= 0")
        if self.rack_size < 1:
            raise ValueError("rack_size must be positive")
        if not 0.0 <= self.churn_leave_prob <= 1.0:
            raise ValueError("churn_leave_prob must be in [0, 1]")
        if not 0.0 <= self.churn_join_prob <= 1.0:
            raise ValueError("churn_join_prob must be in [0, 1]")
        if not 1 <= self.min_active <= self.workers:
            raise ValueError("min_active must be in [1, workers]")


@dataclass(frozen=True)
class RoundRecord:
    """One simulated round (or one applied step in stale mode)."""

    round: int
    start: float
    duration: float
    active: int
    bytes_sent: int
    stalled_racks: Tuple[int, ...]
    straggler_seconds: float


@dataclass
class FleetResult:
    """Outcome of one :func:`simulate_fleet` run (virtual seconds)."""

    scenario: FleetScenario
    rounds: List[RoundRecord]
    worker_samples: List[Tuple[int, int, float, float]]
    total_seconds: float
    bytes_total: int
    straggler_seconds: float
    membership_changes: int
    rounds_per_epoch: float
    percentiles: Dict[str, float] = field(default_factory=dict)

    @property
    def epoch_seconds(self) -> float:
        """Estimated wall time of one epoch at this fleet's round rate.

        Synchronous mode extrapolates the mean round duration; stale
        mode (steps run concurrently) scales total completion time by
        epoch-steps over simulated steps per worker.
        """
        if not self.rounds:
            return 0.0
        if self.scenario.staleness is not None:
            return (
                self.total_seconds
                * self.rounds_per_epoch
                / self.scenario.rounds
            )
        mean_round = self.total_seconds / len(self.rounds)
        return mean_round * self.rounds_per_epoch

    def summary_dict(self) -> Dict[str, object]:
        s = self.scenario
        return {
            "workers": s.workers,
            "rounds_simulated": len(self.rounds),
            "mode": (
                f"stale(N={s.staleness})" if s.staleness is not None
                else f"sync/{s.gather}"
            ),
            "seed": s.seed,
            "total_seconds": self.total_seconds,
            "epoch_seconds": self.epoch_seconds,
            "round_p50": self.percentiles.get("p50", 0.0),
            "round_p90": self.percentiles.get("p90", 0.0),
            "round_p99": self.percentiles.get("p99", 0.0),
            "bytes_total": self.bytes_total,
            "straggler_seconds": self.straggler_seconds,
            "membership_changes": self.membership_changes,
        }

    def summary(self) -> str:
        """Fixed-width fleet summary for ``benchmarks/results/``."""
        d = self.summary_dict()
        straggler_share = (
            self.straggler_seconds / self.total_seconds
            if self.total_seconds > 0 else 0.0
        )
        lines = [
            f"workers             {d['workers']}",
            f"mode                {d['mode']}",
            f"seed                {d['seed']}",
            f"rounds simulated    {d['rounds_simulated']}",
            f"total virtual time  {self.total_seconds:.3f} s",
            f"epoch estimate      {self.epoch_seconds:.3f} s "
            f"({self.rounds_per_epoch:.1f} rounds/epoch)",
            f"round p50/p90/p99   {d['round_p50']:.4f} / "
            f"{d['round_p90']:.4f} / {d['round_p99']:.4f} s",
            f"bytes on wire       {self.bytes_total}",
            f"straggler time      {self.straggler_seconds:.3f} s "
            f"({straggler_share:.1%} of total)",
            f"membership changes  {self.membership_changes}",
        ]
        return "\n".join(lines)


def _personas(
    model: CostModel, scenario: FleetScenario
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-simulated-worker lognormal parameters.

    Worker ``i`` inherits recorded worker ``i mod R`` and a seeded speed
    jitter in ``[0.85, 1.15]`` so scaled fleets are not ``R`` identical
    cohorts.
    """
    rng = np.random.default_rng([scenario.seed, scenario.workers, 5])
    recorded = model.workers
    idx = np.arange(scenario.workers) % len(recorded)
    log_means = np.array([recorded[i].log_mean for i in idx])
    log_stds = np.array([recorded[i].log_std for i in idx])
    jitter = 0.85 + 0.3 * rng.random(scenario.workers)
    return log_means + np.log(jitter), log_stds


def _churn_schedule(scenario: FleetScenario) -> MembershipSchedule:
    if scenario.churn_leave_prob <= 0.0 and scenario.churn_join_prob <= 0.0:
        return MembershipSchedule(num_workers=scenario.workers)
    return MembershipSchedule.seeded(
        scenario.workers,
        scenario.rounds,
        scenario.seed,
        leave_prob=scenario.churn_leave_prob,
        join_prob=scenario.churn_join_prob,
        min_active=scenario.min_active,
    )


def _stalled_racks(
    scenario: FleetScenario,
    rng: np.random.Generator,
    num_racks: int,
) -> Tuple[int, ...]:
    if scenario.straggler_rate <= 0.0 or scenario.straggler_stall <= 0.0:
        return ()
    hits = rng.random(num_racks) < scenario.straggler_rate
    return tuple(int(r) for r in np.flatnonzero(hits))


def _gather_end(
    finishes: np.ndarray, decode: float, latency: float, discipline: str
) -> float:
    if finishes.size == 0:
        return latency
    if discipline == "barrier":
        return float(finishes.max()) + finishes.size * decode + latency
    # Pipelined decode in arrival order.
    end = 0.0
    for f in np.sort(finishes):
        end = max(end, float(f)) + decode
    return end + latency


def simulate_fleet(model: CostModel, scenario: FleetScenario) -> FleetResult:
    """Run one scenario against a fitted cost model in virtual time."""
    log_means, log_stds = _personas(model, scenario)
    schedule = _churn_schedule(scenario)
    step_rng = np.random.default_rng([scenario.seed, 11])
    shock_rng = np.random.default_rng([scenario.seed, 13])
    num_racks = -(-scenario.workers // scenario.rack_size)
    membership_changes = sum(
        len(e.joins) + len(e.leaves) for e in schedule.events
    )
    sampled = frozenset(range(min(_MAX_SAMPLED_WORKERS, scenario.workers)))

    if scenario.staleness is None:
        return _simulate_sync(
            model, scenario, schedule, log_means, log_stds,
            step_rng, shock_rng, num_racks, membership_changes, sampled,
        )
    return _simulate_stale(
        model, scenario, schedule, log_means, log_stds,
        step_rng, shock_rng, num_racks, membership_changes, sampled,
    )


def _simulate_sync(
    model: CostModel,
    scenario: FleetScenario,
    schedule: MembershipSchedule,
    log_means: np.ndarray,
    log_stds: np.ndarray,
    step_rng: np.random.Generator,
    shock_rng: np.random.Generator,
    num_racks: int,
    membership_changes: int,
    sampled: frozenset,
) -> FleetResult:
    records: List[RoundRecord] = []
    worker_samples: List[Tuple[int, int, float, float]] = []
    active = set(schedule.start)
    now = 0.0
    bytes_total = 0
    straggler_total = 0.0
    decode = model.decode_seconds_per_message
    latency = model.wire_latency_seconds
    for round_index in range(scenario.rounds):
        event = schedule.event_at(round_index)
        if event is not None:
            active |= set(event.joins)
            active -= set(event.leaves)
        ids = np.array(sorted(active), dtype=np.int64)
        load = 1.0 + scenario.diurnal_amplitude * math.sin(
            2.0 * math.pi * round_index / scenario.diurnal_period
        )
        load = max(_MIN_LOAD_FACTOR, load)
        steps = np.exp(
            log_means[ids] + log_stds[ids] * step_rng.standard_normal(ids.size)
        ) * load
        stalled = _stalled_racks(scenario, shock_rng, num_racks)
        finishes = steps.copy()
        if stalled:
            racks = ids // scenario.rack_size
            hit = np.isin(racks, np.asarray(stalled, dtype=np.int64))
            finishes = finishes + hit * scenario.straggler_stall
        duration = _gather_end(finishes, decode, latency, scenario.gather)
        clean_duration = (
            _gather_end(steps, decode, latency, scenario.gather)
            if stalled else duration
        )
        straggler_seconds = max(0.0, duration - clean_duration)
        round_bytes = int(round(2 * ids.size * model.bytes_per_message))
        for w in sampled & active:
            pos = int(np.searchsorted(ids, w))
            worker_samples.append(
                (round_index, w, now, float(finishes[pos]))
            )
        records.append(
            RoundRecord(
                round=round_index,
                start=now,
                duration=duration,
                active=ids.size,
                bytes_sent=round_bytes,
                stalled_racks=stalled,
                straggler_seconds=straggler_seconds,
            )
        )
        now += duration
        bytes_total += round_bytes
        straggler_total += straggler_seconds
    return _finish(
        scenario, records, worker_samples, now, bytes_total,
        straggler_total, membership_changes, model.rounds_per_epoch,
    )


def _simulate_stale(
    model: CostModel,
    scenario: FleetScenario,
    schedule: MembershipSchedule,
    log_means: np.ndarray,
    log_stds: np.ndarray,
    step_rng: np.random.Generator,
    shock_rng: np.random.Generator,
    num_racks: int,
    membership_changes: int,
    sampled: frozenset,
) -> FleetResult:
    """Event-driven bounded-async fleet.

    Each active worker performs ``scenario.rounds`` steps, gated so its
    progress never exceeds the slowest active peer's by more than
    ``staleness``.  Membership events fire when the *progress floor*
    reaches their round index (the SSP global clock); joiners are
    seated at the floor.  Each applied step records one
    :class:`RoundRecord` whose duration is the worker's step time plus
    driver decode and wire latency.
    """
    staleness = int(scenario.staleness or 0)
    decode = model.decode_seconds_per_message
    latency = model.wire_latency_seconds
    quota = scenario.rounds
    active = set(schedule.start)
    progress: Dict[int, int] = {w: 0 for w in active}
    pending_events = list(schedule.events)
    # Rack shocks are drawn per (rack, step-index) so they stay seeded
    # and independent of heap pop order.
    shock_table = (
        shock_rng.random((quota, num_racks)) < scenario.straggler_rate
        if scenario.straggler_rate > 0.0 and scenario.straggler_stall > 0.0
        else None
    )

    def step_duration(w: int, step_index: int) -> Tuple[float, float]:
        load = 1.0 + scenario.diurnal_amplitude * math.sin(
            2.0 * math.pi * step_index / scenario.diurnal_period
        )
        load = max(_MIN_LOAD_FACTOR, load)
        base = float(
            np.exp(log_means[w] + log_stds[w] * step_rng.standard_normal())
        ) * load
        stall = 0.0
        if shock_table is not None:
            rack = w // scenario.rack_size
            if shock_table[step_index % quota, rack]:
                stall = scenario.straggler_stall
        return base, stall

    heap: List[Tuple[float, int, int]] = []
    seq = 0
    for w in sorted(active):
        heapq.heappush(heap, (0.0, seq, w))
        seq += 1
    blocked: Dict[int, float] = {}
    records: List[RoundRecord] = []
    worker_samples: List[Tuple[int, int, float, float]] = []
    bytes_total = 0
    straggler_total = 0.0
    now = 0.0
    applied = 0

    def floor() -> int:
        lagging = [progress[w] for w in active if progress[w] < quota]
        return min(lagging) if lagging else quota

    while heap or blocked:
        if not heap:
            f = floor()
            requeued = False
            for w in sorted(blocked):
                if w in active and progress[w] < quota and (
                    progress[w] - f <= staleness
                ):
                    heapq.heappush(heap, (blocked.pop(w), seq, w))
                    seq += 1
                    requeued = True
            if not requeued:
                break
            continue
        t, _, w = heapq.heappop(heap)
        now = max(now, t)
        if w not in active or progress[w] >= quota:
            continue
        if progress[w] - floor() > staleness:
            blocked[w] = now
            continue
        base, stall = step_duration(w, progress[w])
        duration = base + stall + decode + latency
        step_start = now
        progress[w] += 1
        applied += 1
        round_bytes = int(round(2 * model.bytes_per_message))
        bytes_total += round_bytes
        straggler_total += stall
        if w in sampled:
            worker_samples.append((applied - 1, w, step_start, base + stall))
        records.append(
            RoundRecord(
                round=applied - 1,
                start=step_start,
                duration=duration,
                active=len(active),
                bytes_sent=round_bytes,
                stalled_racks=(
                    (w // scenario.rack_size,) if stall > 0.0 else ()
                ),
                straggler_seconds=stall,
            )
        )
        finish = step_start + duration
        # Membership events fire as the progress floor crosses them.
        f = floor()
        while pending_events and pending_events[0].round <= f:
            event = pending_events.pop(0)
            active.difference_update(event.leaves)
            for j in event.joins:
                active.add(j)
                progress[j] = f
                heapq.heappush(heap, (finish, seq, j))
                seq += 1
        # A completed step raises the floor: release eligible workers.
        f = floor()
        for b in sorted(blocked):
            if b in active and progress[b] < quota and (
                progress[b] - f <= staleness
            ):
                heapq.heappush(heap, (blocked.pop(b), seq, b))
                seq += 1
        if progress[w] < quota:
            heapq.heappush(heap, (finish, seq, w))
            seq += 1
        now = max(now, finish) if not heap else now
    total = max([now] + [r.start + r.duration for r in records]) if records else 0.0
    return _finish(
        scenario, records, worker_samples, total, bytes_total,
        straggler_total, membership_changes, model.rounds_per_epoch,
    )


def _finish(
    scenario: FleetScenario,
    records: List[RoundRecord],
    worker_samples: List[Tuple[int, int, float, float]],
    total_seconds: float,
    bytes_total: int,
    straggler_total: float,
    membership_changes: int,
    rounds_per_epoch: float,
) -> FleetResult:
    durations = np.array([r.duration for r in records], dtype=np.float64)
    percentiles = {
        "p50": float(np.percentile(durations, 50)) if durations.size else 0.0,
        "p90": float(np.percentile(durations, 90)) if durations.size else 0.0,
        "p99": float(np.percentile(durations, 99)) if durations.size else 0.0,
    }
    return FleetResult(
        scenario=scenario,
        rounds=records,
        worker_samples=worker_samples,
        total_seconds=total_seconds,
        bytes_total=bytes_total,
        straggler_seconds=straggler_total,
        membership_changes=membership_changes,
        rounds_per_epoch=rounds_per_epoch,
        percentiles=percentiles,
    )
