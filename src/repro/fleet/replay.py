"""``repro replay`` — trace-driven fleet replay, end to end.

:func:`run_replay` glues the fleet pipeline together: read a recorded
``repro-trace/1`` flight (:func:`repro.telemetry.merge.read_trace`),
fit a per-worker :class:`~repro.fleet.costmodel.CostModel`, play a
scaled :class:`~repro.fleet.simulator.FleetScenario` in virtual time,
and emit

* a **synthetic trace** — schema-valid ``repro-trace/1`` JSONL
  (``fleet.round`` spans, ``fleet.bytes_sent`` counters,
  ``fleet.active_workers`` gauges, ``fleet.straggler`` events, and
  sampled ``fleet.worker.step`` spans) that ``repro trace`` renders and
  ``repro trace --validate`` accepts, and
* a **fleet summary** written to ``benchmarks/results/fleet_replay.txt``
  for the report generator.

Timestamps in the synthetic trace are *virtual* seconds from 0, not
wall-clock — the meta event says so in its ``attrs``.  Very long
simulations are strided down to :data:`MAX_TRACE_ROUNDS` emitted rounds
so the synthetic trace stays tractable; the stride is recorded in the
meta attrs rather than applied silently.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ..telemetry.merge import read_trace, write_trace
from ..telemetry.schema import SCHEMA, validate_trace
from .costmodel import CostModel, CostModelError, fit_cost_model
from .simulator import FleetResult, FleetScenario, simulate_fleet

__all__ = ["ReplayError", "MAX_TRACE_ROUNDS", "synthesize_trace", "run_replay"]

#: Emit at most this many round spans into the synthetic trace.
MAX_TRACE_ROUNDS = 5000


class ReplayError(RuntimeError):
    """A replay run could not be completed."""


def synthesize_trace(
    result: FleetResult, run_id: str = "fleet-replay"
) -> List[Dict[str, object]]:
    """Render a :class:`FleetResult` as ``repro-trace/1`` events."""
    pid = os.getpid()
    seq = 0
    stride = max(1, -(-len(result.rounds) // MAX_TRACE_ROUNDS))
    events: List[Dict[str, object]] = []

    def emit(event: Dict[str, object]) -> None:
        nonlocal seq
        event.setdefault("pid", pid)
        event["seq"] = seq
        event.setdefault("run", run_id)
        seq += 1
        events.append(event)

    emit(
        {
            "type": "meta",
            "ts": 0.0,
            "schema": SCHEMA,
            "source": "driver",
            "attrs": {
                "synthetic": True,
                "timebase": "virtual-seconds",
                "round_stride": stride,
                "workers": result.scenario.workers,
            },
        }
    )
    kept_rounds = set()
    last_active: Optional[int] = None
    for record in result.rounds[::stride]:
        kept_rounds.add(record.round)
        if record.active != last_active:
            emit(
                {
                    "type": "gauge",
                    "ts": record.start,
                    "name": "fleet.active_workers",
                    "value": record.active,
                    "round": record.round,
                }
            )
            last_active = record.active
        emit(
            {
                "type": "span",
                "ts": record.start,
                "name": "fleet.round",
                "dur": record.duration,
                "round": record.round,
                "phase": "replay",
            }
        )
        emit(
            {
                "type": "counter",
                "ts": record.start + record.duration,
                "name": "fleet.bytes_sent",
                "value": record.bytes_sent,
                "round": record.round,
            }
        )
        if record.stalled_racks:
            emit(
                {
                    "type": "event",
                    "ts": record.start,
                    "name": "fleet.straggler",
                    "round": record.round,
                    "attrs": {
                        "racks": list(record.stalled_racks),
                        "seconds": record.straggler_seconds,
                    },
                }
            )
    for round_index, worker, start, dur in result.worker_samples:
        if round_index not in kept_rounds:
            continue
        emit(
            {
                "type": "span",
                "ts": start,
                "name": "fleet.worker.step",
                "dur": dur,
                "round": round_index,
                "worker": worker,
                "phase": "replay",
            }
        )
    emit(
        {
            "type": "event",
            "ts": result.total_seconds,
            "name": "fleet.replay_done",
            "attrs": result.summary_dict(),
        }
    )
    return events


def _summary_text(
    trace_path: str, model: CostModel, result: FleetResult
) -> str:
    header = [
        f"source trace        {os.path.basename(trace_path)}",
        f"recorded workers    {model.num_workers}",
        f"fitted step mean    "
        f"{sum(c.mean for c in model.workers) / model.num_workers:.4f} s",
        f"decode/message      {model.decode_seconds_per_message * 1e3:.4f} ms",
        f"wire latency        {model.wire_latency_seconds * 1e3:.4f} ms",
        f"bytes/message       {model.bytes_per_message:.1f}",
    ]
    return "\n".join(header) + "\n\n" + result.summary() + "\n"


def run_replay(
    trace_path: str,
    scenario: FleetScenario,
    *,
    out_path: Optional[str] = None,
    results_dir: Optional[str] = None,
    run_id: str = "fleet-replay",
) -> Dict[str, object]:
    """Replay a recorded trace as a scaled fleet.

    Args:
        trace_path: recorded ``repro-trace/1`` JSONL (merged or
            single-process).
        scenario: the what-if fleet to simulate.
        out_path: where to write the synthetic trace (optional).
        results_dir: if given, write ``fleet_replay.txt`` there for the
            benchmark report.
        run_id: ``run`` context stamped on every synthetic event.

    Returns:
        ``{"model", "result", "summary", "trace_stats", "events"}`` —
        the fitted model, the simulation outcome, the summary text, the
        :func:`validate_trace` stats of the synthetic trace, and the
        synthetic event count.
    """
    try:
        recorded = read_trace(trace_path)
    except OSError as exc:
        raise ReplayError(f"cannot read trace {trace_path!r}: {exc}") from exc
    if not recorded:
        raise ReplayError(f"trace {trace_path!r} contains no events")
    try:
        model = fit_cost_model(recorded)
    except CostModelError as exc:
        raise ReplayError(str(exc)) from exc
    result = simulate_fleet(model, scenario)
    synthetic = synthesize_trace(result, run_id=run_id)
    stats = validate_trace(synthetic)
    if out_path:
        write_trace(synthetic, out_path)
    summary = _summary_text(trace_path, model, result)
    if results_dir:
        os.makedirs(results_dir, exist_ok=True)
        with open(
            os.path.join(results_dir, "fleet_replay.txt"),
            "w",
            encoding="utf-8",
        ) as fh:
            fh.write(summary)
    return {
        "model": model,
        "result": result,
        "summary": summary,
        "trace_stats": stats,
        "events": len(synthetic),
    }
