"""Per-worker cost models fitted from recorded ``repro-trace/1`` flights.

The flight recorder captures what a real run *did*: every
``worker.step`` span (compute + encode on that worker), every
``runtime.gather`` span (driver-side wire wait + decode), and the
``trainer.*`` accounting counters.  :func:`fit_cost_model` distils
those into a :class:`CostModel` — per-worker step-duration
distributions (lognormal, the standard shape for service times) plus
driver-side decode cost, per-message wire bytes, and a residual wire
latency — which the :mod:`repro.fleet.simulator` then samples to play
scaled what-if fleets in virtual time.

Assumptions and limits (also in ``docs/fleet.md``): step spans fold
compute and encode together; wire latency is the residual of the
gather span over the slowest step of the same round, so it absorbs
scheduling noise; nothing here models queueing at the driver beyond
the serial-decode pipeline the simulator reconstructs.  The model is
deliberately small and serialisable (:meth:`CostModel.to_dict`) so a
fit can be pinned as a golden fixture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["CostModelError", "WorkerCost", "CostModel", "fit_cost_model"]

#: Floor for log-space fitting — a span of exactly 0.0 s (clock
#: granularity) must not produce ``log(0)``.
_MIN_SECONDS = 1e-9


class CostModelError(ValueError):
    """The trace does not contain enough signal to fit a cost model."""


@dataclass(frozen=True)
class WorkerCost:
    """One worker's step-duration distribution (compute + encode).

    ``log_mean`` / ``log_std`` parameterise a lognormal fitted over the
    worker's ``worker.step`` span durations; ``mean`` / ``std`` are the
    plain moments kept for reporting and regression pinning.
    """

    worker: int
    samples: int
    mean: float
    std: float
    log_mean: float
    log_std: float

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw step durations (seconds) from the fitted lognormal."""
        draws = np.exp(
            self.log_mean + self.log_std * rng.standard_normal(size)
        )
        return np.maximum(draws, _MIN_SECONDS)


@dataclass(frozen=True)
class CostModel:
    """Everything the fleet simulator needs from one recorded run."""

    workers: Tuple[WorkerCost, ...]
    bytes_per_message: float
    raw_bytes_per_message: float
    decode_seconds_per_message: float
    wire_latency_seconds: float
    rounds_per_epoch: float

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def to_dict(self) -> Dict[str, object]:
        return {
            "workers": [
                {
                    "worker": c.worker,
                    "samples": c.samples,
                    "mean": c.mean,
                    "std": c.std,
                    "log_mean": c.log_mean,
                    "log_std": c.log_std,
                }
                for c in self.workers
            ],
            "bytes_per_message": self.bytes_per_message,
            "raw_bytes_per_message": self.raw_bytes_per_message,
            "decode_seconds_per_message": self.decode_seconds_per_message,
            "wire_latency_seconds": self.wire_latency_seconds,
            "rounds_per_epoch": self.rounds_per_epoch,
        }

    @classmethod
    def from_dict(cls, obj: Dict[str, object]) -> "CostModel":
        workers = tuple(
            WorkerCost(
                worker=int(c["worker"]),
                samples=int(c["samples"]),
                mean=float(c["mean"]),
                std=float(c["std"]),
                log_mean=float(c["log_mean"]),
                log_std=float(c["log_std"]),
            )
            for c in obj["workers"]
        )
        return cls(
            workers=workers,
            bytes_per_message=float(obj["bytes_per_message"]),
            raw_bytes_per_message=float(obj["raw_bytes_per_message"]),
            decode_seconds_per_message=float(
                obj["decode_seconds_per_message"]
            ),
            wire_latency_seconds=float(obj["wire_latency_seconds"]),
            rounds_per_epoch=float(obj["rounds_per_epoch"]),
        )


def _lognormal_fit(durations: List[float]) -> Tuple[int, float, float, float, float]:
    arr = np.maximum(np.asarray(durations, dtype=np.float64), _MIN_SECONDS)
    # Ragged epoch ends record near-instant no-batch probe steps; they
    # are not service times and would blow up the log-space variance
    # (and with it every simulated tail percentile).  Keep spans within
    # a generous factor of the median real step.
    median = float(np.median(arr))
    kept = arr[arr >= 0.05 * median]
    if kept.size == 0:
        kept = arr
    logs = np.log(kept)
    return (
        int(kept.size),
        float(kept.mean()),
        float(kept.std()),
        float(logs.mean()),
        float(logs.std()),
    )


def fit_cost_model(events: Iterable[Dict[str, object]]) -> CostModel:
    """Fit a :class:`CostModel` from parsed trace events.

    Requires ``worker.step`` spans (any backend records them).  Gather
    spans, ``trainer.*`` counters, and epoch context are used when
    present and degrade gracefully when absent (wire latency and byte
    rates fall back to 0 — the simulator still runs, it just models a
    free wire).
    """
    step_durs: Dict[int, List[float]] = {}
    round_max_step: Dict[Tuple[int, int], float] = {}
    gather_durs: Dict[Tuple[int, int], float] = {}
    epoch_rounds: Dict[int, set] = {}
    counters = {"bytes_sent": 0, "raw_bytes": 0, "num_messages": 0}
    decode_seconds = 0.0
    for event in events:
        etype = event.get("type")
        name = event.get("name")
        if etype == "span":
            dur = float(event.get("dur", 0.0))
            if name == "worker.step":
                worker = event.get("worker")
                if worker is None:
                    continue
                step_durs.setdefault(int(worker), []).append(dur)
                round_id = event.get("round")
                if round_id is not None:
                    key = (int(event.get("pid", 0)), int(round_id))
                    round_max_step[key] = max(
                        round_max_step.get(key, 0.0), dur
                    )
            elif name == "runtime.gather" and event.get("phase") == "step":
                round_id = event.get("round")
                if round_id is not None:
                    key = (0, int(round_id))
                    gather_durs[key] = max(
                        gather_durs.get(key, 0.0), dur
                    )
            elif name == "trainer.round":
                epoch = event.get("epoch")
                round_id = event.get("round")
                if epoch is not None and round_id is not None:
                    epoch_rounds.setdefault(int(epoch), set()).add(
                        int(round_id)
                    )
        elif etype == "counter" and name:
            stem = str(name)
            if stem.startswith("trainer."):
                field = stem[len("trainer."):]
                if field in counters:
                    counters[field] += int(event.get("value", 0))
        elif etype == "measure" and name == "trainer.decode_seconds":
            decode_seconds += float(event.get("value", 0.0))
    if not step_durs:
        raise CostModelError(
            "trace contains no worker.step spans; record one with "
            "`repro train --trace run.jsonl` first"
        )

    workers = tuple(
        WorkerCost(worker, *_lognormal_fit(durs))
        for worker, durs in sorted(step_durs.items())
    )

    num_messages = counters["num_messages"]
    bytes_per_message = (
        counters["bytes_sent"] / num_messages if num_messages else 0.0
    )
    raw_bytes_per_message = (
        counters["raw_bytes"] / num_messages if num_messages else 0.0
    )
    decode_per_message = (
        decode_seconds / num_messages if num_messages else 0.0
    )

    # Wire latency: residual of each step-phase gather over the slowest
    # worker.step of a matching round.  Worker spans land in per-worker
    # pid files, so rounds are matched by round id across all pids.
    max_step_by_round: Dict[int, float] = {}
    for (_, round_id), dur in round_max_step.items():
        max_step_by_round[round_id] = max(
            max_step_by_round.get(round_id, 0.0), dur
        )
    residuals = [
        max(0.0, dur - max_step_by_round.get(round_id, 0.0))
        for (_, round_id), dur in sorted(gather_durs.items())
    ]
    wire_latency = float(np.median(residuals)) if residuals else 0.0

    if epoch_rounds:
        rounds_per_epoch = float(
            np.mean([len(rounds) for rounds in epoch_rounds.values()])
        )
    else:
        total = max((len(d) for d in step_durs.values()), default=0)
        rounds_per_epoch = float(total)
    if not math.isfinite(rounds_per_epoch) or rounds_per_epoch <= 0:
        rounds_per_epoch = 1.0

    return CostModel(
        workers=workers,
        bytes_per_message=float(bytes_per_message),
        raw_bytes_per_message=float(raw_bytes_per_message),
        decode_seconds_per_message=float(decode_per_message),
        wire_latency_seconds=wire_latency,
        rounds_per_epoch=rounds_per_epoch,
    )
