"""Elastic + bounded-staleness training over the real runtime backends.

The :class:`FleetTrainer` generalises the synchronous runtime loop of
:class:`~repro.distributed.trainer.DistributedTrainer` along the two
axes the paper's fixed healthy cluster never exercises:

* **Elastic membership** — the full worker universe is booted once,
  and a :class:`~repro.fleet.membership.MembershipSchedule` detaches /
  re-attaches workers as logical overlay state while their processes
  stay up.  Every membership change triggers a deterministic
  re-partition of the training set over the survivors (``RESHARD``
  control frames; the full dataset ships once at bootstrap) and the
  aggregate is re-weighted by shard-size fractions that sum to 1.  A
  joiner first receives the driver's replica state (``SYNC``), so its
  model is bit-identical to the fleet's before its first step.

* **Bounded staleness** (``--stale N``) — the SSP gate of
  :mod:`repro.distributed.ssp_trainer` folded into the real backends:
  a seeded *virtual clock* (per-worker speed heterogeneity + per-batch
  jitter) decides which worker steps next, workers more than ``N``
  steps ahead of the slowest active worker are parked, and every
  server update is journalled and delivered to each worker just
  before its next step.  All scheduling decisions are driver-side and
  seeded, so the sequence of wire exchanges — and therefore the model
  — is bit-identical across ``sim`` / ``mp`` / ``tcp`` / ``aio``.

Both modes compose: a run can churn membership *and* gather with a
staleness bound.  See ``docs/fleet.md`` for semantics and caveats.
"""

from __future__ import annotations

import copy
import dataclasses
import heapq
import pickle
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import telemetry
from ..compression.base import GradientCompressor
from ..data.splits import partition_rows
from ..distributed.driver import Driver
from ..distributed.metrics import EpochRecord, TrainingHistory
from ..models.base import Model
from ..optim.optimizers import Optimizer
from ..optim.schedules import ConstantLR, LRSchedule
from ..telemetry.epoch import EpochAccumulator
from .membership import MembershipSchedule, shard_weights

__all__ = ["FleetConfig", "FleetTrainer"]

CompressorFactory = Callable[[], GradientCompressor]

#: Seed stride between reshard generations — a large prime (like the
#: per-worker strides elsewhere in the repo) so generation streams
#: never collide with worker-id streams.
_GENERATION_STRIDE = 104_729


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of an elastic / stale fleet run.

    Attributes:
        epochs: passes over the training set.
        batch_fraction: mini-batch size as a fraction of each worker's
            *current* shard (recomputed on every reshard).
        seed: master seed — partitioning, batch shuffling, reshard
            generations, and the stale-mode virtual clock all derive
            from it.
        backend: ``sim`` / ``mp`` / ``tcp`` / ``aio``; all four run the
            same driver-side decision sequence.
        staleness: ``None`` runs synchronous elastic rounds; an ``int``
            ``N >= 0`` runs bounded-async SSP rounds where a worker may
            be at most ``N`` steps ahead of the slowest active worker.
        evaluate_test: compute test loss on the driver replica after
            each epoch (untimed).
        method_label: name recorded in the history.
        compute_seconds_per_nnz: modelled compute charge per batch
            nonzero (see :class:`~repro.distributed.worker.Worker`).
        base_round_seconds: stale mode — modelled mean batch duration
            on a speed-1 worker (virtual clock units).
        heterogeneity: stale mode — per-worker speed multipliers drawn
            from ``1 + heterogeneity * U[0, 1)``, seeded.
    """

    epochs: int = 3
    batch_fraction: float = 0.1
    seed: int = 0
    backend: str = "sim"
    staleness: Optional[int] = None
    evaluate_test: bool = True
    method_label: Optional[str] = None
    compute_seconds_per_nnz: float = 0.0
    base_round_seconds: float = 1.0
    heterogeneity: float = 0.5

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if not 0.0 < self.batch_fraction <= 1.0:
            raise ValueError("batch_fraction must be in (0, 1]")
        if self.staleness is not None and self.staleness < 0:
            raise ValueError("staleness must be None or >= 0")
        if self.base_round_seconds <= 0:
            raise ValueError("base_round_seconds must be positive")
        if self.heterogeneity < 0:
            raise ValueError("heterogeneity must be non-negative")


class FleetTrainer:
    """Drives one elastic / stale training run over a worker fleet.

    Args:
        model: the objective (stateless; shared by all replicas).
        optimizer: the driver's optimizer instance (workers receive
            deep copies; all replicas stay bit-identical by applying
            the same decompressed updates).
        compressor_factory: one compressor per worker + one for the
            driver.
        network: wire cost model, charged by the ``sim`` transport.
        schedule: the elastic membership timeline (its ``num_workers``
            is the booted universe size).
        config: fleet knobs.
        lr_schedule: optional learning-rate schedule over aggregated
            rounds (stale mode: over applied updates).
        runtime: optional :class:`repro.runtime.RuntimeConfig`
            (supervision / fault knobs; ``backend`` is overridden).
    """

    def __init__(
        self,
        model: Model,
        optimizer: Optimizer,
        compressor_factory: CompressorFactory,
        network,
        schedule: MembershipSchedule,
        config: Optional[FleetConfig] = None,
        lr_schedule: Optional[LRSchedule] = None,
        runtime=None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.compressor_factory = compressor_factory
        self.network = network
        self.schedule = schedule
        self.config = config or FleetConfig()
        self.lr_schedule = lr_schedule or ConstantLR()
        self.runtime = runtime
        #: per-aggregated-round aggregation weights actually used,
        #: keyed by worker id — the elastic tests assert each round's
        #: weights sum to 1 and shift on every membership change.
        self.round_weights: List[Dict[int, float]] = []
        #: (round, active-id tuple) at every membership transition.
        self.membership_log: List[Tuple[int, Tuple[int, ...]]] = []

    # ------------------------------------------------------------------
    @property
    def theta(self) -> np.ndarray:
        """Final driver-replica parameters of the last train() call."""
        if not hasattr(self, "_theta"):
            raise RuntimeError("train() has not been run yet")
        return self._theta

    def _shard_seed(self, generation: int) -> int:
        return self.config.seed + _GENERATION_STRIDE * generation

    def _partition(
        self, num_rows: int, active: Tuple[int, ...], generation: int
    ) -> Dict[int, np.ndarray]:
        parts = partition_rows(
            num_rows, len(active), seed=self._shard_seed(generation)
        )
        return {w: parts[i] for i, w in enumerate(sorted(active))}

    def _batch_size(self, shard_rows: int) -> int:
        return max(
            1, int(round(shard_rows * self.config.batch_fraction))
        )

    # ------------------------------------------------------------------
    def _build_bootstraps(self, train_dataset, runtime_cfg):
        """One bootstrap per universe worker, full dataset on board.

        Initially inactive workers get a one-row placeholder shard —
        they are detached before the first round and always resharded
        (SYNC + RESHARD) before their first step.
        """
        from .. import sanitize
        from ..runtime import WorkerBootstrap

        cfg = self.config
        active0 = self.schedule.start
        shards = self._partition(train_dataset.num_rows, active0, 0)
        placeholder = np.array([0], dtype=np.int64)
        bootstraps = []
        for worker_id in range(self.schedule.num_workers):
            rows = shards.get(worker_id, placeholder)
            bootstraps.append(
                WorkerBootstrap(
                    worker_id=worker_id,
                    dataset=None,
                    model=self.model,
                    optimizer=copy.deepcopy(self.optimizer),
                    compressor=self.compressor_factory(),
                    batch_size=self._batch_size(rows.size),
                    seed=self._shard_seed(0),
                    compute_seconds_per_nnz=cfg.compute_seconds_per_nnz,
                    heartbeat_interval=(
                        runtime_cfg.supervision.heartbeat_interval
                    ),
                    heartbeat_jitter=runtime_cfg.supervision.heartbeat_jitter,
                    sanitize=bool(sanitize.enabled()),
                    trace_dir=telemetry.worker_trace_dir(),
                    run_id=telemetry.active_run_id(),
                    full_dataset=train_dataset,
                    shard_rows=rows,
                )
            )
        self._shard_sizes = {w: int(r.size) for w, r in shards.items()}
        return bootstraps

    # ------------------------------------------------------------------
    def train(self, train_dataset, test_dataset=None) -> TrainingHistory:
        """Run the configured epochs; returns the training history."""
        from ..runtime import RuntimeCluster, RuntimeConfig

        cfg = self.config
        runtime_cfg = self.runtime or RuntimeConfig()
        if runtime_cfg.backend != cfg.backend:
            runtime_cfg = dataclasses.replace(
                runtime_cfg, backend=cfg.backend
            )
        driver = Driver(self.compressor_factory(), self.model.num_parameters)
        method = cfg.method_label or getattr(
            driver.compressor, "name", type(driver.compressor).__name__
        )
        history = TrainingHistory(
            method=method,
            model=self.model.name,
            num_workers=self.schedule.num_workers,
        )
        theta = self.model.init_theta()
        self.optimizer.prepare(self.model.num_parameters)
        base_lr = self.optimizer.learning_rate
        bootstraps = self._build_bootstraps(train_dataset, runtime_cfg)
        self.round_weights = []
        self.membership_log = [(0, self.schedule.start)]
        self._applied_event_rounds: set = set()
        self._generation = 0
        self._num_rows = train_dataset.num_rows
        try:
            with RuntimeCluster(
                bootstraps, runtime_cfg, network=self.network
            ) as cluster:
                for worker_id in range(self.schedule.num_workers):
                    if worker_id not in self.schedule.start:
                        cluster.detach_worker(worker_id)
                telemetry.gauge(
                    "fleet.active_workers", len(self.schedule.start)
                )
                if cfg.staleness is None:
                    self._train_sync(
                        cluster, driver, theta, base_lr, history,
                        test_dataset,
                    )
                else:
                    self._train_stale(
                        cluster, driver, theta, base_lr, history,
                        test_dataset,
                    )
        finally:
            self.optimizer.learning_rate = base_lr
        self._theta = theta
        return history

    # ------------------------------------------------------------------
    # shared membership machinery
    # ------------------------------------------------------------------
    def _apply_event(
        self, cluster, event, theta: np.ndarray, round_index: int
    ) -> None:
        """Detach leavers, sync + attach joiners, reshard survivors."""
        for worker_id in event.leaves:
            cluster.detach_worker(worker_id)
        for worker_id in event.joins:
            cluster.attach_worker(worker_id)
            state = pickle.dumps(
                {
                    "round": round_index,
                    "theta": theta,
                    "optimizer": copy.deepcopy(self.optimizer),
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            cluster.sync_worker(worker_id, round_index, state)
        self._generation += 1
        self._reshard(cluster)
        active = tuple(cluster.member_workers)
        self.membership_log.append((round_index, active))
        telemetry.gauge("fleet.active_workers", len(active))

    def _reshard(self, cluster) -> None:
        """Deterministically re-partition over the current members."""
        generation = self._generation
        active = tuple(cluster.member_workers)
        shards = self._partition(self._num_rows, active, generation)
        seed = self._shard_seed(generation)
        assignments = {}
        for worker_id, rows in shards.items():
            assignments[worker_id] = pickle.dumps(
                {
                    "generation": generation,
                    "rows": rows,
                    "batch_size": self._batch_size(rows.size),
                    "seed": seed,
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        cluster.reshard(generation, assignments)
        self._shard_sizes = {w: int(r.size) for w, r in shards.items()}

    def _maybe_apply_event(
        self, cluster, theta: np.ndarray, round_index: int
    ) -> bool:
        event = self.schedule.event_at(round_index)
        if event is None or round_index in self._applied_event_rounds:
            return False
        self._applied_event_rounds.add(round_index)
        self._apply_event(cluster, event, theta, round_index)
        return True

    def _weights_for(self, worker_ids: List[int]) -> Dict[int, float]:
        """Aggregation weights over this round's contributors."""
        sizes = {w: self._shard_sizes[w] for w in worker_ids}
        return shard_weights(sizes)

    # ------------------------------------------------------------------
    # synchronous elastic rounds
    # ------------------------------------------------------------------
    def _train_sync(
        self, cluster, driver, theta, base_lr, history, test_dataset
    ) -> None:
        from ..core.serialization import serialize_message

        cfg = self.config
        agg_round = 0  # global aggregated-round index (schedule key)
        protocol_round = 0  # wire round id: unique per STEP
        for epoch in range(cfg.epochs):
            acc = EpochAccumulator(epoch)
            with telemetry.context(epoch=epoch), \
                    telemetry.span("trainer.epoch"):
                cluster.start_epoch(epoch)
                while True:
                    if self._maybe_apply_event(cluster, theta, agg_round):
                        # Fresh shards restart batch iteration; align
                        # them to this epoch's shuffle stream.
                        cluster.start_epoch(epoch)
                    wire_round = protocol_round
                    protocol_round += 1
                    with telemetry.context(round=wire_round), \
                            telemetry.span("trainer.round"):
                        t0 = time.perf_counter()
                        results = cluster.step(wire_round, base_lr)
                        t1 = time.perf_counter()
                        active = [
                            r for r in results.values() if r.has_batch
                        ]
                        if not active:
                            break
                        worker_busy = max(
                            r.compute_seconds + r.encode_seconds
                            for r in active
                        )
                        acc.add_seconds("compute", worker_busy)
                        acc.add_seconds(
                            "network", max(0.0, (t1 - t0) - worker_busy)
                        )
                        acc.add_seconds(
                            "encode",
                            sum(r.encode_seconds for r in active),
                        )
                        messages = [r.message for r in active]
                        acc.add_counts(
                            bytes_sent=sum(r.message_bytes for r in active),
                            raw_bytes=sum(m.raw_bytes for m in messages),
                            num_messages=len(messages),
                            gradient_nnz=sum(
                                r.gradient_nnz for r in active
                            ),
                        )
                        acc.add_loss(
                            sum(r.local_loss for r in active), len(active)
                        )

                        # Glue spans tile the round for critical-path
                        # attribution (see docs/observability.md).
                        weights = self._weights_for(
                            [r.worker_id for r in active]
                        )
                        self.round_weights.append(weights)
                        with telemetry.span(
                            "trainer.aggregate"
                        ) as agg_span:
                            driver_result = driver.aggregate(
                                messages,
                                [weights[r.worker_id] for r in active],
                            )
                            agg_span.set_attrs(
                                decode_s=driver_result.decode_seconds,
                                aggregate_s=(
                                    driver_result.aggregate_seconds
                                ),
                                encode_s=driver_result.encode_seconds,
                            )
                            acc.add_seconds(
                                "compute",
                                driver_result.decode_seconds
                                + driver_result.aggregate_seconds
                                + driver_result.encode_seconds,
                            )
                            acc.add_seconds(
                                "decode", driver_result.decode_seconds
                            )
                            acc.add_seconds(
                                "encode", driver_result.encode_seconds
                            )
                            lr = base_lr * self.lr_schedule(agg_round)
                            update_bytes = serialize_message(
                                driver_result.broadcast_message
                            )
                        t2 = time.perf_counter()
                        cluster.broadcast(
                            wire_round, lr, update_bytes,
                            message=driver_result.broadcast_message,
                        )
                        acc.add_seconds(
                            "network", time.perf_counter() - t2
                        )

                        with telemetry.span("trainer.apply"):
                            self.optimizer.learning_rate = lr
                            t3 = time.perf_counter()
                            if driver_result.keys.size:
                                self.optimizer.step(
                                    theta,
                                    driver_result.keys,
                                    driver_result.values,
                                )
                            acc.add_seconds(
                                "compute", time.perf_counter() - t3
                            )
                        agg_round += 1

            record = EpochRecord(test_loss=None, **acc.record_fields())
            if cfg.evaluate_test and test_dataset is not None:
                record.test_loss = self.model.full_loss(
                    test_dataset, theta
                )
            record.dropped_workers = dict(cluster.dropped_workers)
            history.append(record)

    # ------------------------------------------------------------------
    # bounded-staleness rounds (SSP over the real backends)
    # ------------------------------------------------------------------
    def _train_stale(
        self, cluster, driver, theta, base_lr, history, test_dataset
    ) -> None:
        from ..core.serialization import serialize_message

        cfg = self.config
        universe = self.schedule.num_workers
        staleness = int(cfg.staleness)
        # Seeded virtual clock: per-worker speed heterogeneity plus a
        # per-worker jitter stream.  Pure driver-side state — nothing
        # here depends on wall-clock or wire arrival order.
        speeds = 1.0 + cfg.heterogeneity * np.random.default_rng(
            [cfg.seed, 17]
        ).random(universe)
        jitter = [
            np.random.default_rng([cfg.seed, w, 23])
            for w in range(universe)
        ]

        def duration(worker_id: int) -> float:
            spread = 0.75 + 0.5 * float(jitter[worker_id].random())
            return cfg.base_round_seconds * float(
                speeds[worker_id]
            ) * spread

        update_log: List[Tuple[int, float, bytes]] = []
        delivered = {w: 0 for w in range(universe)}
        progress = {w: 0 for w in range(universe)}
        applied_updates = 0  # schedule key + lr index in stale mode
        protocol_round = 0
        push_seq = 0
        now = 0.0

        def quota(worker_id: int) -> int:
            rows = self._shard_sizes[worker_id]
            return -(-rows // self._batch_size(rows))

        def flush_updates(worker_id: int) -> int:
            sent = 0
            for entry_round, entry_lr, entry_bytes in (
                update_log[delivered[worker_id]:]
            ):
                cluster.broadcast(
                    entry_round, entry_lr, entry_bytes,
                    workers=[worker_id],
                )
                sent += 1
            delivered[worker_id] = len(update_log)
            return sent

        for epoch in range(cfg.epochs):
            acc = EpochAccumulator(epoch)
            with telemetry.context(epoch=epoch), \
                    telemetry.span("trainer.epoch"):
                cluster.start_epoch(epoch)
                steps_done = {w: 0 for w in cluster.member_workers}
                heap: List[Tuple[float, int, int]] = []
                blocked: List[int] = []
                for worker_id in cluster.member_workers:
                    heapq.heappush(
                        heap, (now + duration(worker_id), push_seq, worker_id)
                    )
                    push_seq += 1

                while heap or blocked:
                    if not heap:
                        # Every in-flight worker finished or was
                        # skipped; gated workers are the only runnable
                        # ones left — requeue them at the current
                        # virtual time (the gate re-evaluates on pop).
                        members = set(cluster.member_workers)
                        requeued = False
                        for blocked_id in blocked:
                            if blocked_id in members and (
                                steps_done.get(blocked_id, 0)
                                < quota(blocked_id)
                            ):
                                heapq.heappush(
                                    heap, (now, push_seq, blocked_id)
                                )
                                push_seq += 1
                                requeued = True
                        blocked = []
                        if not requeued:
                            break
                    if self._maybe_apply_event(
                        cluster, theta, applied_updates
                    ):
                        members = set(cluster.member_workers)
                        # Joiners: synced replicas, fresh shards, and a
                        # clock seat at the current virtual time.  The
                        # update journal before their sync round is
                        # already folded into the synced state.
                        floor = min(
                            (progress[w] for w in members), default=0
                        )
                        for worker_id in sorted(members):
                            if worker_id not in steps_done:
                                steps_done[worker_id] = 0
                                progress[worker_id] = floor
                                delivered[worker_id] = len(update_log)
                                heapq.heappush(
                                    heap,
                                    (
                                        now + duration(worker_id),
                                        push_seq,
                                        worker_id,
                                    ),
                                )
                                push_seq += 1
                        cluster.start_epoch(epoch)
                        for worker_id in list(steps_done):
                            if worker_id not in members:
                                steps_done.pop(worker_id)

                    now, _, worker_id = heapq.heappop(heap)
                    members = set(cluster.member_workers)
                    if worker_id not in members:
                        continue  # left while its batch was in flight
                    if steps_done[worker_id] >= quota(worker_id):
                        continue  # re-queued past its epoch quota
                    lagging = [
                        progress[w] for w in members
                        if steps_done.get(w, 0) < quota(w)
                    ]
                    if lagging and (
                        progress[worker_id] - min(lagging) > staleness
                    ):
                        blocked.append(worker_id)
                        continue

                    flush_updates(worker_id)
                    wire_round = protocol_round
                    protocol_round += 1
                    with telemetry.context(round=wire_round), \
                            telemetry.span("trainer.round"):
                        t0 = time.perf_counter()
                        results = cluster.step(
                            wire_round, base_lr, workers=[worker_id]
                        )
                        t1 = time.perf_counter()
                        result = results.get(worker_id)
                        steps_done[worker_id] += 1
                        progress[worker_id] += 1
                        if result is not None and result.has_batch:
                            busy = (
                                result.compute_seconds
                                + result.encode_seconds
                            )
                            acc.add_seconds("compute", busy)
                            acc.add_seconds(
                                "network", max(0.0, (t1 - t0) - busy)
                            )
                            acc.add_seconds(
                                "encode", result.encode_seconds
                            )
                            acc.add_counts(
                                bytes_sent=result.message_bytes,
                                raw_bytes=result.message.raw_bytes,
                                num_messages=1,
                                gradient_nnz=result.gradient_nnz,
                            )
                            acc.add_loss(result.local_loss, 1)
                            # SSP semantics: each gradient is applied
                            # in full as it lands (weight 1), exactly
                            # like the simulated ssp_trainer.
                            with telemetry.span(
                                "trainer.aggregate"
                            ) as agg_span:
                                driver_result = driver.aggregate(
                                    [result.message], [1.0]
                                )
                                agg_span.set_attrs(
                                    decode_s=driver_result.decode_seconds,
                                    aggregate_s=(
                                        driver_result.aggregate_seconds
                                    ),
                                    encode_s=(
                                        driver_result.encode_seconds
                                    ),
                                )
                                acc.add_seconds(
                                    "compute",
                                    driver_result.decode_seconds
                                    + driver_result.aggregate_seconds
                                    + driver_result.encode_seconds,
                                )
                                acc.add_seconds(
                                    "decode",
                                    driver_result.decode_seconds,
                                )
                                acc.add_seconds(
                                    "encode",
                                    driver_result.encode_seconds,
                                )
                                lr = base_lr * self.lr_schedule(
                                    applied_updates
                                )
                            with telemetry.span("trainer.apply"):
                                self.optimizer.learning_rate = lr
                                t2 = time.perf_counter()
                                if driver_result.keys.size:
                                    self.optimizer.step(
                                        theta,
                                        driver_result.keys,
                                        driver_result.values,
                                    )
                                acc.add_seconds(
                                    "compute", time.perf_counter() - t2
                                )
                            update_log.append(
                                (
                                    wire_round,
                                    lr,
                                    serialize_message(
                                        driver_result.broadcast_message
                                    ),
                                )
                            )
                            applied_updates += 1

                    if steps_done[worker_id] < quota(worker_id):
                        heapq.heappush(
                            heap,
                            (now + duration(worker_id), push_seq, worker_id),
                        )
                        push_seq += 1
                    # This step may have raised the slowest lagging
                    # worker's progress — release gated workers whose
                    # bound now holds.
                    if blocked:
                        members = set(cluster.member_workers)
                        lagging = [
                            progress[w] for w in members
                            if steps_done.get(w, 0) < quota(w)
                        ]
                        floor = min(lagging) if lagging else 0
                        still: List[int] = []
                        for blocked_id in blocked:
                            if blocked_id not in members:
                                continue
                            if progress[blocked_id] - floor <= staleness:
                                heapq.heappush(
                                    heap, (now, push_seq, blocked_id)
                                )
                                push_seq += 1
                            else:
                                still.append(blocked_id)
                        blocked = still

            record = EpochRecord(test_loss=None, **acc.record_fields())
            if cfg.evaluate_test and test_dataset is not None:
                record.test_loss = self.model.full_loss(
                    test_dataset, theta
                )
            record.dropped_workers = dict(cluster.dropped_workers)
            history.append(record)

        # Converge the replicas: every member receives the tail of the
        # update journal, so worker state ends consistent with the
        # driver theta the history reports.
        for worker_id in cluster.member_workers:
            flush_updates(worker_id)
