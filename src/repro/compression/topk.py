"""Top-k / threshold truncation compressor.

The simplest lossy scheme discussed in §1.1: drop all but the
largest-magnitude entries.  Dropped mass is optionally accumulated and
re-injected later (error feedback), without which the method is "too
aggressive ... to make ML algorithm converged" — exactly the behaviour
our convergence benches surface when feedback is disabled.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .base import (
    BYTES_PER_RAW_KEY,
    BYTES_PER_RAW_VALUE,
    CompressedGradient,
    GradientCompressor,
    register_compressor,
    validate_sparse_gradient,
)

__all__ = ["TopKCompressor"]


@register_compressor("topk")
class TopKCompressor(GradientCompressor):
    """Keep the ``ratio`` largest-magnitude entries of each gradient.

    Args:
        ratio: fraction of nonzero entries to keep (0 < ratio <= 1).
        error_feedback: accumulate dropped values and add them to the
            next gradient (default True).
    """

    name = "topk"

    def __init__(self, ratio: float = 0.1, error_feedback: bool = True) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = float(ratio)
        self.error_feedback = bool(error_feedback)
        self._residual: Dict[int, float] = {}

    def reset(self) -> None:
        self._residual.clear()

    def compress(
        self, keys: np.ndarray, values: np.ndarray, dimension: int
    ) -> CompressedGradient:
        keys, values = validate_sparse_gradient(keys, values, dimension)
        if keys.size == 0:
            return CompressedGradient(
                payload=(keys, values),
                num_bytes=0,
                dimension=dimension,
                nnz=0,
            )
        adjusted = values.copy()
        if self.error_feedback and self._residual:
            for i, key in enumerate(keys):
                carried = self._residual.get(int(key))
                if carried is not None:
                    adjusted[i] += carried
        k = max(1, int(round(keys.size * self.ratio)))
        if k >= keys.size:
            kept = np.arange(keys.size)
        else:
            kept = np.sort(np.argpartition(np.abs(adjusted), -k)[-k:])
        kept_keys = keys[kept]
        kept_values = adjusted[kept]
        if self.error_feedback:
            dropped = np.setdiff1d(np.arange(keys.size), kept, assume_unique=True)
            for key in kept_keys.tolist():
                self._residual.pop(key, None)
            for idx in dropped.tolist():
                self._residual[int(keys[idx])] = float(adjusted[idx])
        num_bytes = kept_keys.size * (BYTES_PER_RAW_KEY + BYTES_PER_RAW_VALUE)
        return CompressedGradient(
            payload=(kept_keys, kept_values),
            num_bytes=num_bytes,
            dimension=dimension,
            nnz=keys.size,
            breakdown={
                "keys": kept_keys.size * BYTES_PER_RAW_KEY,
                "values": kept_keys.size * BYTES_PER_RAW_VALUE,
            },
        )

    def decompress(self, message: CompressedGradient) -> Tuple[np.ndarray, np.ndarray]:
        kept_keys, kept_values = message.payload
        return kept_keys, kept_values

    def __repr__(self) -> str:
        return f"TopKCompressor(ratio={self.ratio}, error_feedback={self.error_feedback})"
