"""Generic error-feedback wrapper (EF-SGD, Karimireddy et al. 2019).

Wraps *any* lossy gradient compressor: the difference between what was
meant and what the receiver will decode is remembered per dimension and
added to the next gradient before compression.  This turns biased
compressors into asymptotically unbiased ones and is the standard
companion of aggressive quantization.

Relevant to SketchML because the MinMaxSketch error is *systematically*
one-sided (decay): error feedback re-injects exactly the decayed mass,
so a wrapped SketchML at a small bucket count converges like a larger
one — an extension the paper's future-work direction (compensating
vanishing gradients) points at.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .base import CompressedGradient, GradientCompressor, validate_sparse_gradient

__all__ = ["ErrorFeedbackCompressor"]


class ErrorFeedbackCompressor(GradientCompressor):
    """Residual-carrying wrapper around a lossy compressor.

    Args:
        inner: the compressor to wrap (any :class:`GradientCompressor`).
        decay: multiplier on carried residuals (1.0 = classic EF;
            slightly below 1 damps stale residuals).

    The wrapper is stateful per instance — use one per worker, exactly
    like other stateful codecs in this library.
    """

    name = "error-feedback"

    def __init__(self, inner: GradientCompressor, decay: float = 1.0) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.inner = inner
        self.decay = float(decay)
        self._residual: Dict[int, float] = {}

    def reset(self) -> None:
        self._residual.clear()
        self.inner.reset()

    def compress(
        self, keys: np.ndarray, values: np.ndarray, dimension: int
    ) -> CompressedGradient:
        keys, values = validate_sparse_gradient(keys, values, dimension)
        if self._residual:
            # Merge carried residuals into this gradient (union of keys).
            residual_keys = np.fromiter(
                self._residual.keys(), dtype=np.int64, count=len(self._residual)
            )
            residual_vals = np.fromiter(
                self._residual.values(), dtype=np.float64, count=len(self._residual)
            )
            all_keys = np.concatenate([keys, residual_keys])
            all_vals = np.concatenate([values, self.decay * residual_vals])
            keys, inverse = np.unique(all_keys, return_inverse=True)
            values = np.zeros(keys.size)
            np.add.at(values, inverse, all_vals)
            nonzero = values != 0.0
            keys, values = keys[nonzero], values[nonzero]
        message = self.inner.compress(keys, values, dimension)
        decoded_keys, decoded_values = self.inner.decompress(message)
        # New residual: intended minus decodable.
        decoded = dict(zip(decoded_keys.tolist(), decoded_values.tolist()))
        self._residual = {}
        for key, value in zip(keys.tolist(), values.tolist()):
            r = value - decoded.get(key, 0.0)
            if r != 0.0:
                self._residual[key] = r
        return message

    def decompress(self, message: CompressedGradient) -> Tuple[np.ndarray, np.ndarray]:
        return self.inner.decompress(message)

    @property
    def residual_l2(self) -> float:
        """Norm of the currently carried residual (diagnostics)."""
        if not self._residual:
            return 0.0
        return float(np.linalg.norm(list(self._residual.values())))

    def __repr__(self) -> str:
        return f"ErrorFeedbackCompressor(inner={self.inner!r}, decay={self.decay})"
