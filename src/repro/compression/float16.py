"""Half-precision value compressor.

A simple low-precision baseline between Adam-float (Table 4) and the
quantizers: values travel as IEEE float16 (2 bytes), keys uncompressed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import (
    BYTES_PER_RAW_KEY,
    CompressedGradient,
    GradientCompressor,
    register_compressor,
    validate_sparse_gradient,
)

__all__ = ["Float16Compressor"]


@register_compressor("float16")
class Float16Compressor(GradientCompressor):
    """Cast values to float16 for transfer; keys stay 4-byte ints."""

    name = "float16"

    def compress(
        self, keys: np.ndarray, values: np.ndarray, dimension: int
    ) -> CompressedGradient:
        keys, values = validate_sparse_gradient(keys, values, dimension)
        stored = values.astype(np.float16)
        num_bytes = keys.size * (BYTES_PER_RAW_KEY + 2)
        return CompressedGradient(
            payload=(keys.copy(), stored),
            num_bytes=num_bytes,
            dimension=dimension,
            nnz=keys.size,
            breakdown={"keys": keys.size * BYTES_PER_RAW_KEY, "values": keys.size * 2},
        )

    def decompress(self, message: CompressedGradient) -> Tuple[np.ndarray, np.ndarray]:
        keys, stored = message.payload
        return keys, stored.astype(np.float64)
