"""ZipML-style uniform fixed-point quantization (Zhang et al. 2016).

The paper's main lossy competitor: gradient values are linearly mapped
onto ``2**bits`` equally spaced levels spanning the value range.  Keys
travel uncompressed (4 bytes each) — the paper stresses that ZipML
"is unable to compress the gradient keys".

Because the levels are *equi-width* while real gradients concentrate
near zero (Fig. 4), small gradients round to the zero level and training
stalls as the model approaches the optimum — the failure mode Figures
10(b,f) and 14(b) exhibit.  We implement both deterministic
nearest-level rounding and the unbiased stochastic rounding from the
ZipML/QSGD line of work.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .base import (
    BYTES_PER_RAW_KEY,
    CompressedGradient,
    GradientCompressor,
    register_compressor,
    validate_sparse_gradient,
)

__all__ = ["ZipMLCompressor"]

_METADATA_BYTES = 16  # two float64: low, high


@register_compressor("zipml")
class ZipMLCompressor(GradientCompressor):
    """Uniform fixed-point quantizer over the value range.

    Args:
        bits: quantization width; 16 is the paper's tuned setting, 8 the
            aggressive variant of Table 4 ("converges badly").
        stochastic: unbiased stochastic rounding instead of nearest.
        seed: PRNG seed for stochastic rounding.

    Example:
        >>> import numpy as np
        >>> comp = ZipMLCompressor(bits=16)
        >>> keys = np.arange(10)
        >>> values = np.linspace(-1, 1, 10)
        >>> _, out, msg = comp.roundtrip(keys, values, 10)
        >>> bool(np.allclose(out, values, atol=1e-4))
        True
    """

    name = "zipml"

    def __init__(
        self, bits: int = 16, stochastic: bool = False, seed: Optional[int] = None
    ) -> None:
        if bits not in (8, 16):
            raise ValueError("bits must be 8 or 16 (1 or 2 bytes per value)")
        self.bits = int(bits)
        self.stochastic = bool(stochastic)
        self._rng = np.random.default_rng(seed)
        self._levels = (1 << bits) - 1
        self._dtype = np.uint8 if bits == 8 else np.uint16

    def compress(
        self, keys: np.ndarray, values: np.ndarray, dimension: int
    ) -> CompressedGradient:
        keys, values = validate_sparse_gradient(keys, values, dimension)
        value_bytes_each = self.bits // 8
        if keys.size == 0:
            return CompressedGradient(
                payload=(keys, np.empty(0, dtype=self._dtype), 0.0, 0.0),
                num_bytes=_METADATA_BYTES,
                dimension=dimension,
                nnz=0,
                breakdown={"metadata": _METADATA_BYTES},
            )
        low = float(values.min())
        high = float(values.max())
        span = high - low
        if span <= 0:
            codes = np.zeros(values.size, dtype=self._dtype)
        else:
            scaled = (values - low) / span * self._levels
            if self.stochastic:
                floor = np.floor(scaled)
                frac = scaled - floor
                codes = floor + (self._rng.random(values.size) < frac)
            else:
                codes = np.round(scaled)
            codes = np.clip(codes, 0, self._levels).astype(self._dtype)
        num_bytes = (
            keys.size * (BYTES_PER_RAW_KEY + value_bytes_each) + _METADATA_BYTES
        )
        return CompressedGradient(
            payload=(keys.copy(), codes, low, high),
            num_bytes=num_bytes,
            dimension=dimension,
            nnz=keys.size,
            breakdown={
                "keys": keys.size * BYTES_PER_RAW_KEY,
                "values": keys.size * value_bytes_each,
                "metadata": _METADATA_BYTES,
            },
        )

    def decompress(self, message: CompressedGradient) -> Tuple[np.ndarray, np.ndarray]:
        keys, codes, low, high = message.payload
        if codes.size == 0:
            return keys, np.empty(0, dtype=np.float64)
        span = high - low
        values = low + codes.astype(np.float64) / self._levels * span
        return keys, values

    def __repr__(self) -> str:
        return f"ZipMLCompressor(bits={self.bits}, stochastic={self.stochastic})"
