"""Heavy-hitter hybrid SketchML — an extension beyond the paper.

Observation: the decoded error of the sketch pipeline is largest for
the biggest-magnitude gradient entries (the top buckets are widest),
yet those few entries carry most of the update's energy.  This
extension sends the top ``heavy_fraction`` of entries by magnitude
*exactly* (delta-binary keys + raw float values) and pushes only the
long near-zero tail through the regular quantile + MinMaxSketch path.

The cost is ~12 bytes for each heavy pair instead of ~2; because the
heavy set is small, total size barely moves while the worst-case decode
error drops sharply — measured in the ablation bench
``benchmarks/test_ablation_hybrid.py``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.compressor import SketchMLCompressor
from ..core.config import SketchMLConfig
from ..core.delta_encoding import decode_keys, encode_keys
from .base import (
    BYTES_PER_RAW_VALUE,
    CompressedGradient,
    GradientCompressor,
    register_compressor,
    validate_sparse_gradient,
)

__all__ = ["HeavyHitterSketchMLCompressor"]


@register_compressor("sketchml-hybrid")
class HeavyHitterSketchMLCompressor(GradientCompressor):
    """Exact heavy coordinates + sketched tail.

    Args:
        heavy_fraction: fraction of entries (by magnitude rank) sent
            exactly (default 1%).
        config: config for the tail's SketchML pipeline.
    """

    name = "sketchml-hybrid"

    def __init__(
        self,
        heavy_fraction: float = 0.01,
        config: Optional[SketchMLConfig] = None,
    ) -> None:
        if not 0.0 <= heavy_fraction <= 1.0:
            raise ValueError("heavy_fraction must be in [0, 1]")
        self.heavy_fraction = float(heavy_fraction)
        self._tail = SketchMLCompressor(config or SketchMLConfig())

    def compress(
        self, keys: np.ndarray, values: np.ndarray, dimension: int
    ) -> CompressedGradient:
        keys, values = validate_sparse_gradient(keys, values, dimension)
        if keys.size == 0:
            tail_message = self._tail.compress(keys, values, dimension)
            return CompressedGradient(
                payload=(b"", np.empty(0), tail_message),
                num_bytes=tail_message.num_bytes + 8,
                dimension=dimension,
                nnz=0,
            )
        num_heavy = int(round(keys.size * self.heavy_fraction))
        if num_heavy > 0:
            heavy_pos = np.sort(
                np.argpartition(np.abs(values), -num_heavy)[-num_heavy:]
            )
        else:
            heavy_pos = np.empty(0, dtype=np.int64)
        tail_mask = np.ones(keys.size, dtype=bool)
        tail_mask[heavy_pos] = False

        heavy_blob = encode_keys(keys[heavy_pos])
        heavy_values = values[heavy_pos].copy()
        tail_message = self._tail.compress(
            keys[tail_mask], values[tail_mask], dimension
        )
        heavy_bytes = len(heavy_blob) + heavy_values.size * BYTES_PER_RAW_VALUE
        breakdown = dict(tail_message.breakdown)
        breakdown["heavy"] = heavy_bytes + 8
        return CompressedGradient(
            payload=(heavy_blob, heavy_values, tail_message),
            num_bytes=tail_message.num_bytes + heavy_bytes + 8,
            dimension=dimension,
            nnz=keys.size,
            breakdown=breakdown,
        )

    def decompress(self, message: CompressedGradient) -> Tuple[np.ndarray, np.ndarray]:
        heavy_blob, heavy_values, tail_message = message.payload
        tail_keys, tail_values = self._tail.decompress(tail_message)
        if not heavy_blob:
            return tail_keys, tail_values
        heavy_keys = decode_keys(heavy_blob)
        keys = np.concatenate([heavy_keys, tail_keys])
        values = np.concatenate([heavy_values, tail_values])
        order = np.argsort(keys, kind="stable")
        return keys[order], values[order]

    def __repr__(self) -> str:
        return (
            f"HeavyHitterSketchMLCompressor(heavy_fraction={self.heavy_fraction})"
        )
