"""Identity compressor: the uncompressed 'Adam' baseline.

Transfers raw key–value pairs at the paper's accounting of 4 bytes per
key plus 8 bytes per double value (§3.5's ``12d``), or 4-byte float
values for the ``Adam-float`` row of Table 4.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import (
    BYTES_PER_RAW_KEY,
    CompressedGradient,
    GradientCompressor,
    register_compressor,
    validate_sparse_gradient,
)

__all__ = ["IdentityCompressor"]


@register_compressor("identity")
class IdentityCompressor(GradientCompressor):
    """No-op codec with honest wire-size accounting.

    Args:
        value_bytes: 8 for double precision (paper default), 4 for the
            ``Adam-float`` variant of Table 4.
    """

    name = "identity"

    def __init__(self, value_bytes: int = 8) -> None:
        if value_bytes not in (4, 8):
            raise ValueError("value_bytes must be 4 (float) or 8 (double)")
        self.value_bytes = int(value_bytes)

    def compress(
        self, keys: np.ndarray, values: np.ndarray, dimension: int
    ) -> CompressedGradient:
        keys, values = validate_sparse_gradient(keys, values, dimension)
        if self.value_bytes == 4:
            stored = values.astype(np.float32)
        else:
            stored = values.copy()
        num_bytes = keys.size * (BYTES_PER_RAW_KEY + self.value_bytes)
        return CompressedGradient(
            payload=(keys.copy(), stored),
            num_bytes=num_bytes,
            dimension=dimension,
            nnz=keys.size,
            breakdown={
                "keys": keys.size * BYTES_PER_RAW_KEY,
                "values": keys.size * self.value_bytes,
            },
        )

    def decompress(self, message: CompressedGradient) -> Tuple[np.ndarray, np.ndarray]:
        keys, stored = message.payload
        return keys, stored.astype(np.float64)

    def __repr__(self) -> str:
        return f"IdentityCompressor(value_bytes={self.value_bytes})"
