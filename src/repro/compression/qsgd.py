"""QSGD: randomized quantization (Alistarh et al., NeurIPS 2017).

The paper cites QSGD ([5]) as the theory behind bounded-error
quantization and compares its variance bound against quantile-bucket
quantification in Appendix A.1.  QSGD normalises a gradient by its
L2 norm, quantises each magnitude onto ``s`` uniform levels in [0, 1]
with *unbiased stochastic rounding*, and transmits
``(norm, signs, levels)``.

Included both as a further baseline for the convergence benches and as
the empirical counterpart of Corollary A.3's bound comparison.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .base import (
    BYTES_PER_RAW_KEY,
    CompressedGradient,
    GradientCompressor,
    register_compressor,
    validate_sparse_gradient,
)

__all__ = ["QSGDCompressor"]

_METADATA_BYTES = 8  # the float64 norm


@register_compressor("qsgd")
class QSGDCompressor(GradientCompressor):
    """Unbiased stochastic uniform quantizer over normalised magnitudes.

    Args:
        num_levels: quantization levels ``s`` (255 → 1 byte/value).
        seed: PRNG seed for the stochastic rounding.

    The estimator is unbiased: ``E[decode(encode(g))] = g``; its
    variance obeys the ``min(d/s^2, sqrt(d)/s) ||g||^2`` bound that
    Corollary A.3 compares against.

    Example:
        >>> import numpy as np
        >>> comp = QSGDCompressor(num_levels=255, seed=0)
        >>> keys = np.arange(100)
        >>> values = np.linspace(-1, 1, 100)
        >>> _, decoded, msg = comp.roundtrip(keys, values, 100)
        >>> bool(np.all(np.sign(decoded) * np.sign(values) >= 0))
        True
        >>> msg.compression_rate > 2
        True
    """

    name = "qsgd"

    def __init__(self, num_levels: int = 255, seed: Optional[int] = None) -> None:
        if not 1 <= num_levels <= 65_535:
            raise ValueError("num_levels must be in [1, 65535]")
        self.num_levels = int(num_levels)
        self._rng = np.random.default_rng(seed)
        self._dtype = np.uint8 if num_levels <= 255 else np.uint16

    def compress(
        self, keys: np.ndarray, values: np.ndarray, dimension: int
    ) -> CompressedGradient:
        keys, values = validate_sparse_gradient(keys, values, dimension)
        level_bytes = 1 if self.num_levels <= 255 else 2
        sign_bytes = (keys.size + 7) // 8
        if keys.size == 0:
            return CompressedGradient(
                payload=(keys, np.empty(0, dtype=self._dtype), np.empty(0, bool), 0.0),
                num_bytes=_METADATA_BYTES,
                dimension=dimension,
                nnz=0,
            )
        norm = float(np.linalg.norm(values))
        if norm == 0.0:
            levels = np.zeros(keys.size, dtype=self._dtype)
            positive = np.ones(keys.size, dtype=bool)
        else:
            scaled = np.abs(values) / norm * self.num_levels
            floor = np.floor(scaled)
            levels = floor + (self._rng.random(keys.size) < (scaled - floor))
            levels = np.clip(levels, 0, self.num_levels).astype(self._dtype)
            positive = values >= 0
        num_bytes = (
            keys.size * (BYTES_PER_RAW_KEY + level_bytes)
            + sign_bytes
            + _METADATA_BYTES
        )
        return CompressedGradient(
            payload=(keys.copy(), levels, positive, norm),
            num_bytes=num_bytes,
            dimension=dimension,
            nnz=keys.size,
            breakdown={
                "keys": keys.size * BYTES_PER_RAW_KEY,
                "values": keys.size * level_bytes + sign_bytes,
                "metadata": _METADATA_BYTES,
            },
        )

    def decompress(self, message: CompressedGradient) -> Tuple[np.ndarray, np.ndarray]:
        keys, levels, positive, norm = message.payload
        if keys.size == 0:
            return keys, np.empty(0, dtype=np.float64)
        magnitudes = levels.astype(np.float64) / self.num_levels * norm
        return keys, np.where(positive, magnitudes, -magnitudes)

    def __repr__(self) -> str:
        return f"QSGDCompressor(num_levels={self.num_levels})"
