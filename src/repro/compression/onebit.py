"""1-bit SGD with error feedback (Seide et al., INTERSPEECH 2014).

The "threshold based truncation" lossy method of §1.1/§5: each value is
reduced to its sign plus a shared per-sign magnitude (the mean of the
values carrying that sign), with the residual quantization error fed
back into the next gradient so the bias does not accumulate.  The paper
calls this "too aggressive ... to get converged" — our convergence
benches let users reproduce that comparison.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .base import (
    BYTES_PER_RAW_KEY,
    CompressedGradient,
    GradientCompressor,
    register_compressor,
    validate_sparse_gradient,
)

__all__ = ["OneBitCompressor"]

_METADATA_BYTES = 16  # two float64 magnitudes


@register_compressor("onebit")
class OneBitCompressor(GradientCompressor):
    """Sign-only quantization with optional error feedback.

    Stateful: the residual of each compression is remembered per
    dimension and added to the next gradient before quantizing (the
    standard error-feedback trick that makes 1-bit SGD trainable at
    all).  Call :meth:`reset` between runs.

    Args:
        error_feedback: carry residuals across calls (default True).
    """

    name = "onebit"

    def __init__(self, error_feedback: bool = True) -> None:
        self.error_feedback = bool(error_feedback)
        self._residual: Dict[int, float] = {}

    def reset(self) -> None:
        self._residual.clear()

    def compress(
        self, keys: np.ndarray, values: np.ndarray, dimension: int
    ) -> CompressedGradient:
        keys, values = validate_sparse_gradient(keys, values, dimension)
        if keys.size == 0:
            return CompressedGradient(
                payload=(keys, np.empty(0, dtype=bool), 0.0, 0.0),
                num_bytes=_METADATA_BYTES,
                dimension=dimension,
                nnz=0,
            )
        adjusted = values.copy()
        if self.error_feedback and self._residual:
            for i, key in enumerate(keys):
                carried = self._residual.get(int(key))
                if carried is not None:
                    adjusted[i] += carried
        positive = adjusted >= 0
        pos_mag = float(adjusted[positive].mean()) if positive.any() else 0.0
        neg_mag = float((-adjusted[~positive]).mean()) if (~positive).any() else 0.0
        decoded = np.where(positive, pos_mag, -neg_mag)
        if self.error_feedback:
            residual = adjusted - decoded
            for key, r in zip(keys.tolist(), residual.tolist()):
                self._residual[key] = r
        # 1 sign bit per value, packed; keys still 4 bytes each.
        sign_bytes = (keys.size + 7) // 8
        num_bytes = keys.size * BYTES_PER_RAW_KEY + sign_bytes + _METADATA_BYTES
        return CompressedGradient(
            payload=(keys.copy(), positive, pos_mag, neg_mag),
            num_bytes=num_bytes,
            dimension=dimension,
            nnz=keys.size,
            breakdown={
                "keys": keys.size * BYTES_PER_RAW_KEY,
                "values": sign_bytes,
                "metadata": _METADATA_BYTES,
            },
        )

    def decompress(self, message: CompressedGradient) -> Tuple[np.ndarray, np.ndarray]:
        keys, positive, pos_mag, neg_mag = message.payload
        if keys.size == 0:
            return keys, np.empty(0, dtype=np.float64)
        values = np.where(positive, pos_mag, -neg_mag)
        return keys, values

    def __repr__(self) -> str:
        return f"OneBitCompressor(error_feedback={self.error_feedback})"
