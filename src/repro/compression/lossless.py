"""Lossless integer codecs compared against delta-binary keys (§3.4, §A.3).

The paper dismisses RLE and Huffman for gradient keys ("useless for
non-repetitive gradient keys") and shows in Appendix A.3 that a bitmap
costs ``ceil(rD/8)`` bytes regardless of sparsity.  We implement all of
them behind a common :class:`KeyCodec` interface so the claim can be
measured rather than asserted — see
``benchmarks/test_appendix_key_encoding.py``.

All codecs are exactly invertible for strictly ascending key arrays.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Dict, List, Tuple

import numpy as np

from ..core.delta_encoding import decode_keys as _delta_decode
from ..core.delta_encoding import encode_keys as _delta_encode

__all__ = [
    "KeyCodec",
    "DeltaBinaryKeyCodec",
    "RawKeyCodec",
    "VarintKeyCodec",
    "RunLengthKeyCodec",
    "HuffmanDeltaKeyCodec",
    "BitmapKeyCodec",
    "all_key_codecs",
]


class KeyCodec:
    """Interface for lossless codecs over ascending int key arrays."""

    name: str = "abstract"

    def encode(self, keys: np.ndarray) -> bytes:
        raise NotImplementedError

    def decode(self, blob: bytes) -> np.ndarray:
        raise NotImplementedError

    def bytes_per_key(self, keys: np.ndarray) -> float:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return 0.0
        return len(self.encode(keys)) / keys.size


class DeltaBinaryKeyCodec(KeyCodec):
    """The paper's delta-binary codec (adapter over :mod:`repro.core`)."""

    name = "delta_binary"

    def encode(self, keys: np.ndarray) -> bytes:
        return _delta_encode(keys)

    def decode(self, blob: bytes) -> np.ndarray:
        return _delta_decode(blob)


class RawKeyCodec(KeyCodec):
    """4-byte little-endian integers — the uncompressed baseline."""

    name = "raw_int32"

    def encode(self, keys: np.ndarray) -> bytes:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and (keys.min() < 0 or keys.max() > 0xFFFFFFFF):
            raise ValueError("keys must fit in uint32")
        return keys.astype("<u4").tobytes()

    def decode(self, blob: bytes) -> np.ndarray:
        return np.frombuffer(blob, dtype="<u4").astype(np.int64)


class VarintKeyCodec(KeyCodec):
    """LEB128 varints over deltas — the classic protobuf-style encoding.

    Slightly different trade-off from byte flags: continuation bits cost
    1/8 of every byte but there is no separate flag section.
    """

    name = "varint_delta"

    def encode(self, keys: np.ndarray) -> bytes:
        keys = np.asarray(keys, dtype=np.int64)
        out = bytearray()
        prev = 0
        for key in keys.tolist():
            delta = key - prev
            if delta < 0:
                raise ValueError("keys must be ascending for varint deltas")
            prev = key
            while True:
                byte = delta & 0x7F
                delta >>= 7
                if delta:
                    out.append(byte | 0x80)
                else:
                    out.append(byte)
                    break
        return bytes(out)

    def decode(self, blob: bytes) -> np.ndarray:
        keys: List[int] = []
        acc = 0
        shift = 0
        prev = 0
        for byte in blob:
            acc |= (byte & 0x7F) << shift
            if byte & 0x80:
                shift += 7
            else:
                prev += acc
                keys.append(prev)
                acc = 0
                shift = 0
        if shift != 0:
            raise ValueError("truncated varint stream")
        return np.asarray(keys, dtype=np.int64)


class RunLengthKeyCodec(KeyCodec):
    """RLE over the presence bitmap: (gap, run) pairs as uint32.

    Included to substantiate §3.4's claim that RLE suits *consecutive
    repeats*, not scattered keys: for random sparse keys almost every
    run has length 1 and the codec costs ~8 bytes per key.
    """

    name = "rle_bitmap"

    def encode(self, keys: np.ndarray) -> bytes:
        keys = np.asarray(keys, dtype=np.int64)
        pairs: List[int] = []
        prev_end = 0  # first position after the previous run
        i = 0
        n = keys.size
        while i < n:
            run_start = int(keys[i])
            j = i + 1
            while j < n and keys[j] == keys[j - 1] + 1:
                j += 1
            pairs.append(run_start - prev_end)  # gap of zeros
            pairs.append(j - i)  # run of ones
            prev_end = int(keys[j - 1]) + 1
            i = j
        return np.asarray(pairs, dtype="<u4").tobytes()

    def decode(self, blob: bytes) -> np.ndarray:
        pairs = np.frombuffer(blob, dtype="<u4").astype(np.int64)
        keys: List[int] = []
        pos = 0
        for gap, run in zip(pairs[0::2], pairs[1::2]):
            pos += int(gap)
            keys.extend(range(pos, pos + int(run)))
            pos += int(run)
        return np.asarray(keys, dtype=np.int64)


class _HuffmanNode:
    __slots__ = ("freq", "order", "symbol", "left", "right")

    def __init__(self, freq, order, symbol=None, left=None, right=None):
        self.freq = freq
        self.order = order
        self.symbol = symbol
        self.left = left
        self.right = right

    def __lt__(self, other: "_HuffmanNode") -> bool:
        return (self.freq, self.order) < (other.freq, other.order)


class HuffmanDeltaKeyCodec(KeyCodec):
    """Huffman coding over the *bytes* of delta keys.

    The honest way to give Huffman a chance on key data: deltas are
    serialised as raw 4-byte integers, then the byte stream is Huffman
    coded, with the code table shipped in the header.  On scattered
    sparse keys the table overhead plus near-uniform low bytes keep it
    well above delta-binary, as §3.4 predicts.
    """

    name = "huffman_delta"

    def encode(self, keys: np.ndarray) -> bytes:
        keys = np.asarray(keys, dtype=np.int64)
        deltas = np.empty(keys.size, dtype=np.int64)
        if keys.size:
            deltas[0] = keys[0]
            deltas[1:] = np.diff(keys)
        raw = deltas.astype("<u4").tobytes()
        header = np.asarray(keys.size, dtype="<u4").tobytes()
        if not raw:
            return header
        freqs = Counter(raw)
        codes = self._build_codes(freqs)
        # Serialise the table: count, then (symbol, code_len) pairs, then
        # the canonical codes are rebuilt from lengths at decode time.
        table = bytearray()
        table += np.asarray(len(codes), dtype="<u2").tobytes()
        for symbol, code in sorted(codes.items()):
            table.append(symbol)
            table.append(len(code))
        bits = "".join(codes[b] for b in raw)
        payload = self._pack_bits(bits)
        return header + bytes(table) + np.asarray(len(bits), dtype="<u4").tobytes() + payload

    def decode(self, blob: bytes) -> np.ndarray:
        n = int(np.frombuffer(blob[:4], dtype="<u4")[0])
        if n == 0:
            return np.empty(0, dtype=np.int64)
        num_symbols = int(np.frombuffer(blob[4:6], dtype="<u2")[0])
        table_end = 6 + 2 * num_symbols
        lengths: List[Tuple[int, int]] = []
        for i in range(num_symbols):
            symbol = blob[6 + 2 * i]
            length = blob[7 + 2 * i]
            lengths.append((symbol, length))
        codes = self._canonical_codes(lengths)
        bit_count = int(np.frombuffer(blob[table_end:table_end + 4], dtype="<u4")[0])
        bits = self._unpack_bits(blob[table_end + 4:], bit_count)
        decoder = {code: symbol for symbol, code in codes.items()}
        out = bytearray()
        current = ""
        for bit in bits:
            current += bit
            symbol = decoder.get(current)
            if symbol is not None:
                out.append(symbol)
                current = ""
        deltas = np.frombuffer(bytes(out), dtype="<u4").astype(np.int64)
        return np.cumsum(deltas)

    def _build_codes(self, freqs: Counter) -> Dict[int, str]:
        if len(freqs) == 1:
            return {next(iter(freqs)): "0"}
        heap = [
            _HuffmanNode(freq, order, symbol=symbol)
            for order, (symbol, freq) in enumerate(sorted(freqs.items()))
        ]
        heapq.heapify(heap)
        order = len(heap)
        while len(heap) > 1:
            a = heapq.heappop(heap)
            b = heapq.heappop(heap)
            heapq.heappush(heap, _HuffmanNode(a.freq + b.freq, order, left=a, right=b))
            order += 1
        lengths: Dict[int, int] = {}

        def walk(node: _HuffmanNode, depth: int) -> None:
            if node.symbol is not None:
                lengths[node.symbol] = max(depth, 1)
                return
            walk(node.left, depth + 1)
            walk(node.right, depth + 1)

        walk(heap[0], 0)
        return self._canonical_codes(sorted(lengths.items()))

    @staticmethod
    def _canonical_codes(lengths: List[Tuple[int, int]]) -> Dict[int, str]:
        """Canonical Huffman: codes assigned by (length, symbol) order."""
        ordered = sorted(lengths, key=lambda item: (item[1], item[0]))
        codes: Dict[int, str] = {}
        code = 0
        prev_len = 0
        for symbol, length in ordered:
            code <<= length - prev_len
            codes[symbol] = format(code, f"0{length}b")
            code += 1
            prev_len = length
        return codes

    @staticmethod
    def _pack_bits(bits: str) -> bytes:
        padded = bits + "0" * (-len(bits) % 8)
        return bytes(
            int(padded[i:i + 8], 2) for i in range(0, len(padded), 8)
        )

    @staticmethod
    def _unpack_bits(blob: bytes, bit_count: int) -> str:
        bits = "".join(format(byte, "08b") for byte in blob)
        return bits[:bit_count]


class BitmapKeyCodec(KeyCodec):
    """Presence bitmap: 1 bit per model dimension (§A.3's alternative).

    Requires the model dimension at construction; costs ``ceil(D/8)``
    bytes no matter how sparse the gradient, which is why delta-binary
    wins whenever ``d/D`` is small.
    """

    name = "bitmap"

    def __init__(self, dimension: int) -> None:
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        self.dimension = int(dimension)

    def encode(self, keys: np.ndarray) -> bytes:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and (keys.min() < 0 or keys.max() >= self.dimension):
            raise ValueError(f"keys must lie in [0, {self.dimension})")
        bits = np.zeros(self.dimension, dtype=bool)
        bits[keys] = True
        return np.packbits(bits).tobytes()

    def decode(self, blob: bytes) -> np.ndarray:
        bits = np.unpackbits(np.frombuffer(blob, dtype=np.uint8))[: self.dimension]
        return np.flatnonzero(bits).astype(np.int64)


def all_key_codecs(dimension: int) -> List[KeyCodec]:
    """One instance of every key codec, for comparison benches."""
    return [
        DeltaBinaryKeyCodec(),
        RawKeyCodec(),
        VarintKeyCodec(),
        RunLengthKeyCodec(),
        HuffmanDeltaKeyCodec(),
        BitmapKeyCodec(dimension),
    ]
