"""Gradient compressor interface shared by SketchML and all baselines.

A *gradient* throughout this library is a sparse vector in key–value
form: a strictly ascending int64 ``keys`` array (nonzero dimensions) and
a parallel float64 ``values`` array, plus the model dimension ``D``.

A :class:`GradientCompressor` turns that pair into a
:class:`CompressedGradient` — an object that knows its exact wire size —
and back.  The distributed trainer charges the network model with
``message.num_bytes``, so the byte accounting *is* the experiment: every
compressor must report honest sizes (headers and metadata included).

Compressors are registered by name (:func:`register_compressor` /
:func:`make_compressor`) so benchmarks can be driven from strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

import numpy as np

__all__ = [
    "CompressedGradient",
    "GradientCompressor",
    "register_compressor",
    "make_compressor",
    "available_compressors",
    "validate_sparse_gradient",
]

#: Paper's accounting for an uncompressed pair: 4-byte int key + 8-byte
#: double value = 12 bytes per nonzero element (§3.5).
BYTES_PER_RAW_KEY = 4
BYTES_PER_RAW_VALUE = 8


@dataclass
class CompressedGradient:
    """A compressed gradient message with exact wire-size accounting.

    Attributes:
        payload: compressor-specific opaque content.
        num_bytes: exact serialized size charged to the network.
        dimension: model dimension ``D`` of the original gradient.
        nnz: number of nonzero entries in the original gradient.
        breakdown: optional per-component byte accounting (keys /
            values / sketch / metadata), used by the Fig. 8(b) bench.
    """

    payload: Any
    num_bytes: int
    dimension: int
    nnz: int
    breakdown: Dict[str, int] = field(default_factory=dict)

    @property
    def raw_bytes(self) -> int:
        """Size of the uncompressed message (12 bytes per pair)."""
        return self.nnz * (BYTES_PER_RAW_KEY + BYTES_PER_RAW_VALUE)

    @property
    def compression_rate(self) -> float:
        """``raw_bytes / num_bytes`` — the paper's compression rate."""
        if self.num_bytes == 0:
            return float("inf")
        return self.raw_bytes / self.num_bytes


def validate_sparse_gradient(
    keys: np.ndarray, values: np.ndarray, dimension: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and canonicalise a sparse gradient.

    Ensures keys are 1-D, strictly ascending, within ``[0, dimension)``
    and values are finite floats of the same length.
    """
    keys = np.asarray(keys, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if keys.ndim != 1 or values.ndim != 1:
        raise ValueError("keys and values must be 1-D arrays")
    if keys.shape != values.shape:
        raise ValueError(
            f"keys and values must be parallel: {keys.shape} vs {values.shape}"
        )
    if dimension <= 0:
        raise ValueError(f"dimension must be positive, got {dimension}")
    if keys.size:
        if keys.min() < 0 or keys.max() >= dimension:
            raise ValueError(f"keys must lie in [0, {dimension})")
        if keys.size > 1 and np.any(np.diff(keys) <= 0):
            raise ValueError("keys must be strictly ascending")
        if not np.all(np.isfinite(values)):
            raise ValueError("gradient values must be finite")
    return keys, values


class GradientCompressor:
    """Abstract base class for gradient compressors.

    Subclasses implement :meth:`compress` and :meth:`decompress`; both
    directions run on every simulated message, so they should be
    vectorised.  A compressor may be stateful across calls (e.g. error
    feedback in :class:`~repro.compression.onebit.OneBitCompressor`);
    stateless compressors are reusable across workers.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    def compress(
        self, keys: np.ndarray, values: np.ndarray, dimension: int
    ) -> CompressedGradient:
        """Compress a sparse gradient into a message."""
        raise NotImplementedError

    def decompress(
        self, message: CompressedGradient
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Recover ``(keys, values)`` from a message.

        Keys are exact for every compressor in this library (the paper
        requires lossless keys); values may be approximate.
        """
        raise NotImplementedError

    def roundtrip(
        self, keys: np.ndarray, values: np.ndarray, dimension: int
    ) -> Tuple[np.ndarray, np.ndarray, CompressedGradient]:
        """Compress then decompress; returns ``(keys, values, message)``."""
        message = self.compress(keys, values, dimension)
        out_keys, out_values = self.decompress(message)
        return out_keys, out_values, message

    def reset(self) -> None:
        """Clear any cross-iteration state (default: nothing to clear)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Callable[..., GradientCompressor]] = {}


def register_compressor(
    name: str,
) -> Callable[[Callable[..., GradientCompressor]], Callable[..., GradientCompressor]]:
    """Class decorator registering a compressor factory under ``name``."""

    def decorator(factory: Callable[..., GradientCompressor]):
        if name in _REGISTRY:
            raise ValueError(f"compressor {name!r} already registered")
        _REGISTRY[name] = factory
        return factory

    return decorator


def make_compressor(name: str, **kwargs: Any) -> GradientCompressor:
    """Instantiate a registered compressor by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown compressor {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def available_compressors() -> Tuple[str, ...]:
    """Names of all registered compressors."""
    return tuple(sorted(_REGISTRY))
