"""Gradient compressors: SketchML's competitors and the codec registry.

The SketchML compressor itself lives in :mod:`repro.core` but registers
into the same registry under the name ``"sketchml"``.
"""

from .base import (
    BYTES_PER_RAW_KEY,
    BYTES_PER_RAW_VALUE,
    CompressedGradient,
    GradientCompressor,
    available_compressors,
    make_compressor,
    register_compressor,
    validate_sparse_gradient,
)
from .error_feedback import ErrorFeedbackCompressor
from .float16 import Float16Compressor
from .hybrid import HeavyHitterSketchMLCompressor
from .identity import IdentityCompressor
from .lossless import (
    BitmapKeyCodec,
    DeltaBinaryKeyCodec,
    HuffmanDeltaKeyCodec,
    KeyCodec,
    RawKeyCodec,
    RunLengthKeyCodec,
    VarintKeyCodec,
    all_key_codecs,
)
from .onebit import OneBitCompressor
from .qsgd import QSGDCompressor
from .topk import TopKCompressor
from .zipml import ZipMLCompressor

__all__ = [
    "CompressedGradient",
    "GradientCompressor",
    "register_compressor",
    "make_compressor",
    "available_compressors",
    "validate_sparse_gradient",
    "BYTES_PER_RAW_KEY",
    "BYTES_PER_RAW_VALUE",
    "IdentityCompressor",
    "ZipMLCompressor",
    "OneBitCompressor",
    "TopKCompressor",
    "Float16Compressor",
    "QSGDCompressor",
    "HeavyHitterSketchMLCompressor",
    "ErrorFeedbackCompressor",
    "KeyCodec",
    "DeltaBinaryKeyCodec",
    "RawKeyCodec",
    "VarintKeyCodec",
    "RunLengthKeyCodec",
    "HuffmanDeltaKeyCodec",
    "BitmapKeyCodec",
    "all_key_codecs",
]
