"""Training metrics: per-epoch timing, byte, and loss accounting.

Every end-to-end figure in the paper is a projection of these records:

* Fig. 8(a)/9/11/12 — ``epoch_seconds`` (compute + simulated network);
* Fig. 8(b)        — ``avg_message_bytes`` and ``compression_rate``;
* Fig. 8(c)        — ``encode_seconds`` / ``decode_seconds`` vs total
  compute (the CPU overhead of compression);
* Fig. 10/14       — ``(cumulative_seconds, test_loss)`` series;
* Table 2          — :func:`time_to_converge` applied to the series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["EpochRecord", "TrainingHistory", "time_to_converge"]


@dataclass
class EpochRecord:
    """Aggregated measurements for one training epoch."""

    epoch: int
    compute_seconds: float
    network_seconds: float
    encode_seconds: float
    decode_seconds: float
    train_loss: float
    test_loss: Optional[float]
    bytes_sent: int
    raw_bytes: int
    num_messages: int
    gradient_nnz: float
    #: Workers lost under the runtime ``drop`` straggler policy by the
    #: end of this epoch (worker id → reason); empty on the simulated
    #: path and on clean runs.
    dropped_workers: Dict[int, str] = field(default_factory=dict)

    @property
    def epoch_seconds(self) -> float:
        """Simulated wall-clock for the epoch."""
        return self.compute_seconds + self.network_seconds

    @property
    def avg_message_bytes(self) -> float:
        return self.bytes_sent / self.num_messages if self.num_messages else 0.0

    @property
    def compression_rate(self) -> float:
        return self.raw_bytes / self.bytes_sent if self.bytes_sent else float("inf")

    @property
    def compression_cpu_fraction(self) -> float:
        """Share of compute spent in encode/decode (Fig. 8(c) proxy)."""
        if self.compute_seconds <= 0:
            return 0.0
        return (self.encode_seconds + self.decode_seconds) / self.compute_seconds


@dataclass
class TrainingHistory:
    """Full run record: configuration echo plus per-epoch series."""

    method: str
    model: str
    num_workers: int
    epochs: List[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.epochs.append(record)

    # ------------------------------------------------------------------
    # series accessors
    # ------------------------------------------------------------------
    @property
    def num_epochs(self) -> int:
        return len(self.epochs)

    @property
    def epoch_seconds(self) -> List[float]:
        return [e.epoch_seconds for e in self.epochs]

    @property
    def avg_epoch_seconds(self) -> float:
        if not self.epochs:
            return 0.0
        return sum(self.epoch_seconds) / len(self.epochs)

    @property
    def cumulative_seconds(self) -> List[float]:
        out: List[float] = []
        total = 0.0
        for e in self.epochs:
            total += e.epoch_seconds
            out.append(total)
        return out

    @property
    def train_losses(self) -> List[float]:
        return [e.train_loss for e in self.epochs]

    @property
    def test_losses(self) -> List[Optional[float]]:
        return [e.test_loss for e in self.epochs]

    def loss_curve(self) -> List[Tuple[float, float]]:
        """``(cumulative_seconds, loss)`` pairs — Figure 10's series.

        Uses test loss when available, train loss otherwise.
        """
        curve: List[Tuple[float, float]] = []
        for t, e in zip(self.cumulative_seconds, self.epochs):
            loss = e.test_loss if e.test_loss is not None else e.train_loss
            curve.append((t, loss))
        return curve

    @property
    def total_bytes_sent(self) -> int:
        return sum(e.bytes_sent for e in self.epochs)

    @property
    def avg_compression_rate(self) -> float:
        total_raw = sum(e.raw_bytes for e in self.epochs)
        total_sent = self.total_bytes_sent
        return total_raw / total_sent if total_sent else float("inf")

    @property
    def best_loss(self) -> float:
        losses = [l for _, l in self.loss_curve()]
        return min(losses) if losses else float("inf")

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form (JSON-serialisable) of the whole history."""
        return {
            "method": self.method,
            "model": self.model,
            "num_workers": self.num_workers,
            "epochs": [
                {
                    "epoch": e.epoch,
                    "compute_seconds": e.compute_seconds,
                    "network_seconds": e.network_seconds,
                    "encode_seconds": e.encode_seconds,
                    "decode_seconds": e.decode_seconds,
                    "epoch_seconds": e.epoch_seconds,
                    "train_loss": e.train_loss,
                    "test_loss": e.test_loss,
                    "bytes_sent": e.bytes_sent,
                    "raw_bytes": e.raw_bytes,
                    "num_messages": e.num_messages,
                    "gradient_nnz": e.gradient_nnz,
                    "compression_rate": e.compression_rate,
                }
                for e in self.epochs
            ],
        }

    def to_csv(self) -> str:
        """Per-epoch records as CSV text (header + one row per epoch)."""
        columns = [
            "epoch", "epoch_seconds", "compute_seconds", "network_seconds",
            "encode_seconds", "decode_seconds", "train_loss", "test_loss",
            "bytes_sent", "raw_bytes", "num_messages", "gradient_nnz",
            "compression_rate",
        ]
        lines = [",".join(columns)]
        for record in self.to_dict()["epochs"]:
            lines.append(
                ",".join(
                    "" if record[col] is None else repr(record[col])
                    for col in columns
                )
            )
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return (
            f"TrainingHistory(method={self.method!r}, model={self.model!r}, "
            f"workers={self.num_workers}, epochs={self.num_epochs})"
        )


def time_to_converge(
    history: TrainingHistory,
    tolerance: float = 0.01,
    window: int = 5,
) -> Tuple[float, float]:
    """The paper's §4.4 convergence rule applied to a history.

    "An algorithm is considered as converged if the variation of loss is
    less than 1% within five epochs."  Returns ``(converged_loss,
    converged_time_seconds)``; if the run never satisfies the rule the
    final loss/time are returned.
    """
    curve = history.loss_curve()
    if not curve:
        raise ValueError("history has no epochs")
    if window < 2:
        raise ValueError("window must be >= 2")
    for i in range(window - 1, len(curve)):
        window_losses = [loss for _, loss in curve[i - window + 1:i + 1]]
        low, high = min(window_losses), max(window_losses)
        reference = abs(window_losses[0]) or 1.0
        if (high - low) / reference < tolerance:
            return curve[i][1], curve[i][0]
    return curve[-1][1], curve[-1][0]
