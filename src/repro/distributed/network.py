"""Network cost model for the simulated cluster.

The paper's clusters are physical (Table: 10 nodes × 1 Gbps in the lab,
300 nodes × 10 Gbps shared/congested at Tencent).  We replace the wire
with an explicit cost model: transferring ``B`` bytes costs
``latency + B / effective_bandwidth``, where effective bandwidth is the
nominal bandwidth divided by a congestion factor (Cluster-2 "serves
many applications simultaneously", §4.3.1).

Gather (W workers → driver) serialises through the driver's NIC, so the
cost is one latency plus the *sum* of message sizes over the effective
bandwidth; broadcast (driver → W workers) likewise sends W copies.
This is the standard star-topology model for a Spark driver and is what
produces Figure 11's shape: past a certain worker count the driver NIC
saturates and uncompressed Adam *slows down* with more workers while
compressed methods keep scaling.

Because the synthetic datasets are ~10³× smaller than the paper's, the
preset bandwidths are scaled down by a comparable factor so the
communication/computation ratio — the quantity every end-to-end figure
depends on — lands in the same regime as the paper's testbed.  The
scaling is a single number per preset and is documented in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "NetworkModel",
    "cluster1_like",
    "cluster2_like",
    "wan_like",
    "infinite_bandwidth",
]


@dataclass(frozen=True)
class NetworkModel:
    """Star-topology network cost model.

    Attributes:
        bandwidth_bytes_per_sec: nominal NIC bandwidth at the driver.
        latency_sec: per-transfer-phase latency (connection setup +
            propagation), charged once per gather / broadcast phase.
        congestion: divide-down factor on bandwidth (≥ 1.0); models a
            shared production network.
        broadcast_mode: ``"torrent"`` (default) models Spark's
            TorrentBroadcast — workers re-share blocks, so the driver
            pays ``ceil(log2(W + 1))`` copies; ``"star"`` is naive
            point-to-point (``W`` copies through the driver NIC).
        loss_rate: packet/message loss probability in [0, 1); lost data
            is retransmitted, so every transfer is inflated by the
            expected retransmission factor ``1 / (1 - loss_rate)``.
            Failure injection for tests and the WAN scenario.
    """

    bandwidth_bytes_per_sec: float
    latency_sec: float = 1e-3
    congestion: float = 1.0
    broadcast_mode: str = "torrent"
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_sec <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_sec < 0:
            raise ValueError("latency must be non-negative")
        if self.congestion < 1.0:
            raise ValueError("congestion factor must be >= 1.0")
        if self.broadcast_mode not in ("torrent", "star"):
            raise ValueError(f"unknown broadcast_mode {self.broadcast_mode!r}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")

    @property
    def effective_bandwidth(self) -> float:
        return (
            self.bandwidth_bytes_per_sec
            / self.congestion
            * (1.0 - self.loss_rate)
        )

    def transfer_time(self, num_bytes: int) -> float:
        """Point-to-point transfer of one message."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return self.latency_sec + num_bytes / self.effective_bandwidth

    def gather_time(self, message_sizes: Sequence[int]) -> float:
        """W workers push to the driver; the driver NIC is the bottleneck."""
        total = 0
        for size in message_sizes:
            if size < 0:
                raise ValueError("message sizes must be non-negative")
            total += size
        return self.latency_sec + total / self.effective_bandwidth

    def broadcast_time(self, num_bytes: int, num_workers: int) -> float:
        """Driver-to-workers broadcast of one message.

        ``torrent`` mode (default) charges ``ceil(log2(W + 1))`` copies
        — workers relay blocks peer-to-peer, as Spark's
        TorrentBroadcast does; ``star`` charges ``W`` copies.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.broadcast_mode == "torrent":
            copies = math.ceil(math.log2(num_workers + 1))
        else:
            copies = num_workers
        return self.latency_sec + copies * num_bytes / self.effective_bandwidth


def cluster1_like() -> NetworkModel:
    """The lab cluster (10 nodes, dedicated 1 Gbps), scaled to data size.

    1 Gbps ≈ 125 MB/s for datasets of 5–22 GB; our datasets (and thus
    messages) are ~10³–10⁴× smaller, so the preset scales bandwidth by
    the same factor to keep the communication/computation ratio in the
    paper's regime (Fig. 8(a): communication dominates uncompressed
    epochs roughly 4:1 even on the dedicated lab network).
    """
    return NetworkModel(bandwidth_bytes_per_sec=3e5, latency_sec=1e-3)


def cluster2_like() -> NetworkModel:
    """The Tencent production cluster: 10 Gbps nominal but congested.

    §4.3.1: "the network is more congested than Cluster-1 since
    Cluster-2 serves many applications simultaneously", and SketchML
    runs *slower* there than on Cluster-1 — so the effective per-task
    bandwidth is below the lab cluster's despite the faster NIC.
    """
    return NetworkModel(
        bandwidth_bytes_per_sec=1.25e7, latency_sec=2e-3, congestion=250.0
    )


def wan_like() -> NetworkModel:
    """Geo-distributed WAN link (Case 3 of §1.1): slow and laggy."""
    return NetworkModel(bandwidth_bytes_per_sec=1.25e5, latency_sec=5e-2)


def infinite_bandwidth() -> NetworkModel:
    """Effectively free network — isolates pure compute in ablations."""
    return NetworkModel(bandwidth_bytes_per_sec=1e15, latency_sec=0.0)
