"""Simulated distributed substrate: workers, driver, network, trainer."""

from .checkpoint import load_checkpoint, save_checkpoint
from .driver import Driver, DriverStepResult, aggregate_sparse_gradients
from .local_sgd import LocalSGDConfig, LocalSGDTrainer
from .metrics import EpochRecord, TrainingHistory, time_to_converge
from .network import (
    NetworkModel,
    cluster1_like,
    cluster2_like,
    infinite_bandwidth,
    wan_like,
)
from .ssp_trainer import SSPConfig, SSPTrainer
from .trainer import DistributedTrainer, TrainerConfig
from .worker import Worker, WorkerStepResult

__all__ = [
    "NetworkModel",
    "cluster1_like",
    "cluster2_like",
    "wan_like",
    "infinite_bandwidth",
    "Worker",
    "WorkerStepResult",
    "Driver",
    "DriverStepResult",
    "aggregate_sparse_gradients",
    "DistributedTrainer",
    "TrainerConfig",
    "SSPTrainer",
    "SSPConfig",
    "LocalSGDTrainer",
    "LocalSGDConfig",
    "EpochRecord",
    "TrainingHistory",
    "time_to_converge",
    "save_checkpoint",
    "load_checkpoint",
]
