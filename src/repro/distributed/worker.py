"""Simulated worker (Spark executor).

Each worker owns a row partition of the training set, computes the
mini-batch gradient over its next batch slice, and compresses it with
its own compressor instance (compressors may be stateful, e.g. error
feedback).  Compute and encode times are *measured* (they are real work
on this machine); only the wire is simulated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..compression.base import CompressedGradient, GradientCompressor
from ..models.base import Model

__all__ = ["Worker", "WorkerStepResult"]


@dataclass
class WorkerStepResult:
    """Output of one worker's compute+encode step."""

    message: CompressedGradient
    local_loss: float
    compute_seconds: float
    encode_seconds: float
    gradient_nnz: int


class Worker:
    """One data-parallel worker.

    Args:
        worker_id: stable id (seeds the batch shuffling).
        dataset: the worker's *partition* (already subset).
        model: shared model definition (stateless).
        compressor: this worker's compressor instance.
        batch_size: rows per mini-batch drawn from the partition.
        seed: base seed for batch order shuffling.
    """

    def __init__(
        self,
        worker_id: int,
        dataset,
        model: Model,
        compressor: GradientCompressor,
        batch_size: int,
        seed: int = 0,
        compute_seconds_per_nnz: float = 0.0,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if compute_seconds_per_nnz < 0:
            raise ValueError("compute_seconds_per_nnz must be non-negative")
        self.worker_id = int(worker_id)
        self.dataset = dataset
        self.model = model
        self.compressor = compressor
        self.batch_size = int(batch_size)
        self.compute_seconds_per_nnz = float(compute_seconds_per_nnz)
        self._rng = np.random.default_rng(seed + 1_000_003 * worker_id)
        self._batch_iter = None

    # ------------------------------------------------------------------
    def start_epoch(self) -> None:
        """Reshuffle and restart batch iteration for a new epoch."""
        self._batch_iter = self.dataset.iter_batches(self.batch_size, self._rng)

    def next_batch(self) -> Optional[np.ndarray]:
        """Row indexes of the next mini-batch, or None at epoch end."""
        if self._batch_iter is None:
            self.start_epoch()
        try:
            return next(self._batch_iter)
        except StopIteration:
            self._batch_iter = None
            return None

    @property
    def batches_per_epoch(self) -> int:
        return -(-self.dataset.num_rows // self.batch_size)

    # ------------------------------------------------------------------
    def compute_step(
        self, rows: np.ndarray, theta: np.ndarray
    ) -> WorkerStepResult:
        """Gradient + compression for one batch.

        Gradient and encode times are measured; on top of the measured
        time, ``compute_seconds_per_nnz * batch_nnz`` of *modelled*
        compute is charged (per nonzero, so denser rows cost more — the
        reason the paper's CTR speedups are smaller than KDD12's).  The model term calibrates the
        compute/communication ratio to the paper's testbed regime — our
        synthetic rows are ~10³× fewer than the paper's, so measured
        Python compute alone would make every workload look
        network-bound (see DESIGN.md §2).
        """
        t0 = time.perf_counter()
        keys, values, loss = self.model.batch_gradient(self.dataset, rows, theta)
        t1 = time.perf_counter()
        message = self.compressor.compress(
            keys, values, self.model.num_parameters
        )
        t2 = time.perf_counter()
        modelled = self.compute_seconds_per_nnz * self._batch_nnz(rows)
        return WorkerStepResult(
            message=message,
            local_loss=loss,
            compute_seconds=(t1 - t0) + modelled,
            encode_seconds=t2 - t1,
            gradient_nnz=keys.size,
        )

    def _batch_nnz(self, rows: np.ndarray) -> int:
        """Nonzeros in the batch (dense datasets count every cell)."""
        indptr = getattr(self.dataset, "indptr", None)
        if indptr is not None:
            return int((indptr[rows + 1] - indptr[rows]).sum())
        return int(rows.size * self.dataset.num_features)

    def apply_update(
        self, theta: np.ndarray, keys: np.ndarray, values: np.ndarray, optimizer
    ) -> None:
        """Apply the broadcast update to a local model replica.

        Used by tests exercising per-worker replicas; the trainer keeps
        a single shared ``theta`` since all replicas evolve identically.
        """
        optimizer.step(theta, keys, values)

    def __repr__(self) -> str:
        return (
            f"Worker(id={self.worker_id}, rows={self.dataset.num_rows}, "
            f"batch={self.batch_size})"
        )
