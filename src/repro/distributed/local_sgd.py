"""Local SGD — the other classic communication-reduction family.

Instead of compressing every gradient, Local SGD (Zinkevich et al.'s
parallelized SGD lineage, ref [48] of the paper) communicates *less
often*: each worker runs ``sync_interval`` local optimizer steps on its
own model replica, then the replicas are averaged.  This trades
gradient staleness for an ``sync_interval``-fold cut in message count.

Included as a substrate extension so the reproduction can answer the
natural reviewer question "why compress gradients instead of just
synchronising less?" — the two compose, in fact: the model *deltas*
exchanged at sync time are sparse and travel through any registered
compressor, SketchML included.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..compression.base import GradientCompressor
from ..data.splits import partition_rows
from ..models.base import Model
from ..optim.optimizers import Optimizer, make_optimizer
from .metrics import EpochRecord, TrainingHistory
from .network import NetworkModel

__all__ = ["LocalSGDConfig", "LocalSGDTrainer"]

CompressorFactory = Callable[[], GradientCompressor]


@dataclass(frozen=True)
class LocalSGDConfig:
    """Configuration of a Local SGD run.

    Attributes:
        num_workers: worker count.
        sync_interval: local steps between model averagings (H).
        batch_fraction: mini-batch fraction of each partition.
        epochs: passes over the data.
        seed: master seed.
        compute_seconds_per_nnz: modelled compute rate.
        method_label: history label.
    """

    num_workers: int = 10
    sync_interval: int = 4
    batch_fraction: float = 0.1
    epochs: int = 5
    seed: int = 0
    compute_seconds_per_nnz: float = 0.0
    method_label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.sync_interval <= 0:
            raise ValueError("sync_interval must be positive")
        if not 0.0 < self.batch_fraction <= 1.0:
            raise ValueError("batch_fraction must be in (0, 1]")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")


class LocalSGDTrainer:
    """Synchronous Local SGD with compressed delta exchange.

    Each worker keeps a model replica and its own optimizer state; every
    ``sync_interval`` batches the workers ship their *model deltas*
    (replica − last synced model, a sparse vector touching only the
    coordinates their batches moved) through the compressor, the driver
    averages, and all replicas jump to the new consensus model.

    Args:
        model: objective.
        optimizer_factory: builds one optimizer per worker (state is
            per-replica in Local SGD).
        compressor_factory: builds per-worker compressors for the delta
            exchange.
        network: wire cost model.
        config: run configuration.
    """

    def __init__(
        self,
        model: Model,
        optimizer_factory: Callable[[], Optimizer],
        compressor_factory: CompressorFactory,
        network: NetworkModel,
        config: Optional[LocalSGDConfig] = None,
    ) -> None:
        self.model = model
        self.optimizer_factory = optimizer_factory
        self.compressor_factory = compressor_factory
        self.network = network
        self.config = config or LocalSGDConfig()

    @classmethod
    def with_adam(cls, model, learning_rate, compressor_factory, network,
                  config=None) -> "LocalSGDTrainer":
        """Convenience constructor with per-worker Adam optimizers."""
        return cls(
            model,
            lambda: make_optimizer("adam", learning_rate=learning_rate),
            compressor_factory,
            network,
            config,
        )

    # ------------------------------------------------------------------
    def train(self, train_dataset, test_dataset=None) -> TrainingHistory:
        cfg = self.config
        partitions = [
            train_dataset.subset(rows)
            for rows in partition_rows(
                train_dataset.num_rows, cfg.num_workers, seed=cfg.seed
            )
        ]
        batch_sizes = [
            max(1, int(round(p.num_rows * cfg.batch_fraction)))
            for p in partitions
        ]
        compressors = [self.compressor_factory() for _ in range(cfg.num_workers)]
        optimizers = [self.optimizer_factory() for _ in range(cfg.num_workers)]
        for opt in optimizers:
            opt.prepare(self.model.num_parameters)

        consensus = self.model.init_theta()
        replicas = [consensus.copy() for _ in range(cfg.num_workers)]
        rngs = [
            np.random.default_rng(cfg.seed + 31 * w)
            for w in range(cfg.num_workers)
        ]
        iters = [
            partitions[w].iter_batches(batch_sizes[w], rngs[w])
            for w in range(cfg.num_workers)
        ]
        method = cfg.method_label or "local-sgd"
        history = TrainingHistory(
            method=method, model=self.model.name, num_workers=cfg.num_workers
        )
        batches_per_epoch = max(
            -(-p.num_rows // b) for p, b in zip(partitions, batch_sizes)
        )

        for epoch in range(cfg.epochs):
            stats = {
                "compute": 0.0, "network": 0.0, "encode": 0.0, "decode": 0.0,
                "bytes": 0, "raw": 0, "messages": 0, "nnz": 0,
                "loss_sum": 0.0, "loss_n": 0,
            }
            step = 0
            while step < batches_per_epoch:
                # One synchronisation period of local steps.
                period = min(cfg.sync_interval, batches_per_epoch - step)
                worker_times = []
                for w in range(cfg.num_workers):
                    t0 = time.perf_counter()
                    modelled = 0.0
                    for _ in range(period):
                        rows = self._next_rows(iters, partitions, batch_sizes,
                                               rngs, w)
                        keys, values, loss = self.model.batch_gradient(
                            partitions[w], rows, replicas[w]
                        )
                        optimizers[w].step(replicas[w], keys, values)
                        modelled += cfg.compute_seconds_per_nnz * self._batch_nnz(
                            partitions[w], rows
                        )
                        stats["loss_sum"] += loss
                        stats["loss_n"] += 1
                    worker_times.append(time.perf_counter() - t0 + modelled)
                step += period

                # Sync: exchange compressed model deltas, average.
                messages = []
                t0 = time.perf_counter()
                deltas = []
                for w in range(cfg.num_workers):
                    delta = replicas[w] - consensus
                    keys = np.flatnonzero(delta)
                    messages.append(
                        compressors[w].compress(
                            keys, delta[keys], self.model.num_parameters
                        )
                    )
                    stats["nnz"] += keys.size
                stats["encode"] += time.perf_counter() - t0
                stats["network"] += self.network.gather_time(
                    [m.num_bytes for m in messages]
                )
                stats["bytes"] += sum(m.num_bytes for m in messages)
                stats["raw"] += sum(m.raw_bytes for m in messages)
                stats["messages"] += len(messages)

                t0 = time.perf_counter()
                average_delta = np.zeros(self.model.num_parameters)
                for w, message in enumerate(messages):
                    got_keys, got_values = compressors[w].decompress(message)
                    np.add.at(average_delta, got_keys, got_values)
                average_delta /= cfg.num_workers
                stats["decode"] += time.perf_counter() - t0
                consensus = consensus + average_delta
                stats["network"] += self.network.broadcast_time(
                    messages[0].num_bytes, cfg.num_workers
                )
                for w in range(cfg.num_workers):
                    replicas[w][:] = consensus
                stats["compute"] += max(worker_times) + stats["encode"]

            record = EpochRecord(
                epoch=epoch,
                compute_seconds=stats["compute"],
                network_seconds=stats["network"],
                encode_seconds=stats["encode"],
                decode_seconds=stats["decode"],
                train_loss=(
                    stats["loss_sum"] / stats["loss_n"]
                    if stats["loss_n"]
                    else float("nan")
                ),
                test_loss=None,
                bytes_sent=stats["bytes"],
                raw_bytes=stats["raw"],
                num_messages=stats["messages"],
                gradient_nnz=(
                    stats["nnz"] / stats["messages"] if stats["messages"] else 0.0
                ),
            )
            if test_dataset is not None:
                record.test_loss = self.model.full_loss(test_dataset, consensus)
            history.append(record)

        self._theta = consensus
        return history

    # ------------------------------------------------------------------
    @staticmethod
    def _batch_nnz(partition, rows: np.ndarray) -> int:
        indptr = getattr(partition, "indptr", None)
        if indptr is not None:
            return int((indptr[rows + 1] - indptr[rows]).sum())
        return int(rows.size * partition.num_features)

    def _next_rows(self, iters, partitions, batch_sizes, rngs, w) -> np.ndarray:
        try:
            return next(iters[w])
        except StopIteration:
            iters[w] = partitions[w].iter_batches(batch_sizes[w], rngs[w])
            return next(iters[w])

    @property
    def theta(self) -> np.ndarray:
        if not hasattr(self, "_theta"):
            raise RuntimeError("train() has not been run yet")
        return self._theta
