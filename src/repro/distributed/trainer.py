"""Synchronous data-parallel mini-batch SGD over the simulated cluster.

One trainer run reproduces the paper's execution model (§4.1): the
training set is partitioned row-wise over ``W`` workers; in each round
every worker computes the gradient of its next mini-batch, compresses
it, and pushes it to the driver; the driver aggregates, re-compresses,
and broadcasts; every replica applies the decompressed aggregate with
the shared optimizer.  Compute and codec times are measured on this
machine; wire times come from the :class:`~repro.distributed.network.
NetworkModel`.  Per-epoch records accumulate into a
:class:`~repro.distributed.metrics.TrainingHistory`, from which every
end-to-end figure of the paper is derived.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..compression.base import GradientCompressor
from ..data.splits import partition_rows
from ..models.base import Model
from ..optim.optimizers import Optimizer
from ..optim.schedules import ConstantLR, LRSchedule
from .driver import Driver
from .metrics import EpochRecord, TrainingHistory
from .network import NetworkModel
from .worker import Worker

__all__ = ["TrainerConfig", "DistributedTrainer"]

CompressorFactory = Callable[[], GradientCompressor]


@dataclass(frozen=True)
class TrainerConfig:
    """Knobs of a distributed training run.

    Attributes:
        num_workers: ``W`` (paper: 5 / 10 / 50).
        batch_fraction: mini-batch size as a fraction of each worker's
            partition (paper default 10%, §4.1).
        epochs: passes over the full dataset.
        seed: master seed (partitioning + batch shuffling).
        evaluate_test: compute test loss after each epoch (untimed).
        method_label: name recorded in the history (defaults to the
            compressor's registry name).
        compute_seconds_per_nnz: modelled gradient compute time per
            batch nonzero, added on top of measured time (see
            :meth:`repro.distributed.worker.Worker.compute_step`).
    """

    num_workers: int = 10
    batch_fraction: float = 0.1
    epochs: int = 10
    seed: int = 0
    evaluate_test: bool = True
    method_label: Optional[str] = None
    compute_seconds_per_nnz: float = 0.0

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if not 0.0 < self.batch_fraction <= 1.0:
            raise ValueError("batch_fraction must be in (0, 1]")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.compute_seconds_per_nnz < 0:
            raise ValueError("compute_seconds_per_nnz must be non-negative")


class DistributedTrainer:
    """Drives a full simulated training run.

    Args:
        model: the objective (stateless; shared by all workers).
        optimizer: the shared optimizer instance (applied once per
            round to the single source-of-truth ``theta``).
        compressor_factory: zero-arg callable building one compressor
            per worker plus one for the driver (compressors may carry
            state such as error feedback, so instances are not shared).
        network: wire cost model.
        config: run configuration.
        schedule: optional learning-rate schedule over rounds.

    Example:
        >>> from repro.data import kdd10_like, train_test_split
        >>> from repro.models import LogisticRegression
        >>> from repro.optim import Adam
        >>> from repro.core import SketchMLCompressor
        >>> from repro.distributed import (
        ...     DistributedTrainer, TrainerConfig, cluster1_like)
        >>> data = kdd10_like(scale=0.25)
        >>> train, test = train_test_split(data)
        >>> trainer = DistributedTrainer(
        ...     model=LogisticRegression(data.num_features),
        ...     optimizer=Adam(learning_rate=0.1),
        ...     compressor_factory=SketchMLCompressor,
        ...     network=cluster1_like(),
        ...     config=TrainerConfig(num_workers=4, epochs=2),
        ... )
        >>> history = trainer.train(train, test)
        >>> history.num_epochs
        2
    """

    def __init__(
        self,
        model: Model,
        optimizer: Optimizer,
        compressor_factory: CompressorFactory,
        network: NetworkModel,
        config: Optional[TrainerConfig] = None,
        schedule: Optional[LRSchedule] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.compressor_factory = compressor_factory
        self.network = network
        self.config = config or TrainerConfig()
        self.schedule = schedule or ConstantLR()

    # ------------------------------------------------------------------
    def _build_workers(self, train_dataset) -> "list[Worker]":
        cfg = self.config
        partitions = partition_rows(
            train_dataset.num_rows, cfg.num_workers, seed=cfg.seed
        )
        workers = []
        for worker_id, rows in enumerate(partitions):
            partition = train_dataset.subset(rows)
            batch_size = max(1, int(round(partition.num_rows * cfg.batch_fraction)))
            workers.append(
                Worker(
                    worker_id=worker_id,
                    dataset=partition,
                    model=self.model,
                    compressor=self.compressor_factory(),
                    batch_size=batch_size,
                    seed=cfg.seed,
                    compute_seconds_per_nnz=cfg.compute_seconds_per_nnz,
                )
            )
        return workers

    def train(self, train_dataset, test_dataset=None) -> TrainingHistory:
        """Run the configured number of epochs; returns the history."""
        cfg = self.config
        workers = self._build_workers(train_dataset)
        driver = Driver(self.compressor_factory(), self.model.num_parameters)
        theta = self.model.init_theta()
        self.optimizer.prepare(self.model.num_parameters)
        method = cfg.method_label or getattr(
            driver.compressor, "name", type(driver.compressor).__name__
        )
        history = TrainingHistory(
            method=method, model=self.model.name, num_workers=cfg.num_workers
        )
        base_lr = self.optimizer.learning_rate
        round_counter = 0
        try:
            for epoch in range(cfg.epochs):
                record = self._run_epoch(
                    epoch, workers, driver, theta, base_lr, round_counter
                )
                round_counter += max(w.batches_per_epoch for w in workers)
                if cfg.evaluate_test and test_dataset is not None:
                    record.test_loss = self.model.full_loss(test_dataset, theta)
                history.append(record)
        finally:
            self.optimizer.learning_rate = base_lr
        self._theta = theta
        return history

    @property
    def theta(self) -> np.ndarray:
        """Final model parameters of the last :meth:`train` call."""
        if not hasattr(self, "_theta"):
            raise RuntimeError("train() has not been run yet")
        return self._theta

    # ------------------------------------------------------------------
    def _run_epoch(
        self,
        epoch: int,
        workers: "list[Worker]",
        driver: Driver,
        theta: np.ndarray,
        base_lr: float,
        round_counter: int,
    ) -> EpochRecord:
        compute_seconds = 0.0
        network_seconds = 0.0
        encode_seconds = 0.0
        decode_seconds = 0.0
        bytes_sent = 0
        raw_bytes = 0
        num_messages = 0
        nnz_total = 0
        loss_sum = 0.0
        loss_count = 0

        for worker in workers:
            worker.start_epoch()

        while True:
            step_results = []
            for worker in workers:
                rows = worker.next_batch()
                if rows is None or rows.size == 0:
                    continue
                step_results.append(worker.compute_step(rows, theta))
            if not step_results:
                break

            # Workers run in parallel: the round's worker wall time is
            # the slowest worker's compute + encode.
            compute_seconds += max(
                r.compute_seconds + r.encode_seconds for r in step_results
            )
            encode_seconds += sum(r.encode_seconds for r in step_results)
            messages = [r.message for r in step_results]
            network_seconds += self.network.gather_time(
                [m.num_bytes for m in messages]
            )
            bytes_sent += sum(m.num_bytes for m in messages)
            raw_bytes += sum(m.raw_bytes for m in messages)
            num_messages += len(messages)
            nnz_total += sum(r.gradient_nnz for r in step_results)
            loss_sum += sum(r.local_loss for r in step_results)
            loss_count += len(step_results)

            driver_result = driver.aggregate(messages)
            compute_seconds += (
                driver_result.decode_seconds
                + driver_result.aggregate_seconds
                + driver_result.encode_seconds
            )
            decode_seconds += driver_result.decode_seconds
            encode_seconds += driver_result.encode_seconds
            network_seconds += self.network.broadcast_time(
                driver_result.broadcast_message.num_bytes, len(step_results)
            )

            self.optimizer.learning_rate = base_lr * self.schedule(round_counter)
            t0 = time.perf_counter()
            if driver_result.keys.size:
                self.optimizer.step(theta, driver_result.keys, driver_result.values)
            compute_seconds += time.perf_counter() - t0
            round_counter += 1

        return EpochRecord(
            epoch=epoch,
            compute_seconds=compute_seconds,
            network_seconds=network_seconds,
            encode_seconds=encode_seconds,
            decode_seconds=decode_seconds,
            train_loss=loss_sum / loss_count if loss_count else float("nan"),
            test_loss=None,
            bytes_sent=bytes_sent,
            raw_bytes=raw_bytes,
            num_messages=num_messages,
            gradient_nnz=nnz_total / num_messages if num_messages else 0.0,
        )
