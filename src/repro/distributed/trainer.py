"""Synchronous data-parallel mini-batch SGD over the simulated cluster.

One trainer run reproduces the paper's execution model (§4.1): the
training set is partitioned row-wise over ``W`` workers; in each round
every worker computes the gradient of its next mini-batch, compresses
it, and pushes it to the driver; the driver aggregates, re-compresses,
and broadcasts; every replica applies the decompressed aggregate with
the shared optimizer.  Compute and codec times are measured on this
machine; wire times come from the :class:`~repro.distributed.network.
NetworkModel`.  Per-epoch records accumulate into a
:class:`~repro.distributed.metrics.TrainingHistory`, from which every
end-to-end figure of the paper is derived.
"""

from __future__ import annotations

import copy
import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .. import telemetry
from ..compression.base import GradientCompressor
from ..data.splits import partition_rows
from ..models.base import Model
from ..optim.optimizers import Optimizer
from ..optim.schedules import ConstantLR, LRSchedule
from ..telemetry.epoch import EpochAccumulator
from .driver import Driver
from .metrics import EpochRecord, TrainingHistory
from .network import NetworkModel
from .worker import Worker

__all__ = ["TrainerConfig", "DistributedTrainer"]

#: Mirrors :data:`repro.runtime.transport.TRANSPORT_BACKENDS`; kept as a
#: literal here so importing the trainer does not import the runtime
#: package (which imports this package's workers — lazy imports below
#: break the cycle).
_BACKENDS = ("sim", "mp", "tcp", "aio")

CompressorFactory = Callable[[], GradientCompressor]


@dataclass(frozen=True)
class TrainerConfig:
    """Knobs of a distributed training run.

    Attributes:
        num_workers: ``W`` (paper: 5 / 10 / 50).
        batch_fraction: mini-batch size as a fraction of each worker's
            partition (paper default 10%, §4.1).
        epochs: passes over the full dataset.
        seed: master seed (partitioning + batch shuffling).
        evaluate_test: compute test loss after each epoch (untimed).
        method_label: name recorded in the history (defaults to the
            compressor's registry name).
        compute_seconds_per_nnz: modelled gradient compute time per
            batch nonzero, added on top of measured time (see
            :meth:`repro.distributed.worker.Worker.compute_step`).
        backend: execution backend.  ``"sim"`` (default) runs the
            simulated single-process loop below — the figure-benchmark
            path, unchanged.  ``"mp"`` / ``"tcp"`` / ``"aio"`` run the
            same training semantics over real spawned worker processes
            via :class:`repro.runtime.RuntimeCluster`; gradient
            exchanges round-trip through the serialized wire bytes and
            model updates are bit-identical to ``"sim"`` for the same
            seed.
    """

    num_workers: int = 10
    batch_fraction: float = 0.1
    epochs: int = 10
    seed: int = 0
    evaluate_test: bool = True
    method_label: Optional[str] = None
    compute_seconds_per_nnz: float = 0.0
    backend: str = "sim"

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if not 0.0 < self.batch_fraction <= 1.0:
            raise ValueError("batch_fraction must be in (0, 1]")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.compute_seconds_per_nnz < 0:
            raise ValueError("compute_seconds_per_nnz must be non-negative")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {_BACKENDS}"
            )


class DistributedTrainer:
    """Drives a full simulated training run.

    Args:
        model: the objective (stateless; shared by all workers).
        optimizer: the shared optimizer instance (applied once per
            round to the single source-of-truth ``theta``).
        compressor_factory: zero-arg callable building one compressor
            per worker plus one for the driver (compressors may carry
            state such as error feedback, so instances are not shared).
        network: wire cost model.
        config: run configuration.
        schedule: optional learning-rate schedule over rounds.
        runtime: optional :class:`repro.runtime.RuntimeConfig` with
            supervision / fault-injection knobs for the real backends
            (its ``backend`` field is overridden by
            ``config.backend``).  Ignored when ``config.backend`` is
            ``"sim"``.

    Example:
        >>> from repro.data import kdd10_like, train_test_split
        >>> from repro.models import LogisticRegression
        >>> from repro.optim import Adam
        >>> from repro.core import SketchMLCompressor
        >>> from repro.distributed import (
        ...     DistributedTrainer, TrainerConfig, cluster1_like)
        >>> data = kdd10_like(scale=0.25)
        >>> train, test = train_test_split(data)
        >>> trainer = DistributedTrainer(
        ...     model=LogisticRegression(data.num_features),
        ...     optimizer=Adam(learning_rate=0.1),
        ...     compressor_factory=SketchMLCompressor,
        ...     network=cluster1_like(),
        ...     config=TrainerConfig(num_workers=4, epochs=2),
        ... )
        >>> history = trainer.train(train, test)
        >>> history.num_epochs
        2
    """

    def __init__(
        self,
        model: Model,
        optimizer: Optimizer,
        compressor_factory: CompressorFactory,
        network: NetworkModel,
        config: Optional[TrainerConfig] = None,
        schedule: Optional[LRSchedule] = None,
        runtime=None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.compressor_factory = compressor_factory
        self.network = network
        self.config = config or TrainerConfig()
        self.schedule = schedule or ConstantLR()
        self.runtime = runtime

    # ------------------------------------------------------------------
    def _build_workers(self, train_dataset) -> "list[Worker]":
        cfg = self.config
        partitions = partition_rows(
            train_dataset.num_rows, cfg.num_workers, seed=cfg.seed
        )
        workers = []
        for worker_id, rows in enumerate(partitions):
            partition = train_dataset.subset(rows)
            batch_size = max(1, int(round(partition.num_rows * cfg.batch_fraction)))
            workers.append(
                Worker(
                    worker_id=worker_id,
                    dataset=partition,
                    model=self.model,
                    compressor=self.compressor_factory(),
                    batch_size=batch_size,
                    seed=cfg.seed,
                    compute_seconds_per_nnz=cfg.compute_seconds_per_nnz,
                )
            )
        return workers

    def train(self, train_dataset, test_dataset=None) -> TrainingHistory:
        """Run the configured number of epochs; returns the history."""
        cfg = self.config
        if cfg.backend != "sim":
            return self._train_runtime(train_dataset, test_dataset)
        workers = self._build_workers(train_dataset)
        driver = Driver(self.compressor_factory(), self.model.num_parameters)
        theta = self.model.init_theta()
        self.optimizer.prepare(self.model.num_parameters)
        method = cfg.method_label or getattr(
            driver.compressor, "name", type(driver.compressor).__name__
        )
        history = TrainingHistory(
            method=method, model=self.model.name, num_workers=cfg.num_workers
        )
        base_lr = self.optimizer.learning_rate
        round_counter = 0
        try:
            for epoch in range(cfg.epochs):
                record = self._run_epoch(
                    epoch, workers, driver, theta, base_lr, round_counter
                )
                round_counter += max(w.batches_per_epoch for w in workers)
                if cfg.evaluate_test and test_dataset is not None:
                    record.test_loss = self.model.full_loss(test_dataset, theta)
                history.append(record)
        finally:
            self.optimizer.learning_rate = base_lr
        self._theta = theta
        return history

    @property
    def theta(self) -> np.ndarray:
        """Final model parameters of the last :meth:`train` call."""
        if not hasattr(self, "_theta"):
            raise RuntimeError("train() has not been run yet")
        return self._theta

    # ------------------------------------------------------------------
    # real execution backends (mp / tcp) via repro.runtime
    # ------------------------------------------------------------------
    def _check_wire_serializable(self) -> None:
        """Real backends ship gradients as wire bytes — probe that the
        configured compressor produces serializable messages before
        spawning processes, so the failure is immediate and named."""
        from ..core.serialization import serialize_message

        probe = self.compressor_factory()
        message = probe.compress(
            np.array([0], dtype=np.int64),
            np.array([1e-3], dtype=np.float64),
            self.model.num_parameters,
        )
        try:
            serialize_message(message)
        except TypeError as exc:
            raise ValueError(
                f"backend {self.config.backend!r} requires a compressor "
                f"with a wire format (SketchML family); "
                f"{type(probe).__name__} messages cannot be serialized"
            ) from exc

    def _build_bootstraps(
        self,
        train_dataset,
        heartbeat_interval: float,
        heartbeat_jitter: float,
    ):
        from .. import sanitize
        from ..runtime import WorkerBootstrap

        cfg = self.config
        partitions = partition_rows(
            train_dataset.num_rows, cfg.num_workers, seed=cfg.seed
        )
        bootstraps = []
        for worker_id, rows in enumerate(partitions):
            partition = train_dataset.subset(rows)
            batch_size = max(1, int(round(partition.num_rows * cfg.batch_fraction)))
            bootstraps.append(
                WorkerBootstrap(
                    worker_id=worker_id,
                    dataset=partition,
                    model=self.model,
                    optimizer=copy.deepcopy(self.optimizer),
                    compressor=self.compressor_factory(),
                    batch_size=batch_size,
                    seed=cfg.seed,
                    compute_seconds_per_nnz=cfg.compute_seconds_per_nnz,
                    heartbeat_interval=heartbeat_interval,
                    heartbeat_jitter=heartbeat_jitter,
                    sanitize=bool(sanitize.enabled()),
                    trace_dir=telemetry.worker_trace_dir(),
                    run_id=telemetry.active_run_id(),
                )
            )
        return bootstraps

    def _train_runtime(self, train_dataset, test_dataset) -> TrainingHistory:
        """The simulated loop's semantics over a real worker cluster.

        Same partitioning, batch shuffling, aggregation order, and
        learning-rate schedule indexing as :meth:`_run_epoch`, so a
        fixed seed produces bit-identical model updates on every
        backend; only the time accounting differs (wall-clock instead
        of the network cost model — see ``docs/runtime.md``).
        """
        from ..core.serialization import serialize_message
        from ..runtime import RuntimeCluster, RuntimeConfig

        cfg = self.config
        runtime_cfg = self.runtime or RuntimeConfig()
        if runtime_cfg.backend != cfg.backend:
            runtime_cfg = dataclasses.replace(runtime_cfg, backend=cfg.backend)
        self._check_wire_serializable()
        bootstraps = self._build_bootstraps(
            train_dataset,
            runtime_cfg.supervision.heartbeat_interval,
            runtime_cfg.supervision.heartbeat_jitter,
        )
        driver = Driver(self.compressor_factory(), self.model.num_parameters)
        theta = self.model.init_theta()
        self.optimizer.prepare(self.model.num_parameters)
        method = cfg.method_label or getattr(
            driver.compressor, "name", type(driver.compressor).__name__
        )
        history = TrainingHistory(
            method=method, model=self.model.name, num_workers=cfg.num_workers
        )
        base_lr = self.optimizer.learning_rate
        round_counter = 0  # schedule index: counts aggregated rounds only
        protocol_round = 0  # wire round id: unique per STEP, never reused
        try:
            with RuntimeCluster(
                bootstraps, runtime_cfg, network=self.network
            ) as cluster:
                for epoch in range(cfg.epochs):
                    record, rounds, protocol_round = self._run_runtime_epoch(
                        epoch, cluster, driver, theta, base_lr,
                        round_counter, protocol_round, serialize_message,
                    )
                    round_counter += rounds
                    if cfg.evaluate_test and test_dataset is not None:
                        record.test_loss = self.model.full_loss(
                            test_dataset, theta
                        )
                    record.dropped_workers = dict(cluster.dropped_workers)
                    history.append(record)
        finally:
            self.optimizer.learning_rate = base_lr
        self._theta = theta
        return history

    def _run_runtime_epoch(
        self,
        epoch: int,
        cluster,
        driver: Driver,
        theta: np.ndarray,
        base_lr: float,
        round_counter: int,
        protocol_round: int,
        serialize_message,
    ):
        acc = EpochAccumulator(epoch)
        rounds = 0

        with telemetry.context(epoch=epoch), telemetry.span("trainer.epoch"):
            cluster.start_epoch(epoch)
            while True:
                wire_round = protocol_round
                protocol_round += 1
                with telemetry.context(round=wire_round), \
                        telemetry.span("trainer.round"):
                    t0 = time.perf_counter()
                    results = cluster.step(wire_round, base_lr)
                    t1 = time.perf_counter()
                    active = [r for r in results.values() if r.has_batch]
                    if not active:
                        break

                    # Workers genuinely run in parallel here; the
                    # gather wire cost is the measured round trip minus
                    # the slowest worker's own compute + encode (an
                    # approximation — see docs/runtime.md — where the
                    # sim backend instead uses the NetworkModel
                    # formulas).
                    worker_busy = max(
                        r.compute_seconds + r.encode_seconds for r in active
                    )
                    acc.add_seconds("compute", worker_busy)
                    acc.add_seconds(
                        "network", max(0.0, (t1 - t0) - worker_busy)
                    )
                    acc.add_seconds(
                        "encode", sum(r.encode_seconds for r in active)
                    )
                    messages = [r.message for r in active]
                    acc.add_counts(
                        bytes_sent=sum(r.message_bytes for r in active),
                        raw_bytes=sum(m.raw_bytes for m in messages),
                        num_messages=len(messages),
                        gradient_nnz=sum(r.gradient_nnz for r in active),
                    )
                    acc.add_loss(
                        sum(r.local_loss for r in active), len(active)
                    )

                    # Glue spans tile the round for critical-path
                    # attribution: aggregate (decode + merge + encode,
                    # including the broadcast serialization), then the
                    # broadcast fanout/gather (inside the cluster),
                    # then the driver-side apply.
                    with telemetry.span("trainer.aggregate") as agg_span:
                        driver_result = driver.aggregate(messages)
                        agg_span.set_attrs(
                            decode_s=driver_result.decode_seconds,
                            aggregate_s=driver_result.aggregate_seconds,
                            encode_s=driver_result.encode_seconds,
                        )
                        acc.add_seconds(
                            "compute",
                            driver_result.decode_seconds
                            + driver_result.aggregate_seconds
                            + driver_result.encode_seconds,
                        )
                        acc.add_seconds(
                            "decode", driver_result.decode_seconds
                        )
                        acc.add_seconds(
                            "encode", driver_result.encode_seconds
                        )
                        lr = base_lr * self.schedule(round_counter + rounds)
                        update_bytes = serialize_message(
                            driver_result.broadcast_message
                        )
                    t2 = time.perf_counter()
                    cluster.broadcast(
                        wire_round, lr, update_bytes,
                        message=driver_result.broadcast_message,
                    )
                    acc.add_seconds("network", time.perf_counter() - t2)

                    with telemetry.span("trainer.apply"):
                        self.optimizer.learning_rate = lr
                        t3 = time.perf_counter()
                        if driver_result.keys.size:
                            self.optimizer.step(
                                theta,
                                driver_result.keys,
                                driver_result.values,
                            )
                        acc.add_seconds(
                            "compute", time.perf_counter() - t3
                        )
                    rounds += 1

        record = EpochRecord(test_loss=None, **acc.record_fields())
        return record, rounds, protocol_round

    # ------------------------------------------------------------------
    def _run_epoch(
        self,
        epoch: int,
        workers: "list[Worker]",
        driver: Driver,
        theta: np.ndarray,
        base_lr: float,
        round_counter: int,
    ) -> EpochRecord:
        acc = EpochAccumulator(epoch)

        with telemetry.context(epoch=epoch), telemetry.span("trainer.epoch"):
            for worker in workers:
                worker.start_epoch()

            while True:
                with telemetry.context(round=round_counter), \
                        telemetry.span("trainer.round"):
                    step_results = []
                    for worker in workers:
                        rows = worker.next_batch()
                        if rows is None or rows.size == 0:
                            continue
                        with telemetry.context(
                            worker=worker.worker_id, phase="step"
                        ), telemetry.span("worker.step") as step_span:
                            result = worker.compute_step(rows, theta)
                            step_span.set_attrs(
                                compute_s=result.compute_seconds,
                                encode_s=result.encode_seconds,
                            )
                            step_results.append(result)
                    if not step_results:
                        break

                    # Workers run in parallel: the round's worker wall
                    # time is the slowest worker's compute + encode.
                    acc.add_seconds("compute", max(
                        r.compute_seconds + r.encode_seconds
                        for r in step_results
                    ))
                    acc.add_seconds(
                        "encode",
                        sum(r.encode_seconds for r in step_results),
                    )
                    messages = [r.message for r in step_results]
                    acc.add_seconds("network", self.network.gather_time(
                        [m.num_bytes for m in messages]
                    ))
                    acc.add_counts(
                        bytes_sent=sum(m.num_bytes for m in messages),
                        raw_bytes=sum(m.raw_bytes for m in messages),
                        num_messages=len(messages),
                        gradient_nnz=sum(
                            r.gradient_nnz for r in step_results
                        ),
                    )
                    acc.add_loss(
                        sum(r.local_loss for r in step_results),
                        len(step_results),
                    )

                    with telemetry.span("trainer.aggregate") as agg_span:
                        driver_result = driver.aggregate(messages)
                        agg_span.set_attrs(
                            decode_s=driver_result.decode_seconds,
                            aggregate_s=driver_result.aggregate_seconds,
                            encode_s=driver_result.encode_seconds,
                        )
                        acc.add_seconds(
                            "compute",
                            driver_result.decode_seconds
                            + driver_result.aggregate_seconds
                            + driver_result.encode_seconds,
                        )
                        acc.add_seconds(
                            "decode", driver_result.decode_seconds
                        )
                        acc.add_seconds(
                            "encode", driver_result.encode_seconds
                        )
                        acc.add_seconds(
                            "network", self.network.broadcast_time(
                                driver_result.broadcast_message.num_bytes,
                                len(step_results),
                            )
                        )
                        self.optimizer.learning_rate = (
                            base_lr * self.schedule(round_counter)
                        )
                    with telemetry.span("trainer.apply"):
                        t0 = time.perf_counter()
                        if driver_result.keys.size:
                            self.optimizer.step(
                                theta,
                                driver_result.keys,
                                driver_result.values,
                            )
                        acc.add_seconds(
                            "compute", time.perf_counter() - t0
                        )
                    round_counter += 1

        return EpochRecord(test_loss=None, **acc.record_fields())
