"""Model/optimizer checkpointing for long simulated runs.

Saves the trained parameter vector plus the optimizer's moment state to
a single ``.npz`` file, so a Table-2-scale convergence run can resume
after interruption (and final models from the benches can be inspected
offline).

Writes are **atomic**: the archive is fully written to a temporary
file in the destination directory and then renamed over the target
with :func:`os.replace`.  A crash mid-write (the exact interruption a
checkpoint exists to survive) can therefore never leave a truncated
archive under the checkpoint name — the old checkpoint, if any,
survives intact.
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional, Tuple

import numpy as np

from ..optim.optimizers import Adam, AdaGrad, Momentum, Optimizer, SGD

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1

_OPTIMIZER_STATE_FIELDS = {
    "sgd": (),
    "momentum": ("_velocity",),
    "adagrad": ("_accum",),
    "adam": ("_m", "_v", "_steps"),
}


def save_checkpoint(
    path: "str | os.PathLike",
    theta: np.ndarray,
    optimizer: Optional[Optimizer] = None,
    epoch: int = 0,
) -> None:
    """Write ``theta`` (and optimizer state, if any) to a ``.npz`` file.

    The write goes to a temporary file in the same directory first and
    is renamed into place only once complete, so an interrupted save
    never corrupts an existing checkpoint.

    Args:
        path: destination file.
        theta: model parameter vector.
        optimizer: if given, its per-dimension state arrays are saved
            so training resumes bit-identically.
        epoch: bookkeeping counter stored alongside.
    """
    arrays = {
        "format_version": np.asarray(_FORMAT_VERSION),
        "epoch": np.asarray(int(epoch)),
        "theta": np.asarray(theta, dtype=np.float64),
    }
    if optimizer is not None:
        name = optimizer.name
        if name not in _OPTIMIZER_STATE_FIELDS:
            raise ValueError(f"cannot checkpoint optimizer {name!r}")
        arrays["optimizer"] = np.asarray(name)
        arrays["learning_rate"] = np.asarray(optimizer.learning_rate)
        for f in _OPTIMIZER_STATE_FIELDS[name]:
            state = getattr(optimizer, f)
            if state is not None:
                arrays[f"opt{f}"] = state
    path = os.fspath(path)
    # np.savez_compressed appends ".npz" to suffix-less *paths*, but
    # writes an open file handle verbatim — go through a handle so the
    # temp name and the final name stay in the caller's control.
    target = path if path.endswith(".npz") else path + ".npz"
    directory = os.path.dirname(target) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(target) + ".tmp-", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, target)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_checkpoint(
    path: "str | os.PathLike",
    optimizer: Optional[Optimizer] = None,
) -> Tuple[np.ndarray, int]:
    """Load a checkpoint; returns ``(theta, epoch)``.

    Args:
        path: checkpoint file.
        optimizer: if given, must match the saved optimizer type; its
            state arrays are restored in place.

    Raises:
        ValueError: version mismatch, or optimizer type mismatch.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        theta = np.asarray(data["theta"], dtype=np.float64).copy()
        epoch = int(data["epoch"])
        if optimizer is not None:
            if "optimizer" not in data:
                raise ValueError("checkpoint holds no optimizer state")
            saved_name = str(data["optimizer"])
            if saved_name != optimizer.name:
                raise ValueError(
                    f"checkpoint holds {saved_name!r} state, got a "
                    f"{optimizer.name!r} optimizer"
                )
            optimizer.learning_rate = float(data["learning_rate"])
            optimizer.prepare(theta.size)
            for f in _OPTIMIZER_STATE_FIELDS[saved_name]:
                key = f"opt{f}"
                if key in data:
                    getattr(optimizer, f)[:] = data[key]
    return theta, epoch


# Ensure the registry above stays consistent with the classes.
assert SGD.name in _OPTIMIZER_STATE_FIELDS
assert Momentum.name in _OPTIMIZER_STATE_FIELDS
assert AdaGrad.name in _OPTIMIZER_STATE_FIELDS
assert Adam.name in _OPTIMIZER_STATE_FIELDS
