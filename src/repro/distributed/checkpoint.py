"""Model/optimizer checkpointing for long simulated runs.

Saves the trained parameter vector plus the optimizer's moment state to
a single ``.npz`` file, so a Table-2-scale convergence run can resume
after interruption (and final models from the benches can be inspected
offline).
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from ..optim.optimizers import Adam, AdaGrad, Momentum, Optimizer, SGD

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1

_OPTIMIZER_STATE_FIELDS = {
    "sgd": (),
    "momentum": ("_velocity",),
    "adagrad": ("_accum",),
    "adam": ("_m", "_v", "_steps"),
}


def save_checkpoint(
    path: "str | os.PathLike",
    theta: np.ndarray,
    optimizer: Optional[Optimizer] = None,
    epoch: int = 0,
) -> None:
    """Write ``theta`` (and optimizer state, if any) to a ``.npz`` file.

    Args:
        path: destination file.
        theta: model parameter vector.
        optimizer: if given, its per-dimension state arrays are saved
            so training resumes bit-identically.
        epoch: bookkeeping counter stored alongside.
    """
    arrays = {
        "format_version": np.asarray(_FORMAT_VERSION),
        "epoch": np.asarray(int(epoch)),
        "theta": np.asarray(theta, dtype=np.float64),
    }
    if optimizer is not None:
        name = optimizer.name
        if name not in _OPTIMIZER_STATE_FIELDS:
            raise ValueError(f"cannot checkpoint optimizer {name!r}")
        arrays["optimizer"] = np.asarray(name)
        arrays["learning_rate"] = np.asarray(optimizer.learning_rate)
        for f in _OPTIMIZER_STATE_FIELDS[name]:
            state = getattr(optimizer, f)
            if state is not None:
                arrays[f"opt{f}"] = state
    np.savez_compressed(path, **arrays)


def load_checkpoint(
    path: "str | os.PathLike",
    optimizer: Optional[Optimizer] = None,
) -> Tuple[np.ndarray, int]:
    """Load a checkpoint; returns ``(theta, epoch)``.

    Args:
        path: checkpoint file.
        optimizer: if given, must match the saved optimizer type; its
            state arrays are restored in place.

    Raises:
        ValueError: version mismatch, or optimizer type mismatch.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        theta = np.asarray(data["theta"], dtype=np.float64).copy()
        epoch = int(data["epoch"])
        if optimizer is not None:
            if "optimizer" not in data:
                raise ValueError("checkpoint holds no optimizer state")
            saved_name = str(data["optimizer"])
            if saved_name != optimizer.name:
                raise ValueError(
                    f"checkpoint holds {saved_name!r} state, got a "
                    f"{optimizer.name!r} optimizer"
                )
            optimizer.learning_rate = float(data["learning_rate"])
            optimizer.prepare(theta.size)
            for f in _OPTIMIZER_STATE_FIELDS[saved_name]:
                key = f"opt{f}"
                if key in data:
                    getattr(optimizer, f)[:] = data[key]
    return theta, epoch


# Ensure the registry above stays consistent with the classes.
assert SGD.name in _OPTIMIZER_STATE_FIELDS
assert Momentum.name in _OPTIMIZER_STATE_FIELDS
assert AdaGrad.name in _OPTIMIZER_STATE_FIELDS
assert Adam.name in _OPTIMIZER_STATE_FIELDS
