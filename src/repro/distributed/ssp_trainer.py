"""Stale-synchronous-parallel (SSP) training — the parameter-server mode.

The paper's execution model is bulk-synchronous Spark, but its lineage
is the parameter-server world: it cites SSP (Ho et al., NIPS 2013,
ref [19]) for the batch-size protocol and the authors' own
heterogeneity-aware parameter server (ref [22]).  This module extends
the reproduction with that substrate: workers run at their own pace,
pushing compressed gradients to a server that applies them
immediately, subject to a *staleness bound* — the fastest worker may
be at most ``staleness`` clock ticks ahead of the slowest.

The simulation is event-driven: each worker's next completion time is
computed from its (measured + modelled, heterogeneity-scaled) compute
time plus the wire time of its compressed message; the server applies
updates in simulated-time order.  Gradients are compressed/decompressed
with real codecs, so SketchML's lossy-but-sign-safe behaviour is
exercised under asynchrony too.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..compression.base import GradientCompressor
from ..data.splits import partition_rows
from ..models.base import Model
from ..optim.optimizers import Optimizer
from .metrics import EpochRecord, TrainingHistory
from .network import NetworkModel

__all__ = ["SSPConfig", "SSPTrainer"]

CompressorFactory = Callable[[], GradientCompressor]


@dataclass(frozen=True)
class SSPConfig:
    """Configuration of a stale-synchronous run.

    Attributes:
        num_workers: worker count.
        staleness: maximum clock gap between fastest and slowest worker
            (0 = bulk-synchronous lockstep).
        batch_fraction: mini-batch fraction of each partition.
        epochs: global data passes (measured in total batches).
        seed: master seed.
        compute_seconds_per_nnz: modelled compute rate (see
            :class:`~repro.distributed.trainer.TrainerConfig`).
        heterogeneity: worker speed multipliers are drawn uniformly
            from ``[1, 1 + heterogeneity]`` — stragglers, the reason
            SSP exists.  0 disables it.
        use_measured_time: include real measured compute in the event
            clock.  Off by default: with only modelled time the event
            interleaving — and therefore the whole run — is exactly
            reproducible for a given seed.
        method_label: label recorded in the history.
    """

    num_workers: int = 10
    staleness: int = 3
    batch_fraction: float = 0.1
    epochs: int = 5
    seed: int = 0
    compute_seconds_per_nnz: float = 1e-4
    heterogeneity: float = 0.5
    use_measured_time: bool = False
    method_label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.staleness < 0:
            raise ValueError("staleness must be non-negative")
        if not 0.0 < self.batch_fraction <= 1.0:
            raise ValueError("batch_fraction must be in (0, 1]")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.heterogeneity < 0:
            raise ValueError("heterogeneity must be non-negative")


@dataclass(order=True)
class _Event:
    ready_at: float
    worker_id: int


class SSPTrainer:
    """Event-driven SSP simulation over real models and codecs.

    Args:
        model: objective shared by all workers.
        optimizer: applied at the server on every arriving gradient.
        compressor_factory: one compressor per worker + one at the server.
        network: wire cost model (point-to-point push + pull).
        config: run configuration.
    """

    def __init__(
        self,
        model: Model,
        optimizer: Optimizer,
        compressor_factory: CompressorFactory,
        network: NetworkModel,
        config: Optional[SSPConfig] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.compressor_factory = compressor_factory
        self.network = network
        self.config = config or SSPConfig()

    def train(self, train_dataset, test_dataset=None) -> TrainingHistory:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        partitions = [
            train_dataset.subset(rows)
            for rows in partition_rows(train_dataset.num_rows, cfg.num_workers,
                                       seed=cfg.seed)
        ]
        batch_sizes = [
            max(1, int(round(p.num_rows * cfg.batch_fraction))) for p in partitions
        ]
        batches_per_epoch = max(
            -(-p.num_rows // b) for p, b in zip(partitions, batch_sizes)
        )
        compressors = [self.compressor_factory() for _ in range(cfg.num_workers)]
        server_codec = self.compressor_factory()
        speed = 1.0 + cfg.heterogeneity * rng.random(cfg.num_workers)

        theta = self.model.init_theta()
        self.optimizer.prepare(self.model.num_parameters)
        method = cfg.method_label or getattr(
            server_codec, "name", type(server_codec).__name__
        )
        history = TrainingHistory(
            method=method, model=self.model.name, num_workers=cfg.num_workers
        )

        clocks = np.zeros(cfg.num_workers, dtype=np.int64)  # batches done
        total_batches_target = cfg.epochs * batches_per_epoch * cfg.num_workers
        batch_rngs = [
            np.random.default_rng(cfg.seed + 7_919 * w)
            for w in range(cfg.num_workers)
        ]
        batch_iters = [
            partitions[w].iter_batches(batch_sizes[w], batch_rngs[w])
            for w in range(cfg.num_workers)
        ]

        # Event queue: all workers start at t=0.  Workers stopped by the
        # staleness gate are parked in `blocked` (not re-queued) and
        # woken when any other worker completes a batch — the slowest
        # worker is never gated, so progress is guaranteed.
        queue: List[_Event] = [_Event(0.0, w) for w in range(cfg.num_workers)]
        heapq.heapify(queue)
        blocked: List[int] = []
        now = 0.0
        completed = 0
        epoch_stats = self._fresh_stats()
        epoch_index = 0

        while completed < total_batches_target and queue:
            event = heapq.heappop(queue)
            worker = event.worker_id
            now = max(now, event.ready_at)

            # SSP gate: too far ahead -> park until a slower worker
            # completes its in-flight batch.
            if clocks[worker] - clocks.min() > cfg.staleness:
                blocked.append(worker)
                continue

            rows = self._next_rows(batch_iters, partitions, batch_sizes,
                                   batch_rngs, worker)
            t0 = time.perf_counter()
            keys, values, loss = self.model.batch_gradient(
                partitions[worker], rows, theta
            )
            message = compressors[worker].compress(
                keys, values, self.model.num_parameters
            )
            measured = time.perf_counter() - t0
            modelled = cfg.compute_seconds_per_nnz * self._batch_nnz(
                partitions[worker], rows
            )
            if cfg.use_measured_time:
                modelled += measured
            compute = modelled * speed[worker]
            push = self.network.transfer_time(message.num_bytes)
            pull = self.network.transfer_time(message.num_bytes)

            # Server applies the decompressed gradient immediately.
            got_keys, got_values = server_codec.decompress(message)
            if got_keys.size:
                self.optimizer.step(theta, got_keys, got_values)

            clocks[worker] += 1
            completed += 1
            finish = now + compute + push + pull
            heapq.heappush(queue, _Event(finish, worker))
            # A clock advanced: blocked workers may pass the gate now.
            for waiting in blocked:
                heapq.heappush(queue, _Event(finish, waiting))
            blocked.clear()

            epoch_stats["compute"] += compute
            epoch_stats["network"] += push + pull
            epoch_stats["bytes"] += message.num_bytes
            epoch_stats["raw"] += message.raw_bytes
            epoch_stats["messages"] += 1
            epoch_stats["nnz"] += keys.size
            epoch_stats["loss_sum"] += loss
            epoch_stats["loss_n"] += 1

            if completed % (batches_per_epoch * cfg.num_workers) == 0:
                record = self._epoch_record(epoch_index, epoch_stats, now + compute)
                if test_dataset is not None:
                    record.test_loss = self.model.full_loss(test_dataset, theta)
                history.append(record)
                epoch_index += 1
                epoch_stats = self._fresh_stats()

        self._theta = theta
        self._final_time = now
        return history

    # ------------------------------------------------------------------
    @staticmethod
    def _fresh_stats() -> dict:
        return {
            "compute": 0.0, "network": 0.0, "bytes": 0, "raw": 0,
            "messages": 0, "nnz": 0, "loss_sum": 0.0, "loss_n": 0,
        }

    @staticmethod
    def _batch_nnz(partition, rows: np.ndarray) -> int:
        indptr = getattr(partition, "indptr", None)
        if indptr is not None:
            return int((indptr[rows + 1] - indptr[rows]).sum())
        return int(rows.size * partition.num_features)

    def _next_rows(self, batch_iters, partitions, batch_sizes, batch_rngs,
                   worker: int) -> np.ndarray:
        try:
            return next(batch_iters[worker])
        except StopIteration:
            batch_iters[worker] = partitions[worker].iter_batches(
                batch_sizes[worker], batch_rngs[worker]
            )
            return next(batch_iters[worker])

    def _epoch_record(self, epoch: int, stats: dict, wall: float) -> EpochRecord:
        # Workers overlap in wall-clock time; an "epoch" here is the
        # aggregate work of one data pass.  Compute is divided by the
        # worker count to approximate parallel wall time.
        return EpochRecord(
            epoch=epoch,
            compute_seconds=stats["compute"] / max(self.config.num_workers, 1),
            network_seconds=stats["network"] / max(self.config.num_workers, 1),
            encode_seconds=0.0,
            decode_seconds=0.0,
            train_loss=(
                stats["loss_sum"] / stats["loss_n"] if stats["loss_n"] else float("nan")
            ),
            test_loss=None,
            bytes_sent=stats["bytes"],
            raw_bytes=stats["raw"],
            num_messages=stats["messages"],
            gradient_nnz=(
                stats["nnz"] / stats["messages"] if stats["messages"] else 0.0
            ),
        )

    @property
    def theta(self) -> np.ndarray:
        if not hasattr(self, "_theta"):
            raise RuntimeError("train() has not been run yet")
        return self._theta

    @property
    def simulated_seconds(self) -> float:
        """Total simulated wall-clock of the last run."""
        if not hasattr(self, "_final_time"):
            raise RuntimeError("train() has not been run yet")
        return self._final_time
