"""Simulated driver (Spark driver / parameter aggregator).

The driver decompresses worker messages, averages the sparse gradients,
re-compresses the aggregate for broadcast, and applies the optimizer
step.  Decode/aggregate/encode times are measured; the broadcast wire
time is charged by the trainer through the network model.

Design note — what travels back down: the paper says the driver
"broadcasts the updated model", but for a 29M–58M-dimension model an
uncompressed dense broadcast would cost the same for every method and
erase the reported 10× end-to-end gaps; the prototype necessarily sends
the *sparse aggregated update* compressed with the same codec.  We do
the same, and all replicas (driver included) apply the *decompressed*
aggregate so every copy of the model stays bit-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..compression.base import CompressedGradient, GradientCompressor

__all__ = ["Driver", "DriverStepResult", "aggregate_sparse_gradients"]


def aggregate_sparse_gradients(
    gradients: Sequence[Tuple[np.ndarray, np.ndarray]],
    weights: Optional[Sequence[float]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Average sparse gradients: union of keys, per-key mean over workers.

    Each worker's gradient is already the mean over its own batch.
    With ``weights=None`` the global mini-batch is a disjoint union of
    (near-)equal shards, so the aggregate divides the per-key sums by
    the worker count — the classic fixed-membership path, byte-for-byte
    unchanged.  Elastic runs pass explicit ``weights`` (one per
    gradient, summing to 1 — shard-size fractions over the surviving
    membership) and the aggregate is the weighted sum ``Σ wᵢ gᵢ``; with
    equal shards that reduces to the same mean.
    """
    if not gradients:
        raise ValueError("nothing to aggregate")
    num_workers = len(gradients)
    all_keys = np.concatenate([keys for keys, _ in gradients])
    if weights is None:
        all_values = np.concatenate([values for _, values in gradients])
    else:
        if len(weights) != num_workers:
            raise ValueError(
                f"{len(weights)} weights for {num_workers} gradients"
            )
        all_values = np.concatenate(
            [
                np.asarray(values, dtype=np.float64) * float(w)
                for (_, values), w in zip(gradients, weights)
            ]
        )
    if all_keys.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    unique_keys, inverse = np.unique(all_keys, return_inverse=True)
    summed = np.zeros(unique_keys.size, dtype=np.float64)
    np.add.at(summed, inverse, all_values)
    if weights is None:
        summed /= num_workers
    return unique_keys, summed


@dataclass
class DriverStepResult:
    """Output of one driver aggregation round."""

    keys: np.ndarray
    values: np.ndarray
    broadcast_message: CompressedGradient
    decode_seconds: float
    aggregate_seconds: float
    encode_seconds: float


class Driver:
    """Aggregation endpoint of the simulated cluster.

    Args:
        compressor: the driver's compressor instance (used both to
            decode worker messages and to encode the broadcast).
        dimension: model parameter count.
    """

    def __init__(self, compressor: GradientCompressor, dimension: int) -> None:
        self.compressor = compressor
        self.dimension = int(dimension)

    def aggregate(
        self,
        messages: Sequence[CompressedGradient],
        weights: Optional[Sequence[float]] = None,
    ) -> DriverStepResult:
        """Decode all worker messages, average, re-encode for broadcast.

        ``weights`` re-weights the aggregate over an uneven membership
        (elastic runs); ``None`` is the classic per-key mean.
        """
        t0 = time.perf_counter()
        gradients: List[Tuple[np.ndarray, np.ndarray]] = [
            self.compressor.decompress(message) for message in messages
        ]
        t1 = time.perf_counter()
        keys, values = aggregate_sparse_gradients(gradients, weights)
        t2 = time.perf_counter()
        broadcast = self.compressor.compress(keys, values, self.dimension)
        # Replicas apply exactly what they can decode, so the driver
        # decodes its own broadcast too — model copies stay identical.
        keys, values = self.compressor.decompress(broadcast)
        t3 = time.perf_counter()
        return DriverStepResult(
            keys=keys,
            values=values,
            broadcast_message=broadcast,
            decode_seconds=t1 - t0,
            aggregate_seconds=t2 - t1,
            encode_seconds=t3 - t2,
        )

    def __repr__(self) -> str:
        return f"Driver(dimension={self.dimension})"
