"""Golden wire-fixture tooling: ``repro golden --check/--write``.

``tests/golden/wire/`` pins the serialized gradient format
byte-for-byte: for every case in :data:`CASE_SPECS` the directory
holds the committed ``serialize_message`` output at payload version 1
(``<name>.bin``) and at payload version 2 with entropy coding enabled
(``<name>.v2.bin``), plus a manifest (format
:data:`GOLDEN_FORMAT`) recording sizes, SHA-256 digests, and the
digests of the decoded key/value arrays.

:func:`check_goldens` re-derives every cell of the
{payload version x kernel path} matrix from the committed case
parameters and fails closed on any drift: a missing file, a digest
mismatch, an encoder that no longer reproduces the committed bytes
under either kernel path, or a v2 payload that decodes to a different
message than the v1 bytes.  :func:`write_goldens` regenerates the
fixture files and manifest deliberately — the only sanctioned way to
change them (bump the payload version; never mutate v1 bytes).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from . import kernels
from .core.compressor import SketchMLCompressor
from .core.config import SketchMLConfig
from .core.serialization import deserialize_message, serialize_message

__all__ = [
    "GOLDEN_FORMAT",
    "CASE_SPECS",
    "default_wire_dir",
    "regenerate_gradient",
    "case_message",
    "case_payloads",
    "check_goldens",
    "write_goldens",
]

#: Manifest format tag; /2 added the ``v2`` (entropy-coded payload
#: version 2) fixture alongside the frozen v1 bytes of each case.
GOLDEN_FORMAT = "repro-golden-wire/2"

#: The canonical fixture matrix: a spread of codec configurations
#: (sketch/quantization variants, hash families, packed indexes,
#: one-sided gradients).  These parameters are the source of truth —
#: the manifest and fixture files are derived from them.
CASE_SPECS: Tuple[Dict, ...] = (
    {"name": "full", "overrides": {}, "nnz": 5000,
     "dimension": 200000, "seed": 11, "sign_mode": "mixed"},
    {"name": "full_tab", "overrides": {"hash_family": "tabulation"},
     "nnz": 5000, "dimension": 200000, "seed": 12, "sign_mode": "mixed"},
    {"name": "full_decay", "overrides": {"compensate_decay": True},
     "nnz": 3000, "dimension": 120000, "seed": 13, "sign_mode": "mixed"},
    {"name": "full_g4", "overrides": {"num_groups": 4, "num_buckets": 64},
     "nnz": 4000, "dimension": 160000, "seed": 14, "sign_mode": "mixed"},
    {"name": "quan", "overrides": {"enable_minmax": False},
     "nnz": 2500, "dimension": 100000, "seed": 15, "sign_mode": "mixed"},
    {"name": "quan_packed",
     "overrides": {"enable_minmax": False, "pack_index_bits": True},
     "nnz": 2500, "dimension": 100000, "seed": 16, "sign_mode": "mixed"},
    {"name": "keys_only",
     "overrides": {"enable_quantization": False, "enable_minmax": False},
     "nnz": 2000, "dimension": 80000, "seed": 17, "sign_mode": "mixed"},
    {"name": "tiny_raw", "overrides": {}, "nnz": 5,
     "dimension": 1000, "seed": 18, "sign_mode": "mixed"},
    {"name": "one_sided_pos", "overrides": {}, "nnz": 1500,
     "dimension": 60000, "seed": 19, "sign_mode": "pos"},
)

_KERNEL_MODES = ("scalar", "vectorised")


def default_wire_dir() -> str:
    """``tests/golden/wire`` under the current working directory."""
    return os.path.join("tests", "golden", "wire")


def regenerate_gradient(case: Dict) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministically rebuild the gradient a case was captured from."""
    rng = np.random.default_rng(case["seed"])
    keys = np.sort(
        rng.choice(case["dimension"], size=case["nnz"], replace=False)
    )
    values = rng.laplace(scale=0.01, size=case["nnz"])
    values[values == 0.0] = 1e-4
    if case["sign_mode"] == "pos":
        values = np.abs(values)
    return keys, values


def case_config(case: Dict) -> SketchMLConfig:
    return SketchMLConfig.full(seed=case["seed"], **case["overrides"])


def case_message(case: Dict):
    """Compress the regenerated gradient under the case's config."""
    keys, values = regenerate_gradient(case)
    return SketchMLCompressor(case_config(case)).compress(
        keys, values, case["dimension"]
    )


def case_payloads(case: Dict) -> Dict[int, bytes]:
    """Both payload-version cells of one case.

    Version 1 is the frozen legacy encoding; version 2 is serialized
    with entropy coding *requested* (the encoder falls back to the
    plain block deterministically when rANS does not win, so the bytes
    are still unique per case).
    """
    message = case_message(case)
    return {
        1: serialize_message(message),
        2: serialize_message(message, version=2, entropy=True),
    }


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _decoded_digests(case: Dict, data: bytes) -> Tuple[str, str]:
    decoded_keys, decoded_values = SketchMLCompressor(
        case_config(case)
    ).decompress(deserialize_message(data))
    keys_digest = _sha256(
        np.ascontiguousarray(decoded_keys, dtype="<i8").tobytes()
    )
    values_digest = _sha256(
        np.ascontiguousarray(decoded_values, dtype="<f8").tobytes()
    )
    return keys_digest, values_digest


def _fixture_path(wire_dir: str, case: Dict, version: int) -> str:
    suffix = ".bin" if version == 1 else ".v2.bin"
    return os.path.join(wire_dir, case["name"] + suffix)


def _forced(mode: str):
    return (
        kernels.scalar_kernels() if mode == "scalar"
        else kernels.vectorised_kernels()
    )


def write_goldens(wire_dir: Optional[str] = None) -> Dict:
    """Regenerate every fixture file and the manifest; returns the
    manifest dict.  Refuses to write if the two kernel paths disagree
    on any cell (that is a codec bug, not a fixture refresh)."""
    wire_dir = wire_dir or default_wire_dir()
    os.makedirs(wire_dir, exist_ok=True)
    cases = []
    for case in CASE_SPECS:
        per_mode = {}
        for mode in _KERNEL_MODES:
            with _forced(mode):
                per_mode[mode] = case_payloads(case)
        if per_mode["scalar"] != per_mode["vectorised"]:
            raise RuntimeError(
                f"kernel paths disagree on case {case['name']!r}; "
                "refusing to write goldens"
            )
        payloads = per_mode["scalar"]
        keys_digest, values_digest = _decoded_digests(case, payloads[1])
        entry = dict(case)
        entry["num_bytes"] = len(payloads[1])
        entry["sha256"] = _sha256(payloads[1])
        entry["v2"] = {
            "num_bytes": len(payloads[2]),
            "sha256": _sha256(payloads[2]),
        }
        entry["decoded_keys_sha256"] = keys_digest
        entry["decoded_values_sha256"] = values_digest
        cases.append(entry)
        for version in (1, 2):
            with open(_fixture_path(wire_dir, case, version), "wb") as f:
                f.write(payloads[version])
    manifest = {"format": GOLDEN_FORMAT, "cases": cases}
    with open(os.path.join(wire_dir, "manifest.json"), "w") as f:
        json.dump(manifest, f, indent=1)
        f.write("\n")
    return manifest


def check_goldens(wire_dir: Optional[str] = None) -> List[str]:
    """Verify every {payload version x kernel path} cell against the
    committed fixtures.  Returns a list of human-readable problems —
    empty means the wire format is exactly as pinned."""
    wire_dir = wire_dir or default_wire_dir()
    problems: List[str] = []
    manifest_path = os.path.join(wire_dir, "manifest.json")
    try:
        with open(manifest_path) as f:
            manifest = json.load(f)
    except (OSError, ValueError) as exc:
        return [f"cannot read {manifest_path}: {exc}"]
    if manifest.get("format") != GOLDEN_FORMAT:
        problems.append(
            f"manifest format {manifest.get('format')!r} != {GOLDEN_FORMAT!r}"
        )
    by_name = {c["name"]: c for c in manifest.get("cases", [])}
    for case in CASE_SPECS:
        entry = by_name.get(case["name"])
        if entry is None:
            problems.append(f"{case['name']}: missing from manifest")
            continue
        committed: Dict[int, bytes] = {}
        expected = {
            1: (entry.get("num_bytes"), entry.get("sha256")),
            2: (
                entry.get("v2", {}).get("num_bytes"),
                entry.get("v2", {}).get("sha256"),
            ),
        }
        for version in (1, 2):
            path = _fixture_path(wire_dir, case, version)
            try:
                with open(path, "rb") as f:
                    data = f.read()
            except OSError as exc:
                problems.append(f"{case['name']}: cannot read {path}: {exc}")
                continue
            committed[version] = data
            num_bytes, digest = expected[version]
            if len(data) != num_bytes or _sha256(data) != digest:
                problems.append(
                    f"{case['name']}: v{version} fixture bytes do not "
                    "match the manifest digest"
                )
        for mode in _KERNEL_MODES:
            with _forced(mode):
                payloads = case_payloads(case)
            for version in (1, 2):
                if version not in committed:
                    continue
                if payloads[version] != committed[version]:
                    problems.append(
                        f"{case['name']}: re-encoding at payload v{version} "
                        f"under the {mode} kernels drifted from the "
                        "committed bytes"
                    )
        if 1 in committed and 2 in committed:
            # The v2 payload must carry the identical message: decoding
            # it and re-serializing at v1 must reproduce the v1 bytes.
            try:
                rederived = serialize_message(
                    deserialize_message(committed[2])
                )
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                problems.append(
                    f"{case['name']}: v2 fixture failed to decode: {exc!r}"
                )
            else:
                if rederived != committed[1]:
                    problems.append(
                        f"{case['name']}: v2 fixture decodes to a "
                        "different message than the v1 bytes"
                    )
            keys_digest, values_digest = _decoded_digests(
                case, committed[1]
            )
            if (
                keys_digest != entry.get("decoded_keys_sha256")
                or values_digest != entry.get("decoded_values_sha256")
            ):
                problems.append(
                    f"{case['name']}: decoded key/value digests drifted"
                )
    return problems
