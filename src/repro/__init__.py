"""repro — a full reproduction of SketchML (SIGMOD 2018).

SketchML compresses the sparse key–value gradients exchanged by
distributed SGD with three components: quantile-bucket quantification
of values, a novel MinMaxSketch over the bucket indexes, and lossless
delta-binary encoding of keys.  This package implements the complete
system plus every substrate the paper's evaluation depends on:

* :mod:`repro.core` — the SketchML compressor and its components;
* :mod:`repro.sketch` — quantile (GK, KLL) and frequency (Count-Min,
  Count Sketch, Bloom) sketch substrates, built from scratch;
* :mod:`repro.compression` — baseline codecs (Adam/identity, ZipML,
  1-bit SGD, top-k, float16, lossless key codecs);
* :mod:`repro.data` — sparse structures, synthetic dataset generators
  calibrated to KDD10/KDD12/CTR, LIBSVM I/O;
* :mod:`repro.models` / :mod:`repro.optim` — LR, SVM, Linear, MLP and
  sparse SGD/Momentum/AdaGrad/Adam;
* :mod:`repro.distributed` — the simulated cluster (workers, driver,
  network cost model, synchronous trainer);
* :mod:`repro.bench` — harness regenerating every table and figure.

Quickstart::

    from repro import (SketchMLCompressor, DistributedTrainer,
                       TrainerConfig, cluster1_like)
    from repro.data import kdd10_like, train_test_split
    from repro.models import LogisticRegression
    from repro.optim import Adam

    data = kdd10_like()
    train, test = train_test_split(data)
    trainer = DistributedTrainer(
        model=LogisticRegression(data.num_features),
        optimizer=Adam(learning_rate=0.1),
        compressor_factory=SketchMLCompressor,
        network=cluster1_like(),
        config=TrainerConfig(num_workers=10, epochs=5),
    )
    history = trainer.train(train, test)
    print(history.avg_epoch_seconds, history.avg_compression_rate)
"""

from .compression import (
    CompressedGradient,
    ErrorFeedbackCompressor,
    GradientCompressor,
    HeavyHitterSketchMLCompressor,
    IdentityCompressor,
    OneBitCompressor,
    QSGDCompressor,
    TopKCompressor,
    ZipMLCompressor,
    available_compressors,
    make_compressor,
)
from .core import (
    GroupedMinMaxSketch,
    MinMaxSketch,
    QuantileBucketQuantizer,
    SketchMLCompressor,
    SketchMLConfig,
    decode_keys,
    encode_keys,
)
from .distributed import (
    DistributedTrainer,
    LocalSGDConfig,
    LocalSGDTrainer,
    SSPConfig,
    SSPTrainer,
    TrainerConfig,
    TrainingHistory,
    cluster1_like,
    cluster2_like,
    wan_like,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SketchMLCompressor",
    "SketchMLConfig",
    "QuantileBucketQuantizer",
    "MinMaxSketch",
    "GroupedMinMaxSketch",
    "encode_keys",
    "decode_keys",
    "CompressedGradient",
    "GradientCompressor",
    "IdentityCompressor",
    "ZipMLCompressor",
    "OneBitCompressor",
    "TopKCompressor",
    "QSGDCompressor",
    "HeavyHitterSketchMLCompressor",
    "ErrorFeedbackCompressor",
    "make_compressor",
    "available_compressors",
    "DistributedTrainer",
    "TrainerConfig",
    "SSPTrainer",
    "SSPConfig",
    "LocalSGDTrainer",
    "LocalSGDConfig",
    "TrainingHistory",
    "cluster1_like",
    "cluster2_like",
    "wan_like",
]
