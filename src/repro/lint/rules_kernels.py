"""Rules guarding the scalar/vectorised dual-kernel contract.

Since the codec hot path exists twice (scalar reference vs numpy
kernels behind :mod:`repro.kernels`), the biggest correctness risk is
silent drift: a branch added on one side only, or a Python-level loop
sneaking onto the vectorised path.  These rules make the dispatch
structure itself checkable.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from .framework import (
    Finding,
    ModuleSource,
    Rule,
    SEVERITY_ERROR,
    dotted_name,
    register_rule,
)
from .policy import DUAL_PATH_MODULES, VECTORISED_MODULES, is_core_or_sketch

__all__ = ["KernelParityRule", "HotLoopRule"]

_SWITCH_NAME = "vectorised_enabled"


def _references_switch(node: ast.AST) -> bool:
    """True if any descendant references ``vectorised_enabled``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == _SWITCH_NAME:
            return True
        if isinstance(sub, ast.Name) and sub.id == _SWITCH_NAME:
            return True
    return False


def _switch_polarity(test: ast.AST) -> Optional[bool]:
    """How an ``if`` test uses the kernel switch.

    Returns ``True`` when the branch body is the *vectorised* side
    (positive ``vectorised_enabled()`` reference), ``False`` when the
    body is the *scalar* side (the reference appears under a ``not``),
    and ``None`` when the test does not involve the switch.
    """
    for sub in ast.walk(test):
        if isinstance(sub, ast.UnaryOp) and isinstance(sub.op, ast.Not):
            if _references_switch(sub.operand):
                return False
    if _references_switch(test):
        return True
    return None


def _terminates(body: List[ast.stmt]) -> bool:
    """True when control cannot fall out of the end of ``body``."""
    if not body:
        return False
    return isinstance(body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))


@register_rule
class KernelParityRule(Rule):
    """Every kernel-switch branch must leave a path for the other mode.

    * An ``if`` whose test consults ``kernels.vectorised_enabled()``
      must either carry an ``else`` branch or terminate (``return`` /
      ``raise``), so the fall-through code *is* the other kernel — a
      guard whose body falls through runs extra work in one mode only,
      which is exactly the drift the golden-equivalence suite exists to
      catch.
    * Dual-path modules (see :data:`~repro.lint.policy.DUAL_PATH_MODULES`)
      must consult the switch at least once.
    * A core/sketch module that imports :mod:`repro.kernels` but never
      consults the switch has a single-sided kernel.
    """

    rule_id = "kernel-parity"
    severity = SEVERITY_ERROR
    description = (
        "scalar and vectorised kernels must both be reachable through "
        "the repro.kernels switch in core/ and sketch/ modules"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not is_core_or_sketch(module.relpath):
            return
        references_switch = _references_switch(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.If):
                continue
            polarity = _switch_polarity(node.test)
            if polarity is None:
                continue
            if node.orelse or _terminates(node.body):
                continue
            side = "vectorised" if polarity else "scalar"
            other = "scalar" if polarity else "vectorised"
            yield self.finding(
                module, node,
                f"kernel-switch branch has no {other} fallback: the "
                f"{side} body neither returns nor has an else, so both "
                "modes run it plus whatever follows",
            )
        if module.relpath in DUAL_PATH_MODULES and not references_switch:
            yield self.finding(
                module, (1, 0),
                f"{module.relpath} is a dual-path kernel module but never "
                "consults kernels.vectorised_enabled()",
            )
        elif not references_switch:
            for line, col in self._kernel_imports(module):
                yield Finding(
                    self.rule_id, self.severity, module.path, line, col,
                    "module imports repro.kernels but never consults "
                    "vectorised_enabled(); the kernel exists on one side only",
                )

    @staticmethod
    def _kernel_imports(module: ModuleSource):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if any(alias.name == "kernels" for alias in node.names):
                    yield node.lineno, node.col_offset
            elif isinstance(node, ast.Import):
                if any(
                    alias.name.endswith(".kernels") or alias.name == "kernels"
                    for alias in node.names
                ):
                    yield node.lineno, node.col_offset


class _LoopVisitor(ast.NodeVisitor):
    """Collect loops on the vectorised path, tracking scalar regions."""

    #: Iterable call targets that are per-group / per-row bookkeeping,
    #: not per-element work.
    _ALLOWED_CALLS = {"range", "enumerate", "reversed"}

    def __init__(self) -> None:
        self.offending: List[ast.stmt] = []
        self._scalar_depth = 0

    def visit_If(self, node: ast.If) -> None:
        polarity = _switch_polarity(node.test)
        if polarity is True:
            for stmt in node.body:
                self.visit(stmt)
            self._scalar_depth += 1
            for stmt in node.orelse:
                self.visit(stmt)
            self._scalar_depth -= 1
        elif polarity is False:
            self._scalar_depth += 1
            for stmt in node.body:
                self.visit(stmt)
            self._scalar_depth -= 1
            for stmt in node.orelse:
                self.visit(stmt)
        else:
            self.generic_visit(node)

    def _iter_allowed(self, iterable: ast.AST) -> bool:
        if isinstance(iterable, ast.Call):
            name = dotted_name(iterable.func)
            if name is not None and name.split(".")[-1] in self._ALLOWED_CALLS:
                return True
            # zip() over arrays is element-level iteration in disguise.
            return not (name == "zip")
        # Direct iteration over a name/attribute/subscript walks the
        # container element by element in the interpreter.
        return not isinstance(iterable, (ast.Name, ast.Attribute, ast.Subscript))

    def visit_For(self, node: ast.For) -> None:
        if self._scalar_depth == 0 and not self._iter_allowed(node.iter):
            self.offending.append(node)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        if self._scalar_depth == 0:
            self.offending.append(node)
        self.generic_visit(node)


@register_rule
class HotLoopRule(Rule):
    """No interpreter-level loops over arrays on the vectorised path.

    In the modules listed in
    :data:`~repro.lint.policy.VECTORISED_MODULES`, a ``for`` statement
    that iterates directly over a container (name/attribute/subscript or
    ``zip(...)``) outside a scalar-guarded region is almost always a
    per-element loop that belongs in a numpy kernel.  ``range`` /
    ``enumerate`` loops are allowed: they express per-group or per-row
    structure, which is bounded and cheap.
    """

    rule_id = "hot-loop"
    severity = SEVERITY_ERROR
    description = (
        "no Python-level loops over arrays on the vectorised path of "
        "kernel modules"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.relpath not in VECTORISED_MODULES:
            return
        visitor = _LoopVisitor()
        visitor.visit(module.tree)
        for node in visitor.offending:
            kind = "while loop" if isinstance(node, ast.While) else "loop"
            yield self.finding(
                module, node,
                f"Python-level {kind} over a container on the vectorised "
                "path; hoist into a numpy kernel or guard it behind "
                "`not kernels.vectorised_enabled()`",
            )
