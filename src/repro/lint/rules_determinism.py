"""Determinism rules: randomness must be seeded and explicit.

Encoder and decoder agree bit-for-bit only because every random choice
flows from an explicit seed (CONTRIBUTING.md's "determinism is part of
the contract").  Library code therefore may not reach for global-state
RNGs, unseeded generators, or the wall clock.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import Finding, ModuleSource, Rule, SEVERITY_ERROR, register_rule

__all__ = ["RngDisciplineRule"]

#: numpy.random attributes that are deterministic constructors/types, not
#: global-state draws.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

#: Wall-clock calls that make library behaviour time-dependent.  Timing
#: instrumentation (``time.perf_counter`` in the perf harness) stays
#: legal: it measures, it does not decide.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}


@register_rule
class RngDisciplineRule(Rule):
    """No unseeded or global-state randomness in library code.

    Flags:

    * ``np.random.default_rng()`` called with no arguments — an
      OS-entropy generator the decoder can never reproduce;
    * legacy global-state draws (``np.random.rand``, ``np.random.seed``,
      ...) — hidden cross-module state;
    * any call into the stdlib :mod:`random` module;
    * wall-clock reads (``time.time``, ``datetime.now``) — time-varying
      behaviour in code whose outputs must be replayable.

    Randomness must instead flow through an explicitly seeded
    ``np.random.Generator`` handed in as a parameter or built from a
    config seed.
    """

    rule_id = "rng-discipline"
    severity = SEVERITY_ERROR
    description = (
        "randomness must flow through an explicitly seeded Generator; "
        "no global-state RNG or wall-clock calls in library code"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        # Local names bound to the stdlib random module (or its members),
        # so a parameter that happens to be called `random` never fires.
        random_modules = {
            alias
            for alias, full in module.import_aliases.items()
            if full == "random"
        }
        random_funcs = {
            alias
            for alias, (mod, _) in module.from_imports.items()
            if mod == "random"
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id in random_funcs:
                yield self.finding(
                    module, node,
                    f"stdlib random.{node.func.id}() uses hidden global RNG "
                    "state; use a seeded np.random.Generator instead",
                )
                continue
            name = module.resolve_call(node)
            if name is None:
                continue
            if name.startswith("numpy.random."):
                attr = name[len("numpy.random."):]
                if attr == "default_rng":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            module, node,
                            "np.random.default_rng() without a seed draws "
                            "OS entropy; pass a seed or accept a Generator "
                            "parameter",
                        )
                elif attr.split(".")[0] not in _NP_RANDOM_ALLOWED:
                    yield self.finding(
                        module, node,
                        f"global-state np.random.{attr}() call; use an "
                        "explicitly seeded np.random.Generator instead",
                    )
            elif name.startswith("random.") and random_modules:
                yield self.finding(
                    module, node,
                    f"stdlib {name}() uses hidden global RNG state; use a "
                    "seeded np.random.Generator instead",
                )
            elif name in _WALL_CLOCK:
                yield self.finding(
                    module, node,
                    f"wall-clock call {name}() makes library behaviour "
                    "time-dependent and unreplayable",
                )
