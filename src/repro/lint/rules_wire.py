"""Wire-format locality: byte-layout code lives in designated modules.

The SketchML wire format is pinned by golden digests; a ``struct.pack``
or ``.tobytes()`` sprinkled into a random module is a second,
unversioned opinion about byte layout that the golden suite cannot see.
All byte-format primitives are therefore confined to the serialization
modules listed in :data:`~repro.lint.policy.WIRE_MODULES`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import Finding, ModuleSource, Rule, SEVERITY_ERROR, register_rule
from .policy import WIRE_MODULES

__all__ = ["WireFormatRule"]


@register_rule
class WireFormatRule(Rule):
    """struct / frombuffer / tobytes only inside serialization modules.

    Flags, outside :data:`~repro.lint.policy.WIRE_MODULES`:

    * ``import struct`` / ``from struct import ...``;
    * calls into ``struct.*`` (pack/unpack/calcsize/Struct);
    * ``np.frombuffer(...)`` — reinterpreting raw bytes;
    * ``.tobytes()`` method calls — emitting raw bytes.

    New wire needs should extend :mod:`repro.core.serialization` (or a
    new allowlisted codec module) so the format stays versioned, golden-
    tested, and in one place.
    """

    rule_id = "wire-format"
    severity = SEVERITY_ERROR
    description = (
        "byte-format primitives (struct, frombuffer, tobytes) only in "
        "designated serialization modules"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.relpath in WIRE_MODULES:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "struct":
                        yield self.finding(
                            module, node,
                            "import struct outside a serialization module",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "struct" and node.level == 0:
                    yield self.finding(
                        module, node,
                        "from struct import ... outside a serialization module",
                    )
            elif isinstance(node, ast.Call):
                name = module.resolve_call(node)
                if name is not None and name.startswith("struct."):
                    yield self.finding(
                        module, node,
                        f"{name}() call outside a serialization module",
                    )
                elif name == "numpy.frombuffer":
                    yield self.finding(
                        module, node,
                        "np.frombuffer() reinterprets raw bytes outside a "
                        "serialization module",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "tobytes"
                ):
                    yield self.finding(
                        module, node,
                        ".tobytes() emits raw wire bytes outside a "
                        "serialization module",
                    )
