"""Wire-format locality: byte-layout code lives in designated modules.

The SketchML wire format is pinned by golden digests; a ``struct.pack``
or ``.tobytes()`` sprinkled into a random module is a second,
unversioned opinion about byte layout that the golden suite cannot see.
All byte-format primitives are therefore confined to the serialization
modules listed in :data:`~repro.lint.policy.WIRE_MODULES`.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .framework import (
    Finding,
    ModuleSource,
    Rule,
    SEVERITY_ERROR,
    dotted_name,
    register_rule,
)
from .policy import WIRE_MODULES, is_endianness_scoped

__all__ = ["WireFormatRule", "WireEndiannessRule"]


@register_rule
class WireFormatRule(Rule):
    """struct / frombuffer / tobytes only inside serialization modules.

    Flags, outside :data:`~repro.lint.policy.WIRE_MODULES`:

    * ``import struct`` / ``from struct import ...``;
    * calls into ``struct.*`` (pack/unpack/calcsize/Struct);
    * ``np.frombuffer(...)`` — reinterpreting raw bytes;
    * ``.tobytes()`` method calls — emitting raw bytes.

    New wire needs should extend :mod:`repro.core.serialization` (or a
    new allowlisted codec module) so the format stays versioned, golden-
    tested, and in one place.
    """

    rule_id = "wire-format"
    severity = SEVERITY_ERROR
    description = (
        "byte-format primitives (struct, frombuffer, tobytes) only in "
        "designated serialization modules"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.relpath in WIRE_MODULES:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "struct":
                        yield self.finding(
                            module, node,
                            "import struct outside a serialization module",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "struct" and node.level == 0:
                    yield self.finding(
                        module, node,
                        "from struct import ... outside a serialization module",
                    )
            elif isinstance(node, ast.Call):
                name = module.resolve_call(node)
                if name is not None and name.startswith("struct."):
                    yield self.finding(
                        module, node,
                        f"{name}() call outside a serialization module",
                    )
                elif name == "numpy.frombuffer":
                    yield self.finding(
                        module, node,
                        "np.frombuffer() reinterprets raw bytes outside a "
                        "serialization module",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "tobytes"
                ):
                    yield self.finding(
                        module, node,
                        ".tobytes() emits raw wire bytes outside a "
                        "serialization module",
                    )


#: numpy scalar-type names whose byte layout depends on host
#: endianness; single-byte types (uint8/int8/bool) are exempt.
_MULTIBYTE_NUMPY_TYPES = frozenset(
    {
        "uint16", "uint32", "uint64", "int16", "int32", "int64",
        "float16", "float32", "float64", "half", "single", "double",
        "intc", "uintc", "intp", "uintp", "longlong", "ulonglong",
    }
)

#: dtype-string codes with multi-byte width (struct-style characters
#: and array-interface letters).
_MULTIBYTE_CODES = frozenset("uifUIFeEdgGhHlLqQ")


def _unpinned_dtype_string(literal: str) -> bool:
    """True when a dtype string literal is multi-byte but not '<'-pinned."""
    s = literal.strip()
    if not s:
        return False
    if s[0] == "<":
        return False  # explicitly little-endian
    if s[0] in ">=|":
        # big-endian / native / ignore markers: '>' and '=' are wrong
        # on the wire, '|' is single-byte only.
        return s[0] in ">="
    # Name forms: "uint8" is fine, "uint32"/"float64" are not.
    if s in ("uint8", "int8", "bool", "u1", "i1", "b1", "B", "b", "?", "S1"):
        return False
    if s[0] in _MULTIBYTE_CODES:
        width = s[1:] or ""
        return width != "1"
    return s in _MULTIBYTE_NUMPY_TYPES


def _resolve_name(module: ModuleSource, node: ast.expr) -> Optional[str]:
    """Alias-resolved dotted name of a bare expression (``np.uint32``)."""
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    if head in module.import_aliases:
        full = module.import_aliases[head]
        return f"{full}.{rest}" if rest else full
    if head in module.from_imports:
        mod, original = module.from_imports[head]
        base = f"{mod}.{original}" if mod else original
        return f"{base}.{rest}" if rest else base
    return name


class _DtypeOfCall:
    """Extract the dtype argument of a numpy constructor/cast call."""

    @staticmethod
    def get(node: ast.Call, module: ModuleSource) -> Optional[ast.expr]:
        name = module.resolve_call(node)
        if name in ("numpy.frombuffer", "numpy.asarray", "numpy.array",
                    "numpy.empty", "numpy.zeros", "numpy.ones"):
            for kw in node.keywords:
                if kw.arg == "dtype":
                    return kw.value
            if name == "numpy.frombuffer" and len(node.args) >= 2:
                return node.args[1]
            return None
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
            if node.args:
                return node.args[0]
            for kw in node.keywords:
                if kw.arg == "dtype":
                    return kw.value
        return None


@register_rule
class WireEndiannessRule(Rule):
    """Wire modules must pin byte order on multi-byte dtypes.

    The frame headers use ``struct`` with explicit ``"<"`` formats, but
    a ``np.frombuffer(..., dtype=np.uint32)`` or
    ``np.uint32(n).tobytes()`` silently uses *host* byte order — the
    format would flip on a big-endian machine while every golden digest
    still passes there.  Inside :data:`~repro.lint.policy.WIRE_MODULES`
    and the telemetry package (whose flight-recorder files are merged
    across machines — :data:`~repro.lint.policy.ENDIANNESS_PREFIXES`)
    this rule flags the statically-detectable unpinned cases:

    * ``np.frombuffer(...)`` with a multi-byte numpy-attribute dtype
      (``np.uint32``) or an unpinned dtype string (``"u4"``, ``">u4"``);
    * ``.tobytes()`` directly on a numpy scalar constructor or an
      ``astype``/``asarray`` cast with such a dtype;
    * any multi-byte dtype *string literal* not starting with ``"<"``.

    Fix by spelling the dtype as an explicit little-endian string:
    ``"<u4"``, ``"<f8"``.  Single-byte dtypes carry no byte order and
    are exempt.
    """

    rule_id = "wire-endianness"
    severity = SEVERITY_ERROR
    description = (
        "multi-byte dtypes in wire modules must be little-endian "
        "('<'-prefixed) strings"
    )

    def _dtype_problem(
        self, dtype_node: ast.expr, module: ModuleSource
    ) -> Optional[str]:
        if isinstance(dtype_node, ast.Constant) and isinstance(
            dtype_node.value, str
        ):
            if _unpinned_dtype_string(dtype_node.value):
                return f'dtype "{dtype_node.value}" does not pin byte order'
            return None
        name = _resolve_name(module, dtype_node)
        if name is not None and name.startswith("numpy."):
            short = name[len("numpy."):]
            if short in _MULTIBYTE_NUMPY_TYPES:
                return (
                    f"np.{short} uses host byte order; spell it as an "
                    f'explicit "<"-prefixed dtype string'
                )
        return None

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not is_endianness_scoped(module.relpath):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve_call(node)
            # np.frombuffer always reinterprets wire bytes.
            if name == "numpy.frombuffer":
                dtype_node = _DtypeOfCall.get(node, module)
                if dtype_node is not None:
                    problem = self._dtype_problem(dtype_node, module)
                    if problem is not None:
                        yield self.finding(module, node, problem)
                continue
            # <cast>.tobytes() puts the cast's layout on the wire:
            # np.uint32(n).tobytes(), x.astype(np.uint32).tobytes(),
            # np.asarray(x, dtype=np.float64).tobytes().
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "tobytes"
                and isinstance(node.func.value, ast.Call)
            ):
                inner = node.func.value
                inner_name = module.resolve_call(inner)
                if inner_name is not None and inner_name.startswith("numpy."):
                    short = inner_name[len("numpy."):]
                    if short in _MULTIBYTE_NUMPY_TYPES:
                        yield self.finding(
                            module, node,
                            f"np.{short}(...).tobytes() emits host-order "
                            f'bytes; go through np.asarray(..., dtype="<...")',
                        )
                        continue
                dtype_node = _DtypeOfCall.get(inner, module)
                if dtype_node is not None:
                    problem = self._dtype_problem(dtype_node, module)
                    if problem is not None:
                        yield self.finding(module, node, problem)
                continue
            # Elsewhere, only dtype *string literals* signal wire
            # intent — pinning them costs nothing and documents the
            # layout (in-memory numpy-attr dtypes stay legal).
            dtype_node = _DtypeOfCall.get(node, module)
            if (
                dtype_node is not None
                and isinstance(dtype_node, ast.Constant)
                and isinstance(dtype_node.value, str)
                and _unpinned_dtype_string(dtype_node.value)
            ):
                yield self.finding(
                    module, node,
                    f'dtype "{dtype_node.value}" does not pin byte order',
                )
        # Bare multi-byte dtype string literals used outside calls
        # (e.g. a module-level DTYPE = "u4" fed to frombuffer later).
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
                and any(
                    isinstance(t, ast.Name) and "dtype" in t.id.lower()
                    for t in node.targets
                )
                and _unpinned_dtype_string(node.value.value)
            ):
                yield self.finding(
                    module, node,
                    f'dtype constant "{node.value.value}" does not pin '
                    "byte order",
                )
