"""Which modules each scoped rule applies to.

Paths are posix-style and relative to the ``repro`` package root
(``ModuleSource.relpath``), so the policy is independent of where the
package is installed.  Keep these lists in sync with
``docs/static_analysis.md`` when modules gain or lose a vectorised
counterpart.
"""

from __future__ import annotations

__all__ = [
    "DUAL_PATH_MODULES",
    "VECTORISED_MODULES",
    "DTYPE_STRICT_MODULES",
    "WIRE_MODULES",
    "ASYNC_MODULES",
    "CORE_PREFIXES",
    "HOT_PATH_PREFIXES",
    "ENDIANNESS_PREFIXES",
    "is_core_or_sketch",
    "is_endianness_scoped",
]

#: Modules required to dispatch between scalar and vectorised kernels
#: through the ``repro.kernels`` switch (the executable-spec contract
#: that ``tests/test_golden_equivalence.py`` asserts byte-identity for).
DUAL_PATH_MODULES = frozenset(
    {
        "core/minmax_sketch.py",
        "core/delta_encoding.py",
        "core/quantizer.py",
        "sketch/hashing.py",
    }
)

#: Modules whose non-scalar paths must stay free of Python-level loops
#: over array elements (``hot-loop`` rule).
VECTORISED_MODULES = DUAL_PATH_MODULES | {"core/bitpack.py"}

#: Modules where every array constructor must pin its dtype — the
#: uint64 hash grid and the wire codecs, where a silent float64/object
#: upcast breaks bit-exactness (``dtype-discipline`` rule).
DTYPE_STRICT_MODULES = VECTORISED_MODULES

#: The only modules allowed to touch byte-format primitives
#: (``struct``, ``np.frombuffer``, ``.tobytes()``) — everything else
#: must go through these codecs (``wire-format`` rule).
WIRE_MODULES = frozenset(
    {
        "core/serialization.py",
        "core/delta_encoding.py",
        "core/bitpack.py",
        "compression/lossless.py",
        "runtime/framing.py",
    }
)

#: Modules that run inside an event loop and therefore may never make
#: a call that blocks the reactor: no blocking socket reads/writes, no
#: ``time.sleep``, no blocking ``queue.Queue`` operations.  The only
#: sanctioned wait is ``selector.select(timeout)``
#: (``async-discipline`` rule).
ASYNC_MODULES = frozenset({"runtime/aio.py"})

#: Package prefixes that make up the paper-facing codec surface.
CORE_PREFIXES = ("core/", "sketch/")

#: Package prefixes on the performance-sensitive path — the codec, the
#: sketches, the runtime, and the trainer loop.  These may not print or
#: log to stdio; observability goes through ``repro.telemetry``
#: (``telemetry-discipline`` rule).
HOT_PATH_PREFIXES = CORE_PREFIXES + (
    "compression/",
    "runtime/",
    "distributed/",
)

#: Package prefixes (beyond :data:`WIRE_MODULES`) whose dtype usage must
#: pin byte order: the telemetry flight recorder's files are merged
#: across machines, so any binary encoding it ever grows must be
#: host-order independent (``wire-endianness`` rule).
ENDIANNESS_PREFIXES = ("telemetry/",)


def is_core_or_sketch(relpath: str) -> bool:
    """True for modules on the paper-facing codec surface."""
    return relpath.startswith(CORE_PREFIXES)


def is_endianness_scoped(relpath: str) -> bool:
    """True for modules the ``wire-endianness`` rule applies to."""
    return relpath in WIRE_MODULES or relpath.startswith(ENDIANNESS_PREFIXES)
