"""Which modules each scoped rule applies to.

Paths are posix-style and relative to the ``repro`` package root
(``ModuleSource.relpath``), so the policy is independent of where the
package is installed.  Keep these lists in sync with
``docs/static_analysis.md`` when modules gain or lose a vectorised
counterpart.
"""

from __future__ import annotations

__all__ = [
    "DUAL_PATH_MODULES",
    "VECTORISED_MODULES",
    "DTYPE_STRICT_MODULES",
    "WIRE_MODULES",
    "ASYNC_MODULES",
    "OBSERVABILITY_MODULES",
    "CORE_PREFIXES",
    "HOT_PATH_PREFIXES",
    "ENDIANNESS_PREFIXES",
    "LOCK_SCOPE_PREFIXES",
    "SEED_SCOPE_PREFIXES",
    "is_core_or_sketch",
    "is_endianness_scoped",
    "is_seed_scoped",
    "is_lock_scoped",
    "all_policy_relpaths",
    "verify_policy",
    "PolicyError",
]

#: Modules required to dispatch between scalar and vectorised kernels
#: through the ``repro.kernels`` switch (the executable-spec contract
#: that ``tests/test_golden_equivalence.py`` asserts byte-identity for).
DUAL_PATH_MODULES = frozenset(
    {
        "core/minmax_sketch.py",
        "core/delta_encoding.py",
        "core/quantizer.py",
        "sketch/hashing.py",
    }
)

#: Modules whose non-scalar paths must stay free of Python-level loops
#: over array elements (``hot-loop`` rule).
VECTORISED_MODULES = DUAL_PATH_MODULES | {"core/bitpack.py"}

#: Modules where every array constructor must pin its dtype — the
#: uint64 hash grid and the wire codecs, where a silent float64/object
#: upcast breaks bit-exactness (``dtype-discipline`` rule).
DTYPE_STRICT_MODULES = VECTORISED_MODULES

#: The only modules allowed to touch byte-format primitives
#: (``struct``, ``np.frombuffer``, ``.tobytes()``) — everything else
#: must go through these codecs (``wire-format`` rule).
WIRE_MODULES = frozenset(
    {
        "core/serialization.py",
        "core/delta_encoding.py",
        "core/bitpack.py",
        "core/entropy.py",
        "compression/lossless.py",
        "golden.py",
        "runtime/framing.py",
    }
)

#: Modules that run inside an event loop and therefore may never make
#: a call that blocks the reactor: no blocking socket reads/writes, no
#: ``time.sleep``, no blocking ``queue.Queue`` operations.  The only
#: sanctioned wait is ``selector.select(timeout)``
#: (``async-discipline`` rule).  ``fleet/simulator.py`` is scoped in
#: because it runs in *virtual* time by contract: a sleep or socket
#: call there would silently turn the replay engine into wall-clock
#: code.
ASYNC_MODULES = frozenset({"runtime/aio.py", "fleet/simulator.py"})

#: The live-ops plane (PR 10): the metrics hub + wire spool, the HTTP
#: exporter, critical-path attribution, and the ``repro top`` renderer.
#: Named explicitly so :func:`verify_policy` refuses to run if one is
#: renamed away — they are endianness-scoped via
#: :data:`ENDIANNESS_PREFIXES` and lock-order-scoped via
#: :data:`LOCK_SCOPE_PREFIXES` (the hub is mutated by the trainer
#: thread, the supervisor's heartbeat ingestion, and every exporter
#: HTTP thread concurrently).
OBSERVABILITY_MODULES = frozenset(
    {
        "telemetry/metrics.py",
        "telemetry/export.py",
        "telemetry/critical_path.py",
        "telemetry/top.py",
    }
)

#: Package prefixes that make up the paper-facing codec surface.
CORE_PREFIXES = ("core/", "sketch/")

#: Package prefixes on the performance-sensitive path — the codec, the
#: sketches, the runtime, and the trainer loop.  These may not print or
#: log to stdio; observability goes through ``repro.telemetry``
#: (``telemetry-discipline`` rule).
HOT_PATH_PREFIXES = CORE_PREFIXES + (
    "compression/",
    "runtime/",
    "distributed/",
    "fleet/",
)

#: Package prefixes (beyond :data:`WIRE_MODULES`) whose dtype usage must
#: pin byte order: the telemetry flight recorder's files are merged
#: across machines, so any binary encoding it ever grows must be
#: host-order independent (``wire-endianness`` rule).
ENDIANNESS_PREFIXES = ("telemetry/",)


#: Package prefixes whose lock acquisitions feed the interprocedural
#: ``lock-order`` deadlock analysis: the execution layer, where driver
#: and worker threads share transports, supervisors, and cluster state,
#: and the telemetry layer, where the metrics hub and recorder are
#: mutated from trainer, supervisor, and exporter HTTP threads at once.
LOCK_SCOPE_PREFIXES = ("runtime/", "telemetry/")

#: Package prefixes where every ``np.random.Generator`` /
#: ``random.Random`` reaching the code must descend from a *seeded*
#: constructor (``seed-flow`` rule) — the static twin of the
#: fixed-seed bit-identity tests: the codec, the sketches, the
#: compressors, the runtime (including fault injection), and the fleet
#: subsystem (membership churn, the stale-mode virtual clock, and the
#: replay simulator are all seeded by contract).
SEED_SCOPE_PREFIXES = (
    "core/",
    "sketch/",
    "compression/",
    "runtime/",
    "fleet/",
)


def is_core_or_sketch(relpath: str) -> bool:
    """True for modules on the paper-facing codec surface."""
    return relpath.startswith(CORE_PREFIXES)


def is_endianness_scoped(relpath: str) -> bool:
    """True for modules the ``wire-endianness`` rule applies to."""
    return relpath in WIRE_MODULES or relpath.startswith(ENDIANNESS_PREFIXES)


def is_seed_scoped(relpath: str) -> bool:
    """True for modules the ``seed-flow`` rule protects."""
    return relpath.startswith(SEED_SCOPE_PREFIXES)


def is_lock_scoped(relpath: str) -> bool:
    """True for modules the ``lock-order`` rule analyses."""
    return relpath.startswith(LOCK_SCOPE_PREFIXES)


class PolicyError(RuntimeError):
    """A policy module list names a file that does not exist.

    Raised by :func:`verify_policy` so a renamed module can no longer
    silently drop out of rule scope (the rule would keep "passing" on a
    path that matches nothing).
    """


def all_policy_relpaths() -> "frozenset[str]":
    """Every explicit module relpath named by a policy list."""
    return frozenset(
        DUAL_PATH_MODULES
        | VECTORISED_MODULES
        | DTYPE_STRICT_MODULES
        | WIRE_MODULES
        | ASYNC_MODULES
        | OBSERVABILITY_MODULES
    )


def verify_policy(package_root: str = None) -> "list[str]":
    """Check that every listed relpath exists; return the missing ones.

    ``package_root`` defaults to the installed ``repro`` package
    directory.  The lint drivers call this at startup and refuse to run
    when a policy list names a file that is gone — a rename must update
    the policy (and ``docs/static_analysis.md``), not quietly shrink a
    rule's scope to nothing.
    """
    import os

    if package_root is None:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    missing = [
        relpath
        for relpath in sorted(all_policy_relpaths())
        if not os.path.isfile(os.path.join(package_root, *relpath.split("/")))
    ]
    return missing
