"""repro lint — AST static analysis for the codec's invariants.

The framework (:mod:`repro.lint.framework`) walks Python sources, runs
every registered :class:`~repro.lint.framework.Rule`, honours
``# repro: noqa[rule-id] — reason`` suppressions (a justification is
mandatory), and reports ``file:line:col`` findings.  The repo-specific
rules live in the ``rules_*`` modules and are registered on import:

========================  =====================================================
rule id                   enforces
========================  =====================================================
``kernel-parity``         every ``kernels.vectorised_enabled()`` branch has a
                          scalar fallback; dual-path modules dispatch through
                          the switch
``rng-discipline``        no unseeded/global-state RNG or wall-clock calls in
                          library code
``dtype-discipline``      explicit dtypes in the integer/hash-grid modules; no
                          ``float``/``object`` dtype escapes in codec code
``hot-loop``              no Python-level loops over arrays on the vectorised
                          path of kernel modules
``wire-format``           byte-format primitives only inside designated
                          serialization modules
``async-discipline``      no blocking calls (socket.recv, time.sleep,
                          queue.Queue ops) inside event-loop modules; the
                          reactor waits only in ``selector.select``
``telemetry-discipline``  hot-path modules use ``repro.telemetry`` instead of
                          ``print``/``logging``; ``telemetry.span`` only as a
                          context manager
``bare-except``           no bare/blanket-swallowed exception handlers
``mutable-default``       no mutable default argument values
``missing-all``           public modules declare ``__all__``
``noqa-justification``    every suppression names a known rule and a reason
========================  =====================================================

A second, *whole-program* tier (``python -m repro lint --deep``) runs
the interprocedural rules from :mod:`repro.analysis` over the project
call graph — same registry, same noqa machinery:

========================  =====================================================
rule id                   enforces (deep tier)
========================  =====================================================
``reactor-reachability``  no blocking primitive transitively reachable from
                          the aio event loop's entry points
``wire-escape``           byte primitives only reachable through the public
                          codec API of the wire modules
``seed-flow``             no unseeded RNG flowing into codec/runtime code
                          (taint analysis)
``lock-order``            no lock-acquisition cycles or lock-held blocking
                          calls in the runtime
========================  =====================================================

Run it as ``python -m repro lint [paths] [--format text|json|sarif]``;
see ``docs/static_analysis.md`` for the full rule and policy reference.
"""

from .framework import (
    Finding,
    LintError,
    ModuleSource,
    ProjectRule,
    Rule,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    all_rule_ids,
    build_rules,
    lint_paths,
    lint_source,
    register_rule,
    rule_descriptions,
)

# Importing the rule modules registers their rules.
from . import rules_async  # noqa: F401  (registration import)
from . import rules_determinism  # noqa: F401  (registration import)
from . import rules_kernels  # noqa: F401  (registration import)
from . import rules_numeric  # noqa: F401  (registration import)
from . import rules_style  # noqa: F401  (registration import)
from . import rules_telemetry  # noqa: F401  (registration import)
from . import rules_wire  # noqa: F401  (registration import)

# The deep (whole-program) rules live in repro.analysis but share this
# registry — importing them here keeps the rule-id vocabulary (noqa
# validation, --select, --list-rules) identical across both tiers.
from ..analysis import rules_flow as _deep_rules_flow  # noqa: F401
from ..analysis import (  # noqa: F401  (registration import)
    rules_reachability as _deep_rules_reachability,
)

__all__ = [
    "Finding",
    "LintError",
    "ModuleSource",
    "ProjectRule",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "all_rule_ids",
    "build_rules",
    "lint_paths",
    "lint_source",
    "register_rule",
    "rule_descriptions",
]
