"""Telemetry discipline: hot paths observe through the flight recorder.

The codec, sketch, runtime, and trainer modules are instrumented with
:mod:`repro.telemetry`; ad-hoc ``print()`` calls or ``logging`` setup in
those modules would bypass the recorder (no run/worker/round context,
not merged into the trace, not measurable by the overhead guard) and
put I/O on the hot path even when tracing is off.  This rule keeps the
observability story single-sourced:

* no ``print()`` and no ``logging`` imports inside the hot-path
  packages (:data:`~repro.lint.policy.HOT_PATH_PREFIXES`) — emit a
  :func:`repro.telemetry.event` or counter instead;
* every call to ``telemetry.span`` (however imported) is the context
  expression of a ``with`` statement.  A span object that is created
  but never exited records nothing — the event is only written on
  ``__exit__`` — so a bare ``telemetry.span(...)`` call is always a
  silent data-loss bug.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from .framework import (
    Finding,
    ModuleSource,
    Rule,
    SEVERITY_ERROR,
    register_rule,
)
from .policy import HOT_PATH_PREFIXES

__all__ = ["TelemetryDisciplineRule"]


def _is_span_call(module: ModuleSource, node: ast.Call) -> bool:
    """True when ``node`` calls the telemetry span factory.

    Matches ``telemetry.span`` through any import spelling: relative
    (``from .. import telemetry`` resolves to ``..telemetry.span``),
    absolute (``repro.telemetry.span``), or direct
    (``from repro.telemetry import span``).
    """
    name = module.resolve_call(node)
    if name is None:
        return False
    return name == "telemetry.span" or name.endswith(".telemetry.span")


@register_rule
class TelemetryDisciplineRule(Rule):
    """No stdio in hot paths; spans are always context managers."""

    rule_id = "telemetry-discipline"
    severity = SEVERITY_ERROR
    description = (
        "hot-path modules use repro.telemetry instead of print/logging, "
        "and telemetry.span is only used as a context manager"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        hot = module.relpath.startswith(HOT_PATH_PREFIXES)
        # Span calls appearing as `with` context expressions are the
        # sanctioned form; collect their node identities first so the
        # second walk can flag every other span call.
        with_spans: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    ctx = item.context_expr
                    if isinstance(ctx, ast.Call) and _is_span_call(module, ctx):
                        with_spans.add(id(ctx))
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                if not hot:
                    continue
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "logging":
                        yield self.finding(
                            module, node,
                            "logging import in a hot-path module; emit "
                            "repro.telemetry events instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if not hot:
                    continue
                if node.level == 0 and (node.module or "").split(".")[0] == (
                    "logging"
                ):
                    yield self.finding(
                        module, node,
                        "logging import in a hot-path module; emit "
                        "repro.telemetry events instead",
                    )
            elif isinstance(node, ast.Call):
                if (
                    hot
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"
                ):
                    yield self.finding(
                        module, node,
                        "print() in a hot-path module; emit a "
                        "repro.telemetry event/counter so the output "
                        "carries run context and lands in the trace",
                    )
                if _is_span_call(module, node) and id(node) not in with_spans:
                    yield self.finding(
                        module, node,
                        "telemetry.span(...) outside a `with` statement; "
                        "span events are only recorded on __exit__, so "
                        "write `with telemetry.span(...):`",
                    )
