"""General-hygiene rules: bare excepts, mutable defaults, ``__all__``.

Smaller guards that still map onto real failure modes in this codebase:
a swallowed exception hides a codec error the failure-injection suite
is designed to surface, a mutable default leaks state across compressor
instances, and a missing ``__all__`` makes the public surface (and the
API docs built from it) ambiguous.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import (
    Finding,
    ModuleSource,
    Rule,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    register_rule,
)

__all__ = ["BareExceptRule", "MutableDefaultRule", "MissingAllRule"]


@register_rule
class BareExceptRule(Rule):
    """No bare or silently swallowed exception handlers.

    ``except:`` catches ``KeyboardInterrupt``/``SystemExit``, and an
    ``except Exception: pass`` turns a corrupted message into a silent
    wrong answer — the exact opposite of the typed-rejection contract
    the wire codecs promise.
    """

    rule_id = "bare-except"
    severity = SEVERITY_ERROR
    description = "no bare `except:` or blanket `except Exception: pass`"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module, node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt; "
                    "name the exception types",
                )
                continue
            name = node.type.id if isinstance(node.type, ast.Name) else None
            swallowed = all(isinstance(s, ast.Pass) for s in node.body)
            if name in ("Exception", "BaseException") and swallowed:
                yield self.finding(
                    module, node,
                    f"`except {name}: pass` silently swallows every error; "
                    "narrow the type or handle it",
                )


_MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}
_MUTABLE_NP = {"numpy.array", "numpy.zeros", "numpy.ones", "numpy.empty"}


@register_rule
class MutableDefaultRule(Rule):
    """No mutable default argument values.

    A ``def f(x, acc=[])`` default is evaluated once and shared across
    every call — for stateful compressor objects that means gradients
    bleeding between messages.  Use ``None`` plus an in-body default
    (or ``dataclasses.field(default_factory=...)``).
    """

    rule_id = "mutable-default"
    severity = SEVERITY_ERROR
    description = "no mutable default argument values (list/dict/set/array)"

    def _is_mutable(self, node: ast.AST, module: ModuleSource) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in _MUTABLE_CALLS:
                return True
            name = module.resolve_call(node)
            if name in _MUTABLE_NP:
                return True
        return False

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default, module):
                    yield self.finding(
                        module, default,
                        f"mutable default argument in {node.name}(); use "
                        "None and construct inside the body",
                    )


@register_rule
class MissingAllRule(Rule):
    """Public modules must declare ``__all__``.

    Fires only when a module *defines* public top-level names; pure
    entry-point shims (``__main__.py``) and private modules are exempt
    by construction.  Test modules (``test_*.py``, ``conftest.py``)
    are exempt too — pytest collects them by name, nothing imports
    ``*`` from them, so linting ``tests/`` need not spray warnings.
    """

    rule_id = "missing-all"
    severity = SEVERITY_WARNING
    description = "modules defining public names must declare __all__"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        basename = module.relpath.rsplit("/", 1)[-1]
        if basename.startswith("test_") or basename == "conftest.py":
            return
        has_all = False
        public: list = []
        for node in module.tree.body:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        if target.id == "__all__":
                            has_all = True
                        elif not target.id.startswith("_"):
                            public.append(target.id)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if not node.name.startswith("_"):
                    public.append(node.name)
        if public and not has_all:
            preview = ", ".join(public[:4]) + ("..." if len(public) > 4 else "")
            yield self.finding(
                module, (1, 0),
                f"module defines public names ({preview}) but no __all__",
            )
