"""Rule registry, module model, noqa handling, and the lint driver.

Design:

* A :class:`Rule` inspects one :class:`ModuleSource` (parsed AST plus
  precomputed import tables and the package-relative path) and yields
  :class:`Finding` records.
* Rules self-register via :func:`register_rule`; ids are stable strings
  (``kernel-parity``, ``rng-discipline``, ...) that double as the noqa
  keys and the ``--select`` vocabulary.
* Suppressions are per-line comments::

      risky_line()  # repro: noqa[rule-id] — why this is safe

  The justification after the dash is **mandatory**; a reasonless or
  unknown-rule noqa is itself a finding (``noqa-justification``), so
  suppressions cannot silently rot.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "Finding",
    "LintError",
    "Suppression",
    "ModuleSource",
    "Rule",
    "ProjectRule",
    "register_rule",
    "all_rule_ids",
    "build_rules",
    "lint_source",
    "lint_paths",
    "iter_python_files",
    "dotted_name",
]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Rule id reserved for the framework's own noqa policing.
NOQA_RULE_ID = "noqa-justification"
#: Rule id reported for files that fail to parse.
SYNTAX_RULE_ID = "syntax-error"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\s*\[(?P<rules>[^\]]*)\]\s*(?:(?:—|--|-|:)\s*(?P<reason>.*))?$"
)


class LintError(RuntimeError):
    """Unrecoverable driver failure (unknown rule selection, bad path)."""


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to ``path:line:col``."""

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: noqa[...]`` comment."""

    line: int
    rule_ids: Tuple[str, ...]
    reason: str


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ModuleSource:
    """One parsed Python module plus everything rules need to scope it.

    Attributes:
        path: filesystem path (or ``<memory>`` for fixture snippets).
        relpath: posix path relative to the ``repro`` package root
            (e.g. ``core/minmax_sketch.py``) — the key the policy
            scopes match against.
        text: raw source.
        tree: the parsed :mod:`ast` module node.
        import_aliases: local name -> imported module for ``import m``
            and ``import m as alias`` statements.
        from_imports: local name -> ``(module, original_name)`` for
            ``from m import n [as alias]`` statements.
        suppressions: line number -> :class:`Suppression`.
    """

    def __init__(self, path: str, text: str, relpath: Optional[str] = None) -> None:
        self.path = path
        self.text = text
        self.relpath = relpath if relpath is not None else _infer_relpath(path)
        self.tree = ast.parse(text, filename=path)
        self.import_aliases: Dict[str, str] = {}
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.import_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom):
                module = "." * node.level + (node.module or "")
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        module,
                        alias.name,
                    )
        self.suppressions, self.noqa_findings = _parse_noqa(
            text, self.path, known_rule_ids=None
        )

    # ------------------------------------------------------------------
    def resolve_call(self, node: ast.Call) -> Optional[str]:
        """Canonical dotted name of a call target, import-aliases resolved.

        ``np.random.rand(...)`` resolves to ``numpy.random.rand`` when
        the module did ``import numpy as np``; a bare call to a
        ``from m import n`` name resolves to ``m.n``.
        """
        name = dotted_name(node.func)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        if head in self.import_aliases:
            full = self.import_aliases[head]
            return f"{full}.{rest}" if rest else full
        if head in self.from_imports:
            module, original = self.from_imports[head]
            base = f"{module}.{original}" if module else original
            return f"{base}.{rest}" if rest else base
        return name


def _infer_relpath(path: str) -> str:
    """Path relative to the innermost ``repro`` package directory."""
    parts = path.replace(os.sep, "/").split("/")
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        rel = "/".join(parts[idx + 1:])
        if rel:
            return rel
    return parts[-1]


def _parse_noqa(
    text: str, path: str, known_rule_ids: Optional[Sequence[str]]
) -> Tuple[Dict[int, Suppression], List[Finding]]:
    """Extract suppression comments and policy findings for them.

    Unknown-rule validation happens later in :func:`_apply_suppressions`
    (the registry may not be fully populated at parse time), so
    ``known_rule_ids`` is accepted for future use but unused here.
    """
    suppressions: Dict[int, Suppression] = {}
    findings: List[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - parse gate
        return suppressions, findings
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        rule_ids = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        reason = (match.group("reason") or "").strip()
        if not rule_ids:
            findings.append(
                Finding(
                    NOQA_RULE_ID, SEVERITY_ERROR, path, line, tok.start[1],
                    "noqa must name at least one rule id: "
                    "`# repro: noqa[rule-id] — reason`",
                )
            )
            continue
        if not reason:
            findings.append(
                Finding(
                    NOQA_RULE_ID, SEVERITY_ERROR, path, line, tok.start[1],
                    f"noqa[{', '.join(rule_ids)}] lacks a justification; "
                    "write `# repro: noqa[rule-id] — reason`",
                )
            )
            continue
        suppressions[line] = Suppression(line, rule_ids, reason)
    return suppressions, findings


# ----------------------------------------------------------------------
# rule registry
# ----------------------------------------------------------------------
class Rule:
    """Base class: subclass, set the class attributes, implement check."""

    rule_id: str = ""
    severity: str = SEVERITY_ERROR
    description: str = ""

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleSource, node: object, message: str
    ) -> Finding:
        """Build a finding anchored at an AST node (or ``(line, col)``)."""
        if isinstance(node, tuple):
            line, col = node
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(self.rule_id, self.severity, module.path, line, col, message)


class ProjectRule(Rule):
    """Whole-program rule: sees the project call graph, not one module.

    Project rules register into the same registry as per-module rules
    (same ids, same noqa machinery, same ``--select`` vocabulary), but
    they only produce findings when driven by the interprocedural tier
    (``repro lint --deep``, :mod:`repro.analysis.driver`).  Under the
    shallow per-module driver they are inert.
    """

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        """Yield findings over a :class:`repro.analysis.callgraph.Project`."""
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a :class:`Rule` subclass to the registry."""
    if not cls.rule_id:
        raise LintError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise LintError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rule_ids() -> List[str]:
    """Every registered rule id plus the framework's own ids, sorted."""
    return sorted(_REGISTRY) + [NOQA_RULE_ID]


def rule_descriptions() -> List[Tuple[str, str, str]]:
    """``(rule_id, severity, description)`` rows for ``--list-rules``."""
    rows = [
        (rule_id, cls.severity, cls.description)
        for rule_id, cls in sorted(_REGISTRY.items())
    ]
    rows.append(
        (NOQA_RULE_ID, SEVERITY_ERROR,
         "every noqa suppression names a known rule and a justification")
    )
    return rows


def build_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the selected rules (all registered rules by default)."""
    if select is None:
        return [cls() for _, cls in sorted(_REGISTRY.items())]
    rules: List[Rule] = []
    for rule_id in select:
        if rule_id == NOQA_RULE_ID:
            continue  # framework-level; always active
        if rule_id not in _REGISTRY:
            raise LintError(
                f"unknown rule id {rule_id!r}; known: {', '.join(all_rule_ids())}"
            )
        rules.append(_REGISTRY[rule_id]())
    return rules


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def _apply_suppressions(
    module: ModuleSource, findings: Iterable[Finding]
) -> List[Finding]:
    kept: List[Finding] = []
    for finding in findings:
        supp = module.suppressions.get(finding.line)
        if supp is not None and finding.rule_id in supp.rule_ids:
            continue
        kept.append(finding)
    # Suppressions naming unknown rules are findings themselves.
    known = set(all_rule_ids())
    for supp in module.suppressions.values():
        for rule_id in supp.rule_ids:
            if rule_id not in known:
                kept.append(
                    Finding(
                        NOQA_RULE_ID, SEVERITY_ERROR, module.path, supp.line, 0,
                        f"noqa names unknown rule id {rule_id!r}",
                    )
                )
    kept.extend(module.noqa_findings)
    return kept


def lint_module(
    module: ModuleSource, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Run ``rules`` over one parsed module, suppressions applied."""
    active = list(rules) if rules is not None else build_rules()
    raw: List[Finding] = []
    for rule in active:
        raw.extend(rule.check(module))
    return _apply_suppressions(module, raw)


def lint_source(
    text: str,
    relpath: str = "snippet.py",
    path: str = "<memory>",
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint an in-memory snippet (the per-rule fixture-test entry point)."""
    module = ModuleSource(path, text, relpath=relpath)
    return lint_module(module, build_rules(select))


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    for path in paths:
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in ("__pycache__", ".git")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            raise LintError(f"no such file or directory: {path}")


def lint_paths(
    paths: Sequence[str], select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; returns sorted findings."""
    rules = build_rules(select)
    findings: List[Finding] = []
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            module = ModuleSource(filename, text)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    SYNTAX_RULE_ID, SEVERITY_ERROR, filename,
                    exc.lineno or 1, exc.offset or 0,
                    f"cannot parse: {exc.msg}",
                )
            )
            continue
        findings.extend(lint_module(module, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings
