"""Event-loop discipline: nothing in a reactor module may block.

The ``aio`` transport multiplexes every worker socket on one
``selectors`` loop pumped by the calling thread.  A single blocking
call anywhere in that module — a ``sock.recv()`` on a socket that
happens to have no data, a ``time.sleep`` "just while debugging", a
``queue.Queue.get()`` — stalls *every* connection at once, which is
precisely the failure mode the event-driven backend exists to remove.
The only place reactor code is allowed to wait is
``selector.select(timeout)``.

The rule is scoped to :data:`~repro.lint.policy.ASYNC_MODULES` and is
deliberately syntactic: it flags the APIs whose *presence* in reactor
code is near-certainly a blocking bug, rather than trying to prove
blocking-ness.  Non-blocking socket idioms (``recv_into`` on an
``O_NONBLOCK`` socket, ``sendmsg``, ``accept`` under
``BlockingIOError`` handling, ``setblocking``) stay legal.  A
genuinely-justified exception takes a
``# repro: noqa[async-discipline] — reason`` like every other rule.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import (
    Finding,
    ModuleSource,
    Rule,
    SEVERITY_ERROR,
    register_rule,
)
from .policy import ASYNC_MODULES

__all__ = ["AsyncDisciplineRule"]

#: dotted calls that block the calling thread outright
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "select.select",  # reactor modules go through selectors
    }
)

#: method names that block on a readable/connected socket (or signal
#: the blocking-socket idiom, like installing a socket timeout); the
#: non-blocking counterparts (recv_into / sendmsg / send / accept /
#: setblocking) are not listed.
_BLOCKING_METHODS = frozenset(
    {
        "recv",
        "recvfrom",
        "sendall",
        "settimeout",
        "makefile",
    }
)


@register_rule
class AsyncDisciplineRule(Rule):
    """No blocking calls inside event-loop (reactor) modules.

    Flags, inside :data:`~repro.lint.policy.ASYNC_MODULES`:

    * ``time.sleep(...)`` — stalls the whole reactor;
    * ``socket.create_connection(...)`` — a blocking connect;
    * ``select.select(...)`` — reactors use the ``selectors`` API;
    * ``import queue`` / ``from queue import ...`` — its ``get``/``put``
      block by default and have no place on an event loop;
    * blocking socket methods: ``.recv()``, ``.recvfrom()``,
      ``.sendall()``, ``.makefile()``, and ``.settimeout()`` (the
      blocking-socket idiom itself — reactor sockets are
      ``setblocking(False)`` and wait only in ``selector.select``).
    """

    rule_id = "async-discipline"
    severity = SEVERITY_ERROR
    description = (
        "no blocking calls (socket.recv, time.sleep, queue.Queue, ...) "
        "in event-loop modules; wait only in selector.select"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.relpath not in ASYNC_MODULES:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "queue":
                        yield self.finding(
                            module, node,
                            "import queue in a reactor module: Queue.get/"
                            "put block the event loop",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "queue" and node.level == 0:
                    yield self.finding(
                        module, node,
                        "from queue import ... in a reactor module: "
                        "Queue.get/put block the event loop",
                    )
            elif isinstance(node, ast.Call):
                name = module.resolve_call(node)
                if name in _BLOCKING_CALLS:
                    yield self.finding(
                        module, node,
                        f"{name}() blocks the event loop; the reactor may "
                        "wait only in selector.select(timeout)",
                    )
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _BLOCKING_METHODS
                ):
                    yield self.finding(
                        module, node,
                        f".{node.func.attr}() is a blocking-socket call; "
                        "reactor sockets are non-blocking (recv_into/"
                        "sendmsg under BlockingIOError handling)",
                    )
