"""Dtype discipline for the uint64 hash grid and codec kernels.

The multiply-shift hash grid, the MinMaxSketch tables, and the
delta-key codec are exact integer pipelines: a silent upcast to
float64 (``np.asarray`` of a list, a float-defaulting constructor) or
to ``object`` destroys both bit-exactness and vectorisation, and a
stray signed/unsigned mix can wrap the Mersenne arithmetic.  In the
strict modules every array constructor therefore pins its dtype.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import Finding, ModuleSource, Rule, SEVERITY_ERROR, register_rule
from .policy import DTYPE_STRICT_MODULES, is_core_or_sketch

__all__ = ["DtypeDisciplineRule"]

#: numpy constructors whose dtype defaults depend on the input (asarray,
#: array) or silently default to float64 (empty/zeros/ones/full).
_CONSTRUCTORS = {
    "numpy.asarray": 1,   # dtype is the 2nd positional arg
    "numpy.array": 1,
    "numpy.empty": 1,
    "numpy.zeros": 1,
    "numpy.ones": 1,
    "numpy.full": 2,      # np.full(shape, fill_value, dtype)
    "numpy.arange": 3,    # np.arange(start, stop, step, dtype)
}

#: Builtins that, used as a dtype, mean float64/object upcasts.
_BANNED_DTYPES = {"float", "object"}


def _has_dtype(node: ast.Call, positional_slot: int) -> bool:
    if any(kw.arg == "dtype" for kw in node.keywords):
        return True
    return len(node.args) > positional_slot


@register_rule
class DtypeDisciplineRule(Rule):
    """Array constructors in hash/codec modules must pin their dtype.

    * In :data:`~repro.lint.policy.DTYPE_STRICT_MODULES`: flag
      ``np.asarray`` / ``np.array`` / ``np.empty`` / ``np.zeros`` /
      ``np.ones`` / ``np.full`` / ``np.arange`` calls without an
      explicit ``dtype`` — input-dependent defaults are how float64 and
      object arrays leak into the uint64 grid.
    * In all ``core/`` and ``sketch/`` modules: flag ``dtype=float`` /
      ``dtype=object`` and ``.astype(float)`` / ``.astype(object)`` —
      if float64 is genuinely intended, say ``np.float64``.
    """

    rule_id = "dtype-discipline"
    severity = SEVERITY_ERROR
    description = (
        "explicit dtypes in hash-grid/codec modules; no float/object "
        "dtype escapes on the codec surface"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not is_core_or_sketch(module.relpath):
            return
        strict = module.relpath in DTYPE_STRICT_MODULES
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve_call(node)
            if name is None:
                continue
            if strict and name in _CONSTRUCTORS:
                if not _has_dtype(node, _CONSTRUCTORS[name]):
                    short = name.replace("numpy.", "np.")
                    yield self.finding(
                        module, node,
                        f"{short}(...) without an explicit dtype can "
                        "silently upcast to float64/object in an exact "
                        "integer pipeline",
                    )
            if name.endswith(".astype") and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Name) and arg.id in _BANNED_DTYPES:
                    yield self.finding(
                        module, node,
                        f".astype({arg.id}) on the codec surface; spell the "
                        "width explicitly (np.float64) if it is intended",
                    )
            for kw in node.keywords:
                if (
                    kw.arg == "dtype"
                    and isinstance(kw.value, ast.Name)
                    and kw.value.id in _BANNED_DTYPES
                ):
                    yield self.finding(
                        module, node,
                        f"dtype={kw.value.id} on the codec surface; spell "
                        "the width explicitly (np.float64) if it is intended",
                    )
