"""Event-driven transport: every worker socket on one ``selectors`` loop.

The ``tcp`` backend dedicates a blocking socket to each worker and the
driver reads them one at a time — a gather's wall clock is a serial
walk over ``W`` sockets even when most replies already sit in kernel
buffers.  :class:`AioTransport` keeps the same spawned worker
processes, the same hello handshake, and byte-identical SKRT frames,
but multiplexes all connections on a single ``selectors`` reactor that
runs *inside the calling thread*:

* ``recv(worker, timeout)`` pumps the reactor until that worker's
  inbox holds a frame — and while pumping it drains **every** readable
  socket, so early-arriving frames from other workers are reassembled
  and queued (ready for immediate decode) instead of waiting their
  turn.  :meth:`ready_workers` exposes that as a hint the cluster uses
  to gather in arrival order.
* Receive reassembly is zero-copy: each connection owns a
  :class:`~repro.runtime.framing.FrameAssembler` whose reusable buffer
  is filled directly by ``recv_into`` and sliced by ``memoryview`` —
  one copy per frame, from assembler buffer to inbox.
* Sends are vectored: queued frames are ``memoryview`` slices flushed
  with ``socket.sendmsg`` (one syscall for many frames, no
  concatenation), with partial writes resuming mid-frame.
* Both per-worker queues are bounded.  A full inbox pauses read
  interest on that socket (TCP flow control pushes back on the
  worker); a full outbox past :attr:`SEND_TIMEOUT` raises
  :class:`~repro.runtime.transport.TransportBackpressure` instead of
  buffering without limit.

Why ``selectors`` and not ``asyncio``: the Transport contract is a
*blocking* facade (``send`` / ``recv(timeout)``) driven by the
supervisor's synchronous retry loop.  An asyncio event loop would have
to live on a background thread with a cross-thread handoff per frame —
extra latency, extra locking, and a second source of scheduling
nondeterminism.  A selectors reactor pumped by the calling thread
keeps the whole driver single-threaded (fixed-seed runs stay
bit-identical) at C10k-grade fd scale.  See ``docs/runtime.md``.

This module is covered by the ``async-discipline`` lint rule: no
blocking socket calls, ``time.sleep``, or ``queue.Queue`` here — the
only place this code may wait is ``selector.select(timeout)``.
"""

from __future__ import annotations

import collections
import selectors
import socket
import time
from typing import Deque, Dict, List, Optional, Sequence

from .. import telemetry
from .framing import (
    DEFAULT_CAPS,
    KIND_ACK,
    KIND_HELLO,
    V1_CAPS,
    FrameAssembler,
    FrameError,
    ProtocolCaps,
    negotiate_ops,
    negotiate_versions,
    pack_frame,
    pack_hello,
    unpack_frame,
    unpack_hello,
)
from .transport import (
    Transport,
    TransportBackpressure,
    TransportClosed,
    TransportError,
    TransportTimeout,
    _caps_for,
    _chosen_caps,
)

__all__ = ["AioTransport"]

#: cap on buffers per sendmsg call (well under any platform IOV_MAX)
_SENDMSG_BATCH = 64


class _Connection:
    """Driver-side state of one worker socket on the reactor."""

    __slots__ = (
        "sock",
        "worker_id",
        "assembler",
        "inbox",
        "outq",
        "out_bytes",
        "closed",
        "paused",
        "registered",
    )

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.worker_id: Optional[int] = None  # None until hello
        self.assembler = FrameAssembler()
        self.inbox: Deque[bytes] = collections.deque()
        self.outq: Deque[memoryview] = collections.deque()
        self.out_bytes = 0
        self.closed = False
        self.paused = False  # read interest dropped: inbox is full
        self.registered = True


class AioTransport(Transport):
    """Connection-multiplexed transport over one ``selectors`` loop.

    Args:
        num_workers: worker count (same spawned processes as ``tcp``).
        host: bind/connect host.
        spawn_workers: when ``False`` no processes are started; the
            caller reads :attr:`port`, connects ``num_workers``
            external clients (each sending a hello frame), then calls
            :meth:`wait_connected`.  The soak benchmark attaches its
            simulated worker swarm this way.
        max_inbox_frames: per-worker receive queue bound; reads on a
            socket pause while its inbox is full and resume when the
            caller drains it.
        max_outbox_bytes: per-worker send queue bound; a send that
            cannot bring the queue under this within
            :attr:`SEND_TIMEOUT` raises ``TransportBackpressure``.
    """

    name = "aio"

    #: same worker connect-back ceiling as the tcp backend
    CONNECT_TIMEOUT = 60.0
    #: how long a send may pump the reactor waiting for outbox room
    SEND_TIMEOUT = 10.0

    def __init__(
        self,
        num_workers: int,
        host: str = "127.0.0.1",
        *,
        spawn_workers: bool = True,
        max_inbox_frames: int = 1024,
        max_outbox_bytes: int = 32 * 1024 * 1024,
        driver_caps: Optional[ProtocolCaps] = None,
        worker_caps: Optional[Dict[int, ProtocolCaps]] = None,
    ) -> None:
        super().__init__(num_workers)
        if max_inbox_frames <= 0 or max_outbox_bytes <= 0:
            raise ValueError("queue bounds must be positive")
        self._driver_caps = driver_caps or DEFAULT_CAPS
        self.max_inbox_frames = int(max_inbox_frames)
        self.max_outbox_bytes = int(max_outbox_bytes)
        self._sel = selectors.DefaultSelector()
        self._conns: Dict[int, _Connection] = {}
        self._pending: List[_Connection] = []  # accepted, hello not seen
        self._procs = []
        self._spawned = spawn_workers
        self._closed = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            self._listener.bind((host, 0))
            self._listener.listen(num_workers)
            self._listener.setblocking(False)
            self.port = self._listener.getsockname()[1]
            self._sel.register(self._listener, selectors.EVENT_READ, None)
            if spawn_workers:
                import multiprocessing

                from . import worker_main

                ctx = multiprocessing.get_context("spawn")
                for worker_id in range(num_workers):
                    proc = ctx.Process(
                        target=worker_main.tcp_worker_entry,
                        args=(
                            host, self.port, worker_id,
                            _caps_for(worker_caps, worker_id),
                        ),
                        daemon=True,
                        name=f"repro-worker-{worker_id}",
                    )
                    proc.start()
                    self._procs.append(proc)
                self.wait_connected(self.CONNECT_TIMEOUT)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # reactor
    # ------------------------------------------------------------------
    def _pump(self, timeout: float) -> None:
        """One reactor turn: select + service every ready fd."""
        if self._closed:
            raise TransportClosed("transport is closed")
        events = self._sel.select(max(timeout, 0.0))
        for key, mask in events:
            conn = key.data
            if conn is None:
                self._accept_ready()
                continue
            if mask & selectors.EVENT_READ:
                self._on_readable(conn)
            if mask & selectors.EVENT_WRITE and not conn.closed:
                self._flush_writes(conn)

    def _interest(self, conn: _Connection) -> None:
        """Recompute the selector mask from queue state."""
        if conn.closed or not conn.registered:
            return
        mask = 0
        if not conn.paused:
            mask |= selectors.EVENT_READ
        if conn.outq:
            mask |= selectors.EVENT_WRITE
        if mask == 0:
            # Fully quiesced (inbox full, nothing to write): drop the
            # fd from the set until the caller drains the inbox.
            self._sel.unregister(conn.sock)
            conn.registered = False
        else:
            self._sel.modify(conn.sock, mask, conn)

    def _reregister(self, conn: _Connection) -> None:
        if not conn.registered and not conn.closed:
            self._sel.register(conn.sock, selectors.EVENT_READ, conn)
            conn.registered = True
            self._interest(conn)

    def _accept_ready(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _Connection(sock)
            self._sel.register(sock, selectors.EVENT_READ, conn)
            self._pending.append(conn)

    def _on_readable(self, conn: _Connection) -> None:
        view = conn.assembler.writable()
        try:
            n = conn.sock.recv_into(view)
        except (BlockingIOError, InterruptedError):
            return
        except OSError as exc:
            self._mark_closed(conn, f"socket error: {exc}")
            return
        if n == 0:
            self._mark_closed(conn, "peer closed the connection")
            return
        conn.assembler.commit(n)
        self._drain_assembler(conn)

    def _drain_assembler(self, conn: _Connection) -> None:
        """Move complete frames from the assembler into the inbox."""
        while len(conn.inbox) < self.max_inbox_frames:
            try:
                frame = conn.assembler.next_frame()
            except FrameError as exc:
                self._mark_closed(conn, f"stream desynchronised: {exc}")
                return
            if frame is None:
                break
            if conn.worker_id is None:
                self._map_hello(conn, frame)
                continue
            conn.inbox.append(frame)
        if len(conn.inbox) >= self.max_inbox_frames and not conn.paused:
            conn.paused = True
            telemetry.event(
                "transport.read_paused",
                worker=conn.worker_id,
                queued=len(conn.inbox),
            )
            self._interest(conn)

    def _map_hello(self, conn: _Connection, frame: bytes) -> None:
        kind, sender, payload = unpack_frame(frame)
        if not 0 <= sender < self.num_workers or sender in self._conns:
            self._mark_closed(conn, f"bad hello from worker id {sender}")
            raise TransportError(f"bad hello from worker id {sender}")
        if kind == KIND_HELLO:
            theirs = unpack_hello(payload)
            try:
                frame_v, payload_v = negotiate_versions(
                    self._driver_caps, theirs
                )
            except FrameError:
                # NegotiationError (a FrameError): close the socket and
                # let the structured error propagate out of the pump.
                self._mark_closed(conn, f"no common version with {sender}")
                raise
            ops = negotiate_ops(self._driver_caps, theirs, frame_v)
            reply = pack_frame(
                KIND_HELLO, sender,
                pack_hello(_chosen_caps(frame_v, payload_v, ops)),
            )
            conn.outq.append(memoryview(reply))
            conn.out_bytes += len(reply)
            self.negotiated[sender] = (frame_v, payload_v)
            self.ops[sender] = ops
        elif kind == KIND_ACK:
            # Pre-v2 peer: never sends HELLO, speaks v1 only.
            self.negotiated[sender] = negotiate_versions(
                self._driver_caps, V1_CAPS
            )
            self.ops[sender] = False
        else:
            self._mark_closed(conn, f"bad hello from worker id {sender}")
            raise TransportError(
                f"bad hello from worker id {sender}: kind {kind}"
            )
        conn.worker_id = sender
        self._conns[sender] = conn
        if conn in self._pending:
            self._pending.remove(conn)
        if conn.outq:
            self._flush_writes(conn)

    def _mark_closed(self, conn: _Connection, reason: str) -> None:
        if conn.closed:
            return
        conn.closed = True
        conn.outq.clear()
        conn.out_bytes = 0
        if conn.registered:
            try:
                self._sel.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            conn.registered = False
        try:
            conn.sock.close()
        except OSError:
            pass
        if conn in self._pending:
            self._pending.remove(conn)
        telemetry.event(
            "transport.conn_closed", worker=conn.worker_id, reason=reason
        )

    def _flush_writes(self, conn: _Connection) -> None:
        """Vectored flush: sendmsg over the queued memoryviews."""
        while conn.outq:
            bufs = []
            for view in conn.outq:
                bufs.append(view)
                if len(bufs) >= _SENDMSG_BATCH:
                    break
            try:
                n = conn.sock.sendmsg(bufs)
            except (BlockingIOError, InterruptedError):
                break
            except OSError as exc:
                self._mark_closed(conn, f"socket error: {exc}")
                return
            if n == 0:
                break
            conn.out_bytes -= n
            while n > 0 and conn.outq:
                head = conn.outq[0]
                if n >= len(head):
                    n -= len(head)
                    conn.outq.popleft()
                else:
                    conn.outq[0] = head[n:]
                    n = 0
        self._interest(conn)

    # ------------------------------------------------------------------
    # connection setup
    # ------------------------------------------------------------------
    def wait_connected(self, timeout: Optional[float] = None) -> None:
        """Pump the reactor until every worker's hello has been mapped."""
        deadline = time.monotonic() + (
            self.CONNECT_TIMEOUT if timeout is None else timeout
        )
        while len(self._conns) < self.num_workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                missing = set(range(self.num_workers)) - set(self._conns)
                raise TransportError(
                    f"workers {sorted(missing)} never connected back"
                )
            self._pump(min(remaining, 0.5))

    # ------------------------------------------------------------------
    # Transport surface
    # ------------------------------------------------------------------
    def send(self, worker_id: int, frame: bytes) -> None:
        self._check_worker(worker_id)
        conn = self._conns.get(worker_id)
        if conn is None or conn.closed:
            raise TransportClosed(f"worker {worker_id} socket is closed")
        conn.outq.append(memoryview(frame))
        conn.out_bytes += len(frame)
        self._flush_writes(conn)  # opportunistic: usually empties here
        if conn.closed:
            raise TransportClosed(f"worker {worker_id} socket is closed")
        if conn.out_bytes > self.max_outbox_bytes:
            deadline = time.monotonic() + self.SEND_TIMEOUT
            while conn.out_bytes > self.max_outbox_bytes:
                if conn.closed:
                    raise TransportClosed(
                        f"worker {worker_id} socket is closed"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    telemetry.event(
                        "transport.backpressure",
                        worker=worker_id,
                        queued_bytes=conn.out_bytes,
                    )
                    raise TransportBackpressure(
                        f"worker {worker_id} send queue stuck at "
                        f"{conn.out_bytes} bytes for "
                        f"{self.SEND_TIMEOUT:.1f}s (consumer not draining)"
                    )
                self._pump(min(remaining, 0.5))
        telemetry.counter("transport.bytes_sent", len(frame), worker=worker_id)

    def recv(self, worker_id: int, timeout: float) -> bytes:
        self._check_worker(worker_id)
        conn = self._conns.get(worker_id)
        if conn is None:
            raise TransportClosed(f"worker {worker_id} socket is closed")
        deadline = time.monotonic() + max(timeout, 0.0)
        first = True
        while True:
            if conn.inbox:
                frame = conn.inbox.popleft()
                if conn.paused and len(conn.inbox) < self.max_inbox_frames:
                    conn.paused = False
                    # The assembler may hold complete frames received
                    # before the pause; surface them now (may re-pause).
                    self._drain_assembler(conn)
                    if not conn.paused:
                        self._reregister(conn)
                telemetry.counter(
                    "transport.bytes_recv", len(frame), worker=worker_id
                )
                return frame
            if conn.closed:
                raise TransportClosed(
                    f"worker {worker_id} socket is closed"
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0 and not first:
                raise TransportTimeout(
                    f"no frame from worker {worker_id} within {timeout:.3f}s"
                )
            # First turn is always a non-blocking pump so recv(0) can
            # still deliver frames the kernel already holds.
            self._pump(0.0 if first else min(remaining, 0.5))
            first = False

    def ready_workers(
        self,
        candidates: Optional[Sequence[int]] = None,
        timeout: float = 0.0,
    ) -> List[int]:
        """Workers whose inbox already holds a frame (arrival-order hint).

        Runs one non-blocking reactor turn first, so frames the kernel
        received since the last pump are counted.  The cluster's gather
        uses this to service early arrivals (decode overlap) instead of
        blocking on worker 0 while worker 7's reply sits buffered.

        With a positive ``timeout`` the reactor keeps pumping until at
        least one candidate is ready or the deadline passes — the soak
        benchmark's pipelined driver blocks here for the *next arrival
        from anyone* instead of picking a worker to wait on.
        """
        ids = range(self.num_workers) if candidates is None else candidates
        deadline = time.monotonic() + max(timeout, 0.0)
        wait = 0.0
        while True:
            if self._closed:
                return []
            self._pump(wait)
            ready = []
            for worker_id in ids:
                conn = self._conns.get(worker_id)
                if conn is not None and conn.inbox:
                    ready.append(worker_id)
            remaining = deadline - time.monotonic()
            if ready or remaining <= 0:
                return ready
            wait = min(remaining, 0.5)

    def alive(self, worker_id: int) -> bool:
        self._check_worker(worker_id)
        conn = self._conns.get(worker_id)
        if conn is None or conn.closed:
            return False
        if self._spawned:
            return self._procs[worker_id].is_alive()
        return True

    def terminate(self, worker_id: int) -> None:
        self._check_worker(worker_id)
        if self._spawned:
            self._procs[worker_id].terminate()
        conn = self._conns.get(worker_id)
        if conn is not None:
            self._mark_closed(conn, "terminated")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in list(self._conns.values()) + list(self._pending):
            self._mark_closed(conn, "transport closed")
        self._conns.clear()
        self._pending.clear()
        try:
            self._sel.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._sel.close()
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
