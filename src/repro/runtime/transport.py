"""Transport abstraction: how driver/worker frames cross address spaces.

A :class:`Transport` is the driver-side handle to ``W`` workers.  It
moves opaque frame bytes (built by :mod:`repro.runtime.framing`) and
knows nothing about their contents — retries, timeouts, and failure
policies live one layer up in :mod:`repro.runtime.supervision`.

Three backends:

* :class:`SimTransport` — in-process loopback.  Workers are plain
  callables serviced synchronously; a :class:`~repro.distributed.
  network.NetworkModel` can be attached to charge simulated wire time
  per frame, so the cost model of the figure benchmarks is preserved
  while the byte path (serialize → frame → deserialize) is identical
  to the real backends.
* :class:`MultiprocessTransport` — one spawned OS process per worker,
  frames over :func:`multiprocessing.Pipe`.
* :class:`TcpTransport` — one spawned OS process per worker, frames as
  length-prefixed byte streams over host-local TCP sockets.

All three present the same blocking ``send`` / ``recv(timeout)``
surface, which the conformance suite (``tests/test_transport_
conformance.py``) runs against each backend.
"""

from __future__ import annotations

import collections
import socket
import threading
import time
from typing import Callable, Deque, Dict, Iterable, List, Optional, Sequence

from .. import telemetry
from .framing import HEADER_SIZE, FrameError, unpack_header

__all__ = [
    "TransportError",
    "TransportTimeout",
    "TransportClosed",
    "Transport",
    "SimTransport",
    "MultiprocessTransport",
    "TcpTransport",
    "PipeEndpoint",
    "SocketEndpoint",
    "make_transport",
    "TRANSPORT_BACKENDS",
]

#: Registry of backend names accepted by :func:`make_transport` and the
#: ``--backend`` CLI flag.
TRANSPORT_BACKENDS = ("sim", "mp", "tcp")


class TransportError(RuntimeError):
    """Base class for transport failures."""


class TransportTimeout(TransportError):
    """No frame arrived from the worker within the allowed time."""


class TransportClosed(TransportError):
    """The peer endpoint is gone (process exit, closed pipe/socket)."""


class Transport:
    """Driver-side frame pipe to ``W`` workers.

    Subclasses implement point-to-point byte delivery; they do not
    retry, reorder, or interpret frames.
    """

    name: str = "abstract"

    def __init__(self, num_workers: int) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = int(num_workers)

    def _check_worker(self, worker_id: int) -> None:
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(
                f"worker_id {worker_id} outside [0, {self.num_workers})"
            )

    def send(self, worker_id: int, frame: bytes) -> None:
        """Deliver one frame to a worker (raises on a dead endpoint)."""
        raise NotImplementedError

    def recv(self, worker_id: int, timeout: float) -> bytes:
        """Next frame from a worker; :class:`TransportTimeout` if none."""
        raise NotImplementedError

    def alive(self, worker_id: int) -> bool:
        """Best-effort liveness of the worker's endpoint."""
        raise NotImplementedError

    def terminate(self, worker_id: int) -> None:
        """Forcibly kill a worker endpoint (fault testing)."""
        raise NotImplementedError

    def close(self) -> None:
        """Tear down all endpoints; idempotent."""
        raise NotImplementedError

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# sim: in-process loopback over the NetworkModel cost model
# ----------------------------------------------------------------------
class SimTransport(Transport):
    """Synchronous in-process transport with simulated wire costs.

    Each worker is a handler ``fn(frame_bytes) -> iterable of reply
    frames`` run *synchronously* inside :meth:`send`; replies queue in
    per-worker driver inboxes until :meth:`recv` pops them.  ``recv``
    never waits — an empty inbox is exactly what a timeout looks like
    here, so supervision retry paths are exercised without real sleeps.

    Args:
        handlers: one handler per worker.
        network: optional cost model; every frame in either direction
            accrues ``transfer_time(len(frame))`` into
            :attr:`charged_seconds` (the simulated wall clock the
            trainer reports as network time).
    """

    name = "sim"

    def __init__(
        self,
        handlers: Sequence[Callable[[bytes], Iterable[bytes]]],
        network=None,
    ) -> None:
        super().__init__(len(handlers))
        self._handlers = list(handlers)
        self._network = network
        self._inboxes: List[Deque[bytes]] = [
            collections.deque() for _ in handlers
        ]
        self._dead = set()
        self._closed = False
        self.charged_seconds = 0.0

    def _charge(self, frame: bytes) -> None:
        if self._network is not None:
            self.charged_seconds += self._network.transfer_time(len(frame))

    def send(self, worker_id: int, frame: bytes) -> None:
        self._check_worker(worker_id)
        if self._closed:
            raise TransportClosed("transport is closed")
        if worker_id in self._dead:
            raise TransportClosed(f"worker {worker_id} was terminated")
        self._charge(frame)
        telemetry.counter("transport.bytes_sent", len(frame), worker=worker_id)
        for reply in self._handlers[worker_id](bytes(frame)):
            self._charge(reply)
            self._inboxes[worker_id].append(bytes(reply))

    def recv(self, worker_id: int, timeout: float) -> bytes:
        self._check_worker(worker_id)
        if worker_id in self._dead:
            raise TransportClosed(f"worker {worker_id} was terminated")
        inbox = self._inboxes[worker_id]
        if not inbox:
            raise TransportTimeout(
                f"no frame from worker {worker_id} (simulated timeout)"
            )
        frame = inbox.popleft()
        telemetry.counter("transport.bytes_recv", len(frame), worker=worker_id)
        return frame

    def alive(self, worker_id: int) -> bool:
        self._check_worker(worker_id)
        return not self._closed and worker_id not in self._dead

    def terminate(self, worker_id: int) -> None:
        self._check_worker(worker_id)
        self._dead.add(worker_id)
        self._inboxes[worker_id].clear()

    def close(self) -> None:
        self._closed = True
        for inbox in self._inboxes:
            inbox.clear()


# ----------------------------------------------------------------------
# worker-side endpoints (used inside spawned worker processes)
# ----------------------------------------------------------------------
class PipeEndpoint:
    """Worker-side wrapper over a multiprocessing connection."""

    def __init__(self, conn) -> None:
        self._conn = conn
        self._lock = threading.Lock()

    def send(self, frame: bytes) -> None:
        with self._lock:
            self._conn.send_bytes(frame)

    def recv(self) -> Optional[bytes]:
        """Blocking receive; ``None`` when the driver side hung up."""
        try:
            return self._conn.recv_bytes()
        except (EOFError, OSError):
            return None

    def close(self) -> None:
        self._conn.close()


class SocketEndpoint:
    """Worker-side wrapper over a connected TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._lock = threading.Lock()
        self._buffer = bytearray()

    def send(self, frame: bytes) -> None:
        with self._lock:
            self._sock.sendall(frame)

    def _read_exact(self, n: int) -> Optional[bytes]:
        while len(self._buffer) < n:
            chunk = self._sock.recv(65536)
            if not chunk:
                return None
            self._buffer.extend(chunk)
        out = bytes(self._buffer[:n])
        del self._buffer[:n]
        return out

    def recv(self) -> Optional[bytes]:
        """Blocking receive of one frame; ``None`` on EOF."""
        header = self._read_exact(HEADER_SIZE)
        if header is None:
            return None
        _, _, length = unpack_header(header)
        payload = self._read_exact(length) if length else b""
        if payload is None:
            return None
        return header + payload

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# mp: spawned processes over pipes
# ----------------------------------------------------------------------
class MultiprocessTransport(Transport):
    """One spawned process per worker, frames over duplex pipes.

    The ``spawn`` start method is used unconditionally: children
    re-import the package instead of inheriting arbitrary parent state
    (numpy RNGs, open sockets), which keeps worker determinism honest
    and matches the only method available on every platform.
    """

    name = "mp"

    def __init__(self, num_workers: int) -> None:
        super().__init__(num_workers)
        import multiprocessing

        from . import worker_main

        ctx = multiprocessing.get_context("spawn")
        self._conns = []
        self._procs = []
        self._closed = False
        try:
            for worker_id in range(num_workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=worker_main.pipe_worker_entry,
                    args=(child_conn, worker_id),
                    daemon=True,
                    name=f"repro-worker-{worker_id}",
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        except BaseException:
            self.close()
            raise

    def send(self, worker_id: int, frame: bytes) -> None:
        self._check_worker(worker_id)
        try:
            self._conns[worker_id].send_bytes(frame)
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise TransportClosed(
                f"worker {worker_id} pipe is closed: {exc}"
            ) from exc
        telemetry.counter("transport.bytes_sent", len(frame), worker=worker_id)

    def recv(self, worker_id: int, timeout: float) -> bytes:
        self._check_worker(worker_id)
        conn = self._conns[worker_id]
        try:
            if not conn.poll(max(timeout, 0.0)):
                raise TransportTimeout(
                    f"no frame from worker {worker_id} within {timeout:.3f}s"
                )
            frame = conn.recv_bytes()
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise TransportClosed(
                f"worker {worker_id} pipe is closed: {exc}"
            ) from exc
        telemetry.counter("transport.bytes_recv", len(frame), worker=worker_id)
        return frame

    def alive(self, worker_id: int) -> bool:
        self._check_worker(worker_id)
        return self._procs[worker_id].is_alive()

    def terminate(self, worker_id: int) -> None:
        self._check_worker(worker_id)
        self._procs[worker_id].terminate()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)


# ----------------------------------------------------------------------
# tcp: spawned processes over host-local sockets
# ----------------------------------------------------------------------
class TcpTransport(Transport):
    """One spawned process per worker, length-prefixed frames over TCP.

    The driver listens on an ephemeral ``host`` port; each spawned
    worker connects and introduces itself with a hello frame whose
    header carries its worker id, so accept order does not matter.
    """

    name = "tcp"

    #: generous ceiling on how long workers may take to connect back
    #: (spawn + import numpy can take seconds on a loaded CI box).
    CONNECT_TIMEOUT = 60.0

    def __init__(self, num_workers: int, host: str = "127.0.0.1") -> None:
        super().__init__(num_workers)
        import multiprocessing

        from . import worker_main

        self._socks: Dict[int, socket.socket] = {}
        self._buffers: Dict[int, bytearray] = {}
        self._procs = []
        self._closed = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            self._listener.bind((host, 0))
            self._listener.listen(num_workers)
            port = self._listener.getsockname()[1]
            ctx = multiprocessing.get_context("spawn")
            for worker_id in range(num_workers):
                proc = ctx.Process(
                    target=worker_main.tcp_worker_entry,
                    args=(host, port, worker_id),
                    daemon=True,
                    name=f"repro-worker-{worker_id}",
                )
                proc.start()
                self._procs.append(proc)
            self._accept_all()
        except BaseException:
            self.close()
            raise

    def _accept_all(self) -> None:
        deadline = time.monotonic() + self.CONNECT_TIMEOUT
        self._listener.settimeout(1.0)
        while len(self._socks) < self.num_workers:
            if time.monotonic() > deadline:
                missing = set(range(self.num_workers)) - set(self._socks)
                raise TransportError(
                    f"workers {sorted(missing)} never connected back"
                )
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # The hello frame's header names the sender.
            hello = self._read_frame_from(sock, bytearray(), 5.0)
            _, sender, _ = unpack_header(hello)
            if not 0 <= sender < self.num_workers or sender in self._socks:
                sock.close()
                raise TransportError(f"bad hello from worker id {sender}")
            self._socks[sender] = sock
            self._buffers[sender] = bytearray()

    @staticmethod
    def _read_frame_from(
        sock: socket.socket, buffer: bytearray, timeout: float
    ) -> bytes:
        """Read one complete frame, resuming any partial read in ``buffer``."""
        deadline = time.monotonic() + max(timeout, 0.0)

        def fill(n: int) -> None:
            while len(buffer) < n:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportTimeout(
                        f"no complete frame within {timeout:.3f}s"
                    )
                sock.settimeout(remaining)
                try:
                    chunk = sock.recv(65536)
                except socket.timeout:
                    raise TransportTimeout(
                        f"no complete frame within {timeout:.3f}s"
                    ) from None
                except OSError as exc:
                    raise TransportClosed(f"socket error: {exc}") from exc
                if not chunk:
                    raise TransportClosed("peer closed the connection")
                buffer.extend(chunk)

        fill(HEADER_SIZE)
        try:
            _, _, length = unpack_header(bytes(buffer[:HEADER_SIZE]))
        except FrameError as exc:
            # A desynchronised stream is unrecoverable on this socket.
            raise TransportClosed(f"stream desynchronised: {exc}") from exc
        fill(HEADER_SIZE + length)
        frame = bytes(buffer[:HEADER_SIZE + length])
        del buffer[:HEADER_SIZE + length]
        return frame

    def send(self, worker_id: int, frame: bytes) -> None:
        self._check_worker(worker_id)
        sock = self._socks.get(worker_id)
        if sock is None:
            raise TransportClosed(f"worker {worker_id} socket is closed")
        try:
            sock.sendall(frame)
        except OSError as exc:
            raise TransportClosed(
                f"worker {worker_id} socket error: {exc}"
            ) from exc
        telemetry.counter("transport.bytes_sent", len(frame), worker=worker_id)

    def recv(self, worker_id: int, timeout: float) -> bytes:
        self._check_worker(worker_id)
        sock = self._socks.get(worker_id)
        if sock is None:
            raise TransportClosed(f"worker {worker_id} socket is closed")
        frame = self._read_frame_from(sock, self._buffers[worker_id], timeout)
        telemetry.counter("transport.bytes_recv", len(frame), worker=worker_id)
        return frame

    def alive(self, worker_id: int) -> bool:
        self._check_worker(worker_id)
        return (
            worker_id in self._socks
            and self._procs[worker_id].is_alive()
        )

    def terminate(self, worker_id: int) -> None:
        self._check_worker(worker_id)
        self._procs[worker_id].terminate()
        sock = self._socks.pop(worker_id, None)
        if sock is not None:
            sock.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for sock in self._socks.values():
            try:
                sock.close()
            except OSError:
                pass
        self._socks.clear()
        try:
            self._listener.close()
        except OSError:
            pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)


def make_transport(
    backend: str,
    num_workers: int,
    *,
    handlers: Optional[Sequence[Callable[[bytes], Iterable[bytes]]]] = None,
    network=None,
    tcp_host: str = "127.0.0.1",
) -> Transport:
    """Build a transport by backend name.

    ``sim`` requires ``handlers`` (the in-process worker callables);
    ``mp`` and ``tcp`` spawn real worker processes that wait for an
    ``INIT`` frame.
    """
    if backend == "sim":
        if handlers is None:
            raise ValueError("sim backend requires in-process handlers")
        return SimTransport(handlers, network=network)
    if backend == "mp":
        return MultiprocessTransport(num_workers)
    if backend == "tcp":
        return TcpTransport(num_workers, host=tcp_host)
    raise ValueError(
        f"unknown backend {backend!r}; expected one of {TRANSPORT_BACKENDS}"
    )
