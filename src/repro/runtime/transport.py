"""Transport abstraction: how driver/worker frames cross address spaces.

A :class:`Transport` is the driver-side handle to ``W`` workers.  It
moves opaque frame bytes (built by :mod:`repro.runtime.framing`) and
knows nothing about their contents — retries, timeouts, and failure
policies live one layer up in :mod:`repro.runtime.supervision`.

Four backends:

* :class:`SimTransport` — in-process loopback.  Workers are plain
  callables serviced synchronously; a :class:`~repro.distributed.
  network.NetworkModel` can be attached to charge simulated wire time
  per frame, so the cost model of the figure benchmarks is preserved
  while the byte path (serialize → frame → deserialize) is identical
  to the real backends.
* :class:`MultiprocessTransport` — one spawned OS process per worker,
  frames over :func:`multiprocessing.Pipe`.
* :class:`TcpTransport` — one spawned OS process per worker, frames as
  length-prefixed byte streams over host-local TCP sockets, one
  blocking socket per worker.
* :class:`~repro.runtime.aio.AioTransport` — same spawned workers and
  wire bytes as ``tcp``, but all sockets are multiplexed on one
  ``selectors`` event loop with bounded per-worker queues (see
  ``docs/runtime.md``).

All present the same blocking ``send`` / ``recv(timeout)`` surface,
which the conformance suite (``tests/test_transport_conformance.py``)
runs against each backend.
"""

from __future__ import annotations

import collections
import select
import socket
import threading
import time
from typing import Callable, Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from .. import telemetry
from .framing import (
    DEFAULT_CAPS,
    KIND_ACK,
    KIND_HELLO,
    V1_CAPS,
    FrameAssembler,
    FrameError,
    ProtocolCaps,
    negotiate_ops,
    negotiate_versions,
    pack_frame,
    pack_hello,
    unpack_frame,
    unpack_hello,
)

__all__ = [
    "TransportError",
    "TransportTimeout",
    "TransportClosed",
    "TransportBackpressure",
    "Transport",
    "SimTransport",
    "MultiprocessTransport",
    "TcpTransport",
    "PipeEndpoint",
    "SocketEndpoint",
    "make_transport",
    "TRANSPORT_BACKENDS",
]

#: Registry of backend names accepted by :func:`make_transport` and the
#: ``--backend`` CLI flag.
TRANSPORT_BACKENDS = ("sim", "mp", "tcp", "aio")


class TransportError(RuntimeError):
    """Base class for transport failures."""


class TransportTimeout(TransportError):
    """No frame arrived from the worker within the allowed time."""


class TransportClosed(TransportError):
    """The peer endpoint is gone (process exit, closed pipe/socket)."""


class TransportBackpressure(TransportError):
    """A bounded send/receive queue stayed full past its deadline.

    Raised instead of buffering without limit (memory blow-up) or
    silently dropping the frame; the supervisor's retry loop turns a
    persistent one into a structured
    :class:`~repro.runtime.supervision.RetryExhaustedError`.
    """


class Transport:
    """Driver-side frame pipe to ``W`` workers.

    Subclasses implement point-to-point byte delivery; they do not
    retry, reorder, or interpret frames.
    """

    name: str = "abstract"

    def __init__(self, num_workers: int) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = int(num_workers)
        #: per-worker ``(frame_version, payload_version)`` pinned by the
        #: HELLO exchange; a worker with no entry is treated as v1/v1
        #: (a pre-v2 peer that never sent a HELLO).
        self.negotiated: Dict[int, Tuple[int, int]] = {}
        #: per-worker live-ops capability (HELLO TLV extension): True
        #: when both peers advertised ops on a frame-v2+ connection.
        #: Kept separate from :attr:`negotiated` so that dict stays a
        #: pure version map.
        self.ops: Dict[int, bool] = {}

    def negotiated_versions(self, worker_id: int) -> Tuple[int, int]:
        """The ``(frame, payload)`` versions pinned for one worker."""
        return self.negotiated.get(worker_id, (1, 1))

    def ops_enabled(self, worker_id: int) -> bool:
        """Whether the live-ops plane is active on this connection."""
        return self.ops.get(worker_id, False)

    def _check_worker(self, worker_id: int) -> None:
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(
                f"worker_id {worker_id} outside [0, {self.num_workers})"
            )

    def send(self, worker_id: int, frame: bytes) -> None:
        """Deliver one frame to a worker (raises on a dead endpoint)."""
        raise NotImplementedError

    def recv(self, worker_id: int, timeout: float) -> bytes:
        """Next frame from a worker; :class:`TransportTimeout` if none."""
        raise NotImplementedError

    def alive(self, worker_id: int) -> bool:
        """Best-effort liveness of the worker's endpoint."""
        raise NotImplementedError

    def terminate(self, worker_id: int) -> None:
        """Forcibly kill a worker endpoint (fault testing)."""
        raise NotImplementedError

    def close(self) -> None:
        """Tear down all endpoints; idempotent."""
        raise NotImplementedError

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _caps_for(
    worker_caps: Optional[Dict[int, ProtocolCaps]], worker_id: int
) -> ProtocolCaps:
    """The capabilities one worker advertises (tests pin mixed fleets)."""
    if worker_caps is None:
        return DEFAULT_CAPS
    return worker_caps.get(worker_id, DEFAULT_CAPS)


def _chosen_caps(
    frame_version: int, payload_version: int, ops: bool = False
) -> ProtocolCaps:
    """Degenerate ranges carrying the driver's pinned choice back."""
    return ProtocolCaps(
        frame_min=frame_version, frame_max=frame_version,
        payload_min=payload_version, payload_max=payload_version,
        ops=ops,
    )


# ----------------------------------------------------------------------
# sim: in-process loopback over the NetworkModel cost model
# ----------------------------------------------------------------------
class SimTransport(Transport):
    """Synchronous in-process transport with simulated wire costs.

    Each worker is a handler ``fn(frame_bytes) -> iterable of reply
    frames`` run *synchronously* inside :meth:`send`; replies queue in
    per-worker driver inboxes until :meth:`recv` pops them.  ``recv``
    never waits — an empty inbox is exactly what a timeout looks like
    here, so supervision retry paths are exercised without real sleeps.

    Args:
        handlers: one handler per worker.
        network: optional cost model; every frame in either direction
            accrues ``transfer_time(len(frame))`` into
            :attr:`charged_seconds` (the simulated wall clock the
            trainer reports as network time).
    """

    name = "sim"

    def __init__(
        self,
        handlers: Sequence[Callable[[bytes], Iterable[bytes]]],
        network=None,
        *,
        driver_caps: Optional[ProtocolCaps] = None,
        worker_caps: Optional[Dict[int, ProtocolCaps]] = None,
    ) -> None:
        super().__init__(len(handlers))
        # No wire between in-process peers, so the HELLO exchange is
        # computed directly — same negotiation function, same result a
        # byte exchange would pin.
        ours = driver_caps or DEFAULT_CAPS
        for worker_id in range(len(handlers)):
            theirs = _caps_for(worker_caps, worker_id)
            pinned = negotiate_versions(ours, theirs)
            self.negotiated[worker_id] = pinned
            self.ops[worker_id] = negotiate_ops(ours, theirs, pinned[0])
        self._handlers = list(handlers)
        self._network = network
        self._inboxes: List[Deque[bytes]] = [
            collections.deque() for _ in handlers
        ]
        self._dead = set()
        self._closed = False
        self.charged_seconds = 0.0

    def _charge(self, frame: bytes) -> None:
        if self._network is not None:
            self.charged_seconds += self._network.transfer_time(len(frame))

    def send(self, worker_id: int, frame: bytes) -> None:
        self._check_worker(worker_id)
        if self._closed:
            raise TransportClosed("transport is closed")
        if worker_id in self._dead:
            raise TransportClosed(f"worker {worker_id} was terminated")
        self._charge(frame)
        telemetry.counter("transport.bytes_sent", len(frame), worker=worker_id)
        for reply in self._handlers[worker_id](bytes(frame)):
            self._charge(reply)
            self._inboxes[worker_id].append(bytes(reply))

    def recv(self, worker_id: int, timeout: float) -> bytes:
        self._check_worker(worker_id)
        if worker_id in self._dead:
            raise TransportClosed(f"worker {worker_id} was terminated")
        inbox = self._inboxes[worker_id]
        if not inbox:
            raise TransportTimeout(
                f"no frame from worker {worker_id} (simulated timeout)"
            )
        frame = inbox.popleft()
        telemetry.counter("transport.bytes_recv", len(frame), worker=worker_id)
        return frame

    def alive(self, worker_id: int) -> bool:
        self._check_worker(worker_id)
        return not self._closed and worker_id not in self._dead

    def terminate(self, worker_id: int) -> None:
        self._check_worker(worker_id)
        self._dead.add(worker_id)
        self._inboxes[worker_id].clear()

    def close(self) -> None:
        self._closed = True
        for inbox in self._inboxes:
            inbox.clear()


# ----------------------------------------------------------------------
# worker-side endpoints (used inside spawned worker processes)
# ----------------------------------------------------------------------
class PipeEndpoint:
    """Worker-side wrapper over a multiprocessing connection."""

    def __init__(self, conn) -> None:
        self._conn = conn
        self._lock = threading.Lock()

    def send(self, frame: bytes) -> None:
        with self._lock:
            self._conn.send_bytes(frame)

    def recv(self) -> Optional[bytes]:
        """Blocking receive; ``None`` when the driver side hung up."""
        try:
            return self._conn.recv_bytes()
        except (EOFError, OSError):
            return None

    def close(self) -> None:
        self._conn.close()


class SocketEndpoint:
    """Worker-side wrapper over a connected TCP socket.

    Frame reassembly goes through a :class:`~repro.runtime.framing.
    FrameAssembler`: the socket fills the assembler's reusable buffer
    via ``recv_into`` (no per-chunk bytes objects) and complete frames
    are copied out exactly once.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._lock = threading.Lock()
        self._assembler = FrameAssembler()

    def send(self, frame: bytes) -> None:
        with self._lock:
            # The lock exists precisely to serialise whole-frame writes
            # from concurrent senders; sendall must happen under it or
            # two frames could interleave on the stream.
            self._sock.sendall(frame)  # repro: noqa[lock-order] — the lock's purpose is to serialise this blocking write; per-endpoint lock, never nested

    def recv(self) -> Optional[bytes]:
        """Blocking receive of one frame; ``None`` on EOF."""
        while True:
            try:
                frame = self._assembler.next_frame()
            except FrameError:
                return None  # desynchronised stream: treat as hang-up
            if frame is not None:
                return frame
            view = self._assembler.writable()
            try:
                n = self._sock.recv_into(view)
            except OSError:
                return None
            if n == 0:
                return None
            self._assembler.commit(n)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# mp: spawned processes over pipes
# ----------------------------------------------------------------------
class MultiprocessTransport(Transport):
    """One spawned process per worker, frames over duplex pipes.

    The ``spawn`` start method is used unconditionally: children
    re-import the package instead of inheriting arbitrary parent state
    (numpy RNGs, open sockets), which keeps worker determinism honest
    and matches the only method available on every platform.
    """

    name = "mp"

    #: seconds to wait for pipe writability before declaring
    #: backpressure — a healthy worker drains its pipe continuously, so
    #: a pipe that stays full this long has a wedged or absent consumer.
    SEND_TIMEOUT = 10.0

    #: seconds to wait for a v2-capable worker's HELLO after spawn
    #: (spawn + import numpy can take seconds on a loaded CI box).
    HELLO_TIMEOUT = 60.0

    def __init__(
        self,
        num_workers: int,
        *,
        driver_caps: Optional[ProtocolCaps] = None,
        worker_caps: Optional[Dict[int, ProtocolCaps]] = None,
    ) -> None:
        super().__init__(num_workers)
        import multiprocessing

        from . import worker_main

        ours = driver_caps or DEFAULT_CAPS
        ctx = multiprocessing.get_context("spawn")
        self._conns = []
        self._procs = []
        self._closed = False
        try:
            for worker_id in range(num_workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=worker_main.pipe_worker_entry,
                    args=(
                        child_conn, worker_id,
                        _caps_for(worker_caps, worker_id),
                    ),
                    daemon=True,
                    name=f"repro-worker-{worker_id}",
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
            for worker_id in range(num_workers):
                self._negotiate(
                    worker_id, ours, _caps_for(worker_caps, worker_id)
                )
        except BaseException:
            self.close()
            raise

    def _negotiate(
        self, worker_id: int, ours: ProtocolCaps, expected: ProtocolCaps
    ) -> None:
        """HELLO exchange with one spawned worker.

        A v1-capped worker (``frame_max == 1``) never sends a HELLO —
        that *is* the pre-v2 byte stream — so the driver pins it from
        its configured caps without touching the pipe.  Anyone else
        opens with a HELLO carrying its supported ranges; the driver
        answers with the pinned choice.
        """
        if expected.frame_max < 2:
            self.negotiated[worker_id] = negotiate_versions(ours, V1_CAPS)
            self.ops[worker_id] = False
            return
        conn = self._conns[worker_id]
        try:
            if not conn.poll(self.HELLO_TIMEOUT):
                raise TransportTimeout(
                    f"worker {worker_id} sent no HELLO within "
                    f"{self.HELLO_TIMEOUT:.1f}s"
                )
            frame = conn.recv_bytes()
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise TransportClosed(
                f"worker {worker_id} pipe closed during HELLO: {exc}"
            ) from exc
        kind, sender, payload = unpack_frame(frame)
        if kind != KIND_HELLO or sender != worker_id:
            raise TransportError(
                f"bad hello from worker {worker_id}: kind {kind}"
            )
        theirs = unpack_hello(payload)
        # NegotiationError propagates: a fleet with no common version is
        # a structured construction failure, not something to retry.
        frame_v, payload_v = negotiate_versions(ours, theirs)
        ops = negotiate_ops(ours, theirs, frame_v)
        conn.send_bytes(
            pack_frame(
                KIND_HELLO, worker_id,
                pack_hello(_chosen_caps(frame_v, payload_v, ops)),
            )
        )
        self.negotiated[worker_id] = (frame_v, payload_v)
        self.ops[worker_id] = ops

    def send(self, worker_id: int, frame: bytes) -> None:
        self._check_worker(worker_id)
        conn = self._conns[worker_id]
        # A full pipe means the consumer stopped draining; bound the
        # wait instead of blocking in send_bytes forever (the pipe
        # buffer itself bounds queued memory).
        try:
            _, writable, _ = select.select(
                [], [conn.fileno()], [], self.SEND_TIMEOUT
            )
        except (OSError, ValueError) as exc:
            raise TransportClosed(
                f"worker {worker_id} pipe is closed: {exc}"
            ) from exc
        if not writable:
            raise TransportBackpressure(
                f"worker {worker_id} pipe not writable within "
                f"{self.SEND_TIMEOUT:.1f}s (consumer not draining)"
            )
        try:
            conn.send_bytes(frame)
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise TransportClosed(
                f"worker {worker_id} pipe is closed: {exc}"
            ) from exc
        telemetry.counter("transport.bytes_sent", len(frame), worker=worker_id)

    def recv(self, worker_id: int, timeout: float) -> bytes:
        self._check_worker(worker_id)
        conn = self._conns[worker_id]
        try:
            if not conn.poll(max(timeout, 0.0)):
                raise TransportTimeout(
                    f"no frame from worker {worker_id} within {timeout:.3f}s"
                )
            frame = conn.recv_bytes()
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise TransportClosed(
                f"worker {worker_id} pipe is closed: {exc}"
            ) from exc
        telemetry.counter("transport.bytes_recv", len(frame), worker=worker_id)
        return frame

    def alive(self, worker_id: int) -> bool:
        self._check_worker(worker_id)
        return self._procs[worker_id].is_alive()

    def terminate(self, worker_id: int) -> None:
        self._check_worker(worker_id)
        self._procs[worker_id].terminate()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)


# ----------------------------------------------------------------------
# tcp: spawned processes over host-local sockets
# ----------------------------------------------------------------------
class TcpTransport(Transport):
    """One spawned process per worker, length-prefixed frames over TCP.

    The driver listens on an ephemeral ``host`` port; each spawned
    worker connects and introduces itself with a hello frame whose
    header carries its worker id, so accept order does not matter.

    With ``spawn_workers=False`` no processes are started: the caller
    reads :attr:`port`, connects ``num_workers`` external clients that
    each send a hello frame, then calls :meth:`accept_connections`.
    The soak benchmark uses this to attach a simulated worker swarm.
    """

    name = "tcp"

    #: generous ceiling on how long workers may take to connect back
    #: (spawn + import numpy can take seconds on a loaded CI box).
    CONNECT_TIMEOUT = 60.0

    def __init__(
        self,
        num_workers: int,
        host: str = "127.0.0.1",
        *,
        spawn_workers: bool = True,
        driver_caps: Optional[ProtocolCaps] = None,
        worker_caps: Optional[Dict[int, ProtocolCaps]] = None,
    ) -> None:
        super().__init__(num_workers)
        self._driver_caps = driver_caps or DEFAULT_CAPS
        self._socks: Dict[int, socket.socket] = {}
        self._assemblers: Dict[int, FrameAssembler] = {}
        self._procs = []
        self._spawned = spawn_workers
        self._closed = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            self._listener.bind((host, 0))
            self._listener.listen(num_workers)
            self.port = self._listener.getsockname()[1]
            if spawn_workers:
                import multiprocessing

                from . import worker_main

                ctx = multiprocessing.get_context("spawn")
                for worker_id in range(num_workers):
                    proc = ctx.Process(
                        target=worker_main.tcp_worker_entry,
                        args=(
                            host, self.port, worker_id,
                            _caps_for(worker_caps, worker_id),
                        ),
                        daemon=True,
                        name=f"repro-worker-{worker_id}",
                    )
                    proc.start()
                    self._procs.append(proc)
                self.accept_connections()
        except BaseException:
            self.close()
            raise

    def accept_connections(self, timeout: Optional[float] = None) -> None:
        """Accept until every worker's hello frame has been mapped.

        A ``HELLO`` opener triggers version negotiation and is answered
        with the pinned choice; a legacy ``ACK`` hello pins the peer at
        v1/v1 — exactly the pre-v2 handshake.  A fleet with no common
        version raises :class:`~repro.runtime.framing.NegotiationError`.
        """
        deadline = time.monotonic() + (
            self.CONNECT_TIMEOUT if timeout is None else timeout
        )
        self._listener.settimeout(1.0)
        while len(self._socks) < self.num_workers:
            if time.monotonic() > deadline:
                missing = set(range(self.num_workers)) - set(self._socks)
                raise TransportError(
                    f"workers {sorted(missing)} never connected back"
                )
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # The hello frame's header names the sender.  The assembler
            # is kept: bytes a peer sent right behind its hello (early
            # heartbeats) stay buffered for later recvs.
            assembler = FrameAssembler()
            hello = self._read_frame_from(sock, assembler, 5.0)
            kind, sender, payload = unpack_frame(hello)
            if not 0 <= sender < self.num_workers or sender in self._socks:
                sock.close()
                raise TransportError(f"bad hello from worker id {sender}")
            if kind == KIND_HELLO:
                theirs = unpack_hello(payload)
                try:
                    frame_v, payload_v = negotiate_versions(
                        self._driver_caps, theirs
                    )
                except FrameError:
                    sock.close()
                    raise
                ops = negotiate_ops(self._driver_caps, theirs, frame_v)
                sock.sendall(
                    pack_frame(
                        KIND_HELLO, sender,
                        pack_hello(_chosen_caps(frame_v, payload_v, ops)),
                    )
                )
                self.negotiated[sender] = (frame_v, payload_v)
                self.ops[sender] = ops
            elif kind == KIND_ACK:
                # Pre-v2 peer: never sends HELLO, speaks v1 only.
                self.negotiated[sender] = negotiate_versions(
                    self._driver_caps, V1_CAPS
                )
                self.ops[sender] = False
            else:
                sock.close()
                raise TransportError(
                    f"bad hello from worker id {sender}: kind {kind}"
                )
            self._socks[sender] = sock
            self._assemblers[sender] = assembler

    @staticmethod
    def _read_frame_from(
        sock: socket.socket, assembler: FrameAssembler, timeout: float
    ) -> bytes:
        """Read one complete frame, resuming any partial read held by
        the worker's :class:`FrameAssembler`."""
        deadline = time.monotonic() + max(timeout, 0.0)
        while True:
            try:
                frame = assembler.next_frame()
            except FrameError as exc:
                # A desynchronised stream is unrecoverable on this socket.
                raise TransportClosed(f"stream desynchronised: {exc}") from exc
            if frame is not None:
                return frame
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportTimeout(
                    f"no complete frame within {timeout:.3f}s"
                )
            sock.settimeout(remaining)
            view = assembler.writable()
            try:
                n = sock.recv_into(view)
            except socket.timeout:
                raise TransportTimeout(
                    f"no complete frame within {timeout:.3f}s"
                ) from None
            except OSError as exc:
                raise TransportClosed(f"socket error: {exc}") from exc
            if n == 0:
                raise TransportClosed("peer closed the connection")
            assembler.commit(n)

    def send(self, worker_id: int, frame: bytes) -> None:
        self._check_worker(worker_id)
        sock = self._socks.get(worker_id)
        if sock is None:
            raise TransportClosed(f"worker {worker_id} socket is closed")
        try:
            sock.sendall(frame)
        except OSError as exc:
            raise TransportClosed(
                f"worker {worker_id} socket error: {exc}"
            ) from exc
        telemetry.counter("transport.bytes_sent", len(frame), worker=worker_id)

    def recv(self, worker_id: int, timeout: float) -> bytes:
        self._check_worker(worker_id)
        sock = self._socks.get(worker_id)
        if sock is None:
            raise TransportClosed(f"worker {worker_id} socket is closed")
        frame = self._read_frame_from(
            sock, self._assemblers[worker_id], timeout
        )
        telemetry.counter("transport.bytes_recv", len(frame), worker=worker_id)
        return frame

    def alive(self, worker_id: int) -> bool:
        self._check_worker(worker_id)
        if worker_id not in self._socks:
            return False
        if self._spawned:
            return self._procs[worker_id].is_alive()
        return True

    def terminate(self, worker_id: int) -> None:
        self._check_worker(worker_id)
        if self._spawned:
            self._procs[worker_id].terminate()
        sock = self._socks.pop(worker_id, None)
        if sock is not None:
            sock.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for sock in self._socks.values():
            try:
                sock.close()
            except OSError:
                pass
        self._socks.clear()
        try:
            self._listener.close()
        except OSError:
            pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)


def make_transport(
    backend: str,
    num_workers: int,
    *,
    handlers: Optional[Sequence[Callable[[bytes], Iterable[bytes]]]] = None,
    network=None,
    tcp_host: str = "127.0.0.1",
    driver_caps: Optional[ProtocolCaps] = None,
    worker_caps: Optional[Dict[int, ProtocolCaps]] = None,
) -> Transport:
    """Build a transport by backend name.

    ``sim`` requires ``handlers`` (the in-process worker callables);
    ``mp``, ``tcp``, and ``aio`` spawn real worker processes that wait
    for an ``INIT`` frame.  ``driver_caps`` / ``worker_caps`` pin the
    protocol versions each side advertises in the HELLO exchange
    (defaults advertise everything this build speaks); the result's
    ``negotiated`` maps each worker to its pinned versions.
    """
    if backend == "sim":
        if handlers is None:
            raise ValueError("sim backend requires in-process handlers")
        return SimTransport(
            handlers, network=network,
            driver_caps=driver_caps, worker_caps=worker_caps,
        )
    if backend == "mp":
        return MultiprocessTransport(
            num_workers, driver_caps=driver_caps, worker_caps=worker_caps
        )
    if backend == "tcp":
        return TcpTransport(
            num_workers, host=tcp_host,
            driver_caps=driver_caps, worker_caps=worker_caps,
        )
    if backend == "aio":
        from .aio import AioTransport  # deferred: keeps import cheap

        return AioTransport(
            num_workers, host=tcp_host,
            driver_caps=driver_caps, worker_caps=worker_caps,
        )
    raise ValueError(
        f"unknown backend {backend!r}; expected one of {TRANSPORT_BACKENDS}"
    )
