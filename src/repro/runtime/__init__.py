"""repro.runtime — real multi-process execution backends for training.

The simulated trainer models a cluster; this package *runs* one.  Each
worker is a real OS process (``mp`` / ``tcp`` backends) or an
in-process handler with a simulated network cost model (``sim``), and
every gradient exchange round-trips through the same
``serialize_message`` / ``deserialize_message`` wire bytes on every
backend.

Layers, bottom up:

* :mod:`~repro.runtime.framing` — the ``SKRT`` frame codec (wire
  module).
* :mod:`~repro.runtime.transport` — byte delivery: ``sim`` loopback,
  ``mp`` pipes, ``tcp`` host-local sockets.
* :mod:`~repro.runtime.aio` — the event-driven backend: every worker
  socket multiplexed on one ``selectors`` loop with zero-copy frame
  reassembly and bounded, backpressured queues.
* :mod:`~repro.runtime.faults` — seeded drop/delay/duplicate/corrupt
  injection wrapping any transport.
* :mod:`~repro.runtime.supervision` — timeouts, bounded retries with
  backoff + jitter, heartbeats, fail-fast/drop policies.
* :mod:`~repro.runtime.worker_runtime` / :mod:`~repro.runtime.
  worker_main` — worker-side replica state + process entry points.
* :mod:`~repro.runtime.cluster` — the driver-side orchestration the
  trainer talks to.

See ``docs/runtime.md`` for the backend matrix and supervision
semantics.
"""

from .cluster import ClusterError, RoundResult, RuntimeCluster, RuntimeConfig
from .faults import FaultConfig, FaultSchedule, FaultyTransport
from .framing import FrameError
from .supervision import (
    HeartbeatLostError,
    RetryExhaustedError,
    SupervisionConfig,
    Supervisor,
    WorkerCrashedError,
    WorkerSupervisionError,
)
from .aio import AioTransport
from .transport import (
    TRANSPORT_BACKENDS,
    MultiprocessTransport,
    SimTransport,
    TcpTransport,
    Transport,
    TransportBackpressure,
    TransportClosed,
    TransportError,
    TransportTimeout,
    make_transport,
)
from .worker_runtime import WorkerBootstrap, WorkerRuntime

__all__ = [
    "ClusterError",
    "RoundResult",
    "RuntimeCluster",
    "RuntimeConfig",
    "FaultConfig",
    "FaultSchedule",
    "FaultyTransport",
    "FrameError",
    "HeartbeatLostError",
    "RetryExhaustedError",
    "SupervisionConfig",
    "Supervisor",
    "WorkerCrashedError",
    "WorkerSupervisionError",
    "TRANSPORT_BACKENDS",
    "AioTransport",
    "MultiprocessTransport",
    "SimTransport",
    "TcpTransport",
    "Transport",
    "TransportBackpressure",
    "TransportClosed",
    "TransportError",
    "TransportTimeout",
    "make_transport",
    "WorkerBootstrap",
    "WorkerRuntime",
]
