"""Driver-side cluster orchestration over a supervised transport.

A :class:`RuntimeCluster` owns the full driver view of one training
run: it boots ``W`` workers on the configured backend (in-process
handlers for ``sim``, spawned OS processes for ``mp`` / ``tcp``),
wraps the transport in seeded fault injection when asked, and runs the
per-round protocol::

    EPOCH  -> ack            (reshuffle partitions)
    STEP   -> GRAD           (compute + compress, real wire bytes back)
    UPDATE -> ack            (apply broadcast aggregate to replicas)

Every exchange goes through the :class:`~repro.runtime.supervision.
Supervisor`, so timeouts, retries, heartbeat loss, and the
fail-fast/drop policies apply uniformly to all backends.  A round's
results only include workers that answered; under the ``drop`` policy
the caller aggregates over survivors and the per-key mean in
:func:`repro.distributed.driver.aggregate_sparse_gradients` re-weights
the update automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from .. import telemetry
from ..core.serialization import (
    deserialize_message,
    deserialize_message_chunks,
    serialize_message,
)
from .faults import FaultConfig, FaultSchedule, FaultyTransport
from .framing import (
    DEFAULT_CHUNK_BYTES,
    GRAD_HEADER_SIZE,
    KIND_ACK,
    KIND_CHUNK,
    KIND_ECHO,
    KIND_END,
    KIND_EPOCH,
    KIND_GRAD,
    KIND_HEARTBEAT,
    KIND_INIT,
    KIND_READY,
    KIND_RESHARD,
    KIND_STEP,
    KIND_STOP,
    KIND_SYNC,
    KIND_UPDATE,
    ChunkReassembler,
    FrameError,
    ProtocolCaps,
    iter_chunk_frames,
    pack_ack,
    pack_frame,
    pack_ops,
    pack_step,
    pack_update_header,
    split_chunk_prefix,
    split_ops_prefix_chunks,
    unpack_ack,
    unpack_frame,
    unpack_grad,
    unpack_ops_prefix,
)
from .supervision import SupervisionConfig, Supervisor
from .transport import (
    TRANSPORT_BACKENDS,
    SimTransport,
    Transport,
    TransportError,
    make_transport,
)
from .worker_runtime import WorkerBootstrap, WorkerRuntime

__all__ = ["RuntimeConfig", "RoundResult", "ClusterError", "RuntimeCluster"]

#: Driver frames carry this sender id (workers are 0..W-1).
DRIVER_SENDER = 0xFFFF


class ClusterError(RuntimeError):
    """The cluster as a whole cannot make progress (e.g. no workers left)."""


@dataclass(frozen=True)
class RuntimeConfig:
    """Execution-backend selection + supervision + fault knobs.

    This is runtime policy, deliberately separate from
    :class:`~repro.core.config.SketchMLConfig` (codec policy): the
    same compression config must produce identical bytes on every
    backend.

    Attributes:
        backend: one of ``sim`` / ``mp`` / ``tcp`` / ``aio``.
        supervision: retry/timeout/heartbeat policy.
        faults: optional seeded probabilistic fault rates.
        fault_schedule: optional exact fault triggers (tests).
        tcp_host: bind/connect host for the ``tcp`` / ``aio`` backends.
        driver_caps: protocol versions the driver advertises in the
            HELLO exchange (``None`` → everything this build speaks).
        worker_caps: per-worker capability overrides — the conformance
            tier pins mixed v1/v2 fleets with this (``None`` → every
            worker advertises everything).
        entropy_coding: request rANS entropy coding of bucket-index
            streams on payload-v2 connections (``docs/wire.md``);
            v1-pinned peers are unaffected.
        chunk_bytes: data bytes per ``CHUNK`` frame when a body larger
            than this streams over a frame-v2 connection.
    """

    backend: str = "sim"
    supervision: SupervisionConfig = field(default_factory=SupervisionConfig)
    faults: Optional[FaultConfig] = None
    fault_schedule: Optional[FaultSchedule] = None
    tcp_host: str = "127.0.0.1"
    driver_caps: Optional[ProtocolCaps] = None
    worker_caps: Optional[Dict[int, ProtocolCaps]] = None
    entropy_coding: bool = False
    chunk_bytes: int = DEFAULT_CHUNK_BYTES

    def __post_init__(self) -> None:
        if self.backend not in TRANSPORT_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"expected one of {TRANSPORT_BACKENDS}"
            )
        if self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")


@dataclass
class RoundResult:
    """One worker's answer to a ``STEP``.

    ``message`` is the deserialized compressed gradient (``None`` when
    the worker's partition was exhausted this epoch);
    ``message_bytes`` is the on-the-wire size actually shipped.
    """

    worker_id: int
    has_batch: bool
    local_loss: float
    compute_seconds: float
    encode_seconds: float
    gradient_nnz: int
    message: Optional[object]
    message_bytes: int
    #: live-ops metric deltas that rode the GRAD reply (empty on
    #: non-ops connections); folded into the metrics hub by ``step``.
    metrics: Dict[str, int] = field(default_factory=dict)


def _sim_handler(
    runtime: WorkerRuntime, worker_id: int
) -> Callable[[bytes], List[bytes]]:
    """In-process equivalent of the spawned worker's serve loop.

    Mirrors ``serve()``'s frame dispatch including CHUNK/END
    reassembly: the sim transport negotiates frame v2 by default, so
    a broadcast UPDATE larger than ``chunk_bytes`` arrives here as a
    chunk stream.  Reassembly protocol errors drop the stream and
    leave the retry to supervision, exactly like the spawned worker.
    """
    reassembler = ChunkReassembler()

    def handle(frame: bytes) -> List[bytes]:
        kind, _, payload = unpack_frame(frame)
        if kind == KIND_ECHO:
            return [pack_frame(KIND_ECHO, worker_id, payload)]
        if kind in (KIND_STOP, KIND_HEARTBEAT):
            return []
        if kind == KIND_CHUNK:
            try:
                reassembler.feed_tolerant(payload)
            except FrameError:
                reassembler.reset()
            return []
        if kind == KIND_END:
            try:
                stream = reassembler.finish_tolerant(payload)
            except FrameError:
                reassembler.reset()
                return []
            if stream is None:
                return []
            inner_kind, chunks = stream
            return runtime.handle_chunks(inner_kind, chunks)
        return runtime.handle(kind, payload)

    return handle


class RuntimeCluster:
    """Boot, drive, and tear down ``W`` workers on any backend.

    Args:
        bootstraps: one :class:`WorkerBootstrap` per worker, in worker
            id order (ids must be ``0..W-1``).
        config: backend + supervision + fault selection.
        network: optional :class:`~repro.distributed.network.
            NetworkModel`, attached to the ``sim`` transport to charge
            simulated wire time per frame.
    """

    def __init__(
        self,
        bootstraps: List[WorkerBootstrap],
        config: Optional[RuntimeConfig] = None,
        *,
        network=None,
    ) -> None:
        if not bootstraps:
            raise ValueError("at least one worker bootstrap is required")
        for expect, spec in enumerate(bootstraps):
            if spec.worker_id != expect:
                raise ValueError(
                    f"bootstraps must be in id order: slot {expect} "
                    f"holds worker {spec.worker_id}"
                )
        self.config = config or RuntimeConfig()
        self.num_workers = len(bootstraps)
        self._closed = False
        backend = self.config.backend
        # The cluster owns the wire policy: stamp it onto every
        # bootstrap so workers and driver agree from one knob.
        for spec in bootstraps:
            spec.entropy_coding = bool(self.config.entropy_coding)
            spec.chunk_bytes = int(self.config.chunk_bytes)
        if backend == "sim":
            runtimes = [WorkerRuntime(spec) for spec in bootstraps]
            handlers = [
                _sim_handler(rt, i) for i, rt in enumerate(runtimes)
            ]
            transport: Transport = SimTransport(
                handlers, network=network,
                driver_caps=self.config.driver_caps,
                worker_caps=self.config.worker_caps,
            )
            for worker_id, runtime in enumerate(runtimes):
                frame_v, payload_v = transport.negotiated[worker_id]
                runtime.set_wire(
                    frame_v, payload_v,
                    ops=transport.ops_enabled(worker_id),
                )
            # Simulated retries must not burn wall time.
            sleeper: Callable[[float], None] = lambda _s: None
        else:
            transport = make_transport(
                backend, self.num_workers, tcp_host=self.config.tcp_host,
                driver_caps=self.config.driver_caps,
                worker_caps=self.config.worker_caps,
            )
            import time

            sleeper = time.sleep
        #: per-worker pinned ``(frame_version, payload_version)``
        self.negotiated: Dict[int, Tuple[int, int]] = dict(
            transport.negotiated
        )
        #: per-worker live-ops capability (both sides advertised it on
        #: a frame-v2 connection); captured before any fault wrapper.
        self.ops: Dict[int, bool] = dict(getattr(transport, "ops", {}))
        if self.config.faults is not None or self.config.fault_schedule is not None:
            transport = FaultyTransport(
                transport,
                config=self.config.faults,
                schedule=self.config.fault_schedule,
            )
        self.transport = transport
        self.supervisor = Supervisor(
            transport, self.config.supervision, sleeper=sleeper
        )
        if backend != "sim":
            self._init_workers(bootstraps)
        hub = telemetry.metrics_hub()
        if hub is not None:
            hub.set_info(
                backend=backend,
                workers=self.num_workers,
                entropy_coding=bool(self.config.entropy_coding),
                chunk_bytes=int(self.config.chunk_bytes),
            )
            hub.mark_ready()

    # ------------------------------------------------------------------
    def _init_workers(self, bootstraps: List[WorkerBootstrap]) -> None:
        """INIT → READY handshake with every spawned worker."""
        frames = [
            pack_frame(KIND_INIT, DRIVER_SENDER, spec.to_bytes())
            for spec in bootstraps
        ]
        sent = self._send_all(frames)
        self._collect(
            frames,
            sent,
            phase="init",
            expect_kind=KIND_READY,
            timeout=self.config.supervision.init_timeout,
        )
        self._require_workers("init")

    def _send_all(
        self,
        frames: List[Union[bytes, List[bytes]]],
        workers: Optional[Iterable[int]] = None,
    ) -> Dict[int, bool]:
        """Pipelined fan-out: push every frame before collecting replies.

        An entry may be a single frame or a chunked ``CHUNK``...``END``
        sequence (sent back to back).  Targets the active membership by
        default; elastic phases pass an explicit subset.  Returns which
        sends succeeded; failed sends are retried inside the supervisor
        (``already_sent=False``).
        """
        if workers is None:
            workers = self.supervisor.members
        sent: Dict[int, bool] = {}
        for worker_id in sorted(workers):
            entry = frames[worker_id]
            pieces = [entry] if isinstance(entry, bytes) else entry
            try:
                for piece in pieces:
                    self.transport.send(worker_id, piece)
                sent[worker_id] = True
            except TransportError:
                sent[worker_id] = False
        return sent

    def _collect(
        self,
        frames: List[bytes],
        sent: Dict[int, bool],
        *,
        phase: str,
        expect_kind: int,
        decode: Optional[Callable[[bytes], object]] = None,
        timeout: Optional[float] = None,
        workers: Optional[Iterable[int]] = None,
    ) -> Dict[int, object]:
        """Gather one reply per alive worker, in arrival order when the
        transport can tell us (``ready_workers``), worker-id order
        otherwise.

        On an event-driven transport a reply that is already buffered
        is serviced — and *decoded* — immediately, while slower
        workers' replies are still in flight; the classic backends fall
        back to the id-order walk.  Results are returned keyed and
        iterable in ascending worker id regardless of arrival order,
        so downstream float aggregation visits workers in the same
        order on every backend (bit-identical training).
        """
        targets = (
            self.supervisor.members if workers is None else set(workers)
        )
        ready_fn = getattr(self.transport, "ready_workers", None)
        results: Dict[int, object] = {}
        overlapped = 0
        with telemetry.span("runtime.gather", phase=phase):
            while True:
                pending = [
                    w for w in sorted(targets & self.supervisor.alive)
                    if w not in results
                ]
                if not pending:
                    break
                worker_id = pending[0]
                if ready_fn is not None and len(pending) > 1:
                    ready = ready_fn(pending)
                    if ready:
                        worker_id = ready[0]
                        if worker_id != pending[0]:
                            # Decoding this early arrival overlaps with
                            # the still-in-flight replies of the
                            # workers it overtook.
                            overlapped += 1
                result = self.supervisor.request(
                    worker_id,
                    frames[worker_id],
                    phase=phase,
                    expect_kind=expect_kind,
                    decode=decode,
                    timeout=timeout,
                    already_sent=sent.get(worker_id, False),
                )
                results[worker_id] = result
            if overlapped:
                telemetry.counter(
                    "runtime.gather.overlap_decodes", overlapped, phase=phase
                )
        return {w: results[w] for w in sorted(results)}

    def _require_workers(self, phase: str) -> None:
        if not self.supervisor.members:
            dead = {
                w: str(err) for w, err in sorted(self.supervisor.dead.items())
            }
            raise ClusterError(
                f"no active workers left after phase {phase!r}: "
                f"dead={dead} detached={sorted(self.supervisor.detached)}"
            )

    # ------------------------------------------------------------------
    @property
    def alive_workers(self) -> List[int]:
        return sorted(self.supervisor.alive)

    @property
    def member_workers(self) -> List[int]:
        """Active membership: alive and not detached, ascending."""
        return sorted(self.supervisor.members)

    @property
    def dropped_workers(self) -> Dict[int, str]:
        return {w: str(e) for w, e in sorted(self.supervisor.dead.items())}

    @property
    def charged_seconds(self) -> float:
        """Simulated wire seconds (``sim`` backend only, else 0)."""
        inner = self.transport
        if isinstance(inner, FaultyTransport):
            inner = inner.inner
        return getattr(inner, "charged_seconds", 0.0)

    # ------------------------------------------------------------------
    def start_epoch(
        self, epoch: int, workers: Optional[Iterable[int]] = None
    ) -> None:
        """Reshuffle the partitions of the targeted workers (all active
        members by default) for a new epoch."""
        self.supervisor.check_heartbeats(phase="epoch")
        targets = (
            sorted(self.supervisor.members) if workers is None
            else sorted(workers)
        )
        frame = pack_frame(KIND_EPOCH, DRIVER_SENDER, pack_ack(epoch))
        frames = [frame] * self.num_workers
        sent = self._send_all(frames, targets)

        def decode(payload: bytes) -> int:
            acked = unpack_ack(payload)
            if acked != epoch:
                raise FrameError(f"stale epoch ack {acked} (want {epoch})")
            return acked

        self._collect(
            frames, sent, phase="epoch", expect_kind=KIND_ACK,
            decode=decode, workers=targets,
        )
        self._require_workers("epoch")

    def step(
        self,
        round_id: int,
        lr: float,
        workers: Optional[Iterable[int]] = None,
    ) -> Dict[int, RoundResult]:
        """One gradient round: STEP the targeted workers (all active
        members by default), collect GRAD replies.

        Returns results keyed by worker id, ascending — only for
        workers that answered.  Each GRAD payload round-trips through
        :func:`~repro.core.serialization.deserialize_message` (or its
        streaming twin for a chunked reply) inside the supervised
        decode, so a corrupted reply is rejected (and retried) rather
        than aggregated.
        """
        self.supervisor.check_heartbeats(phase="step")
        targets = (
            sorted(self.supervisor.members) if workers is None
            else sorted(workers)
        )
        # Stamp the innermost open driver span (the trainer's round
        # span) into STEP frames for ops-capable workers: their
        # worker.step spans parent under it across the process
        # boundary.  Context bytes never reach the training math.
        span_ctx = telemetry.current_span_id()
        base = pack_step(round_id, lr)
        frame = pack_frame(KIND_STEP, DRIVER_SENDER, base)
        frames: List[Union[bytes, List[bytes]]] = [frame] * self.num_workers
        if span_ctx is not None:
            ops_frame = pack_frame(
                KIND_STEP, DRIVER_SENDER, base + pack_ops(span_ctx)
            )
            for w in targets:
                if self.ops.get(w, False):
                    frames[w] = ops_frame
        with telemetry.span("runtime.fanout", phase="step"):
            sent = self._send_all(frames, targets)

        def decode(payload) -> RoundResult:
            if isinstance(payload, list):
                # Streamed GRAD: peel the fixed header (and any ops
                # block) off the chunk list; the message bytes go to
                # the streaming deserialiser without ever being joined
                # contiguously.
                head, rest = split_chunk_prefix(payload, GRAD_HEADER_SIZE)
                (rid, has_batch, loss, compute_s, encode_s, nnz,
                 _) = unpack_grad(head)
                _, deltas, rest = split_ops_prefix_chunks(rest)
            else:
                (rid, has_batch, loss, compute_s, encode_s, nnz,
                 rest) = unpack_grad(payload)
                _, deltas, rest = unpack_ops_prefix(rest)
            if rid != round_id:
                raise FrameError(
                    f"stale GRAD for round {rid} (want {round_id})"
                )
            if isinstance(rest, list):
                data_len = sum(len(c) for c in rest)
                message = (
                    deserialize_message_chunks(rest) if has_batch else None
                )
            else:
                data_len = len(rest)
                message = deserialize_message(rest) if has_batch else None
            return RoundResult(
                worker_id=-1,
                has_batch=has_batch,
                local_loss=loss,
                compute_seconds=compute_s,
                encode_seconds=encode_s,
                gradient_nnz=nnz,
                message=message,
                message_bytes=data_len,
                metrics=deltas,
            )

        collected = self._collect(
            frames, sent, phase="step", expect_kind=KIND_GRAD,
            decode=decode, workers=targets,
        )
        results: Dict[int, RoundResult] = {}
        for worker_id, result in collected.items():
            if result is not None:
                result.worker_id = worker_id
                if result.metrics:
                    telemetry.ingest_worker_metrics(
                        worker_id, result.metrics
                    )
                results[worker_id] = result
        self._require_workers("step")
        return results

    def broadcast(
        self,
        round_id: int,
        lr: float,
        message_bytes: Optional[bytes] = None,
        workers: Optional[Iterable[int]] = None,
        *,
        message=None,
    ) -> List[int]:
        """Ship the aggregated update to the targeted workers (all
        active members by default); await acks.

        ``message_bytes`` is the legacy pre-serialized v1 payload and
        is valid on every peer.  When ``message`` (the
        :class:`~repro.core.messages.SketchMLMessage`) is also given,
        workers whose negotiated payload version is >= 2 get a payload
        serialized at that version (entropy-coded when the runtime
        config enables it); serialization happens at most once per
        distinct ``(version, entropy)`` pair.  Frame-v2 connections
        receive updates larger than ``config.chunk_bytes`` as a
        ``CHUNK``/``END`` stream.

        Returns the worker ids that acknowledged applying the update.
        """
        if message_bytes is None and message is None:
            raise ValueError("broadcast needs message_bytes or message")
        self.supervisor.check_heartbeats(phase="update")
        targets = (
            sorted(self.supervisor.members) if workers is None
            else sorted(workers)
        )
        header = pack_update_header(round_id, lr)
        cache: Dict[Tuple[int, bool], bytes] = {}

        def payload_for(version: int) -> bytes:
            entropy = bool(self.config.entropy_coding) and version >= 2
            key = (version, entropy)
            data = cache.get(key)
            if data is None:
                if version == 1 and message_bytes is not None:
                    data = message_bytes
                else:
                    data = serialize_message(
                        message, version=version, entropy=entropy
                    )
                cache[key] = data
            return data

        # Span context for ops-capable workers: worker.update spans
        # parent under the driver's round span (see ``step``).
        span_ctx = telemetry.current_span_id()
        ops_block = pack_ops(span_ctx) if span_ctx is not None else b""
        frames: List[Union[bytes, List[bytes]]] = [b""] * self.num_workers
        for w in targets:
            frame_v, payload_v = self.negotiated.get(w, (1, 1))
            version = payload_v if (message is not None and payload_v >= 2) else 1
            data = payload_for(version)
            extra = ops_block if self.ops.get(w, False) else b""
            pieces = [header, extra, data] if extra else [header, data]
            if (
                frame_v >= 2
                and sum(len(p) for p in pieces) > self.config.chunk_bytes
            ):
                frames[w] = list(
                    iter_chunk_frames(
                        KIND_UPDATE,
                        DRIVER_SENDER,
                        pieces,
                        chunk_bytes=self.config.chunk_bytes,
                    )
                )
            else:
                frames[w] = pack_frame(
                    KIND_UPDATE, DRIVER_SENDER, b"".join(pieces)
                )
        with telemetry.span("runtime.fanout", phase="update"):
            sent = self._send_all(frames, targets)

        def decode(payload: bytes) -> int:
            acked = unpack_ack(payload)
            if acked != round_id:
                raise FrameError(
                    f"stale update ack {acked} (want {round_id})"
                )
            return acked

        collected = self._collect(
            frames, sent, phase="update", expect_kind=KIND_ACK,
            decode=decode, workers=targets,
        )
        acked = [w for w, result in collected.items() if result is not None]
        self._require_workers("update")
        return acked

    # ------------------------------------------------------------------
    # elastic membership (repro.fleet)
    # ------------------------------------------------------------------
    def detach_worker(self, worker_id: int) -> None:
        """Elastic leave: the worker's process stays up (it keeps
        heartbeating and can rejoin) but it takes no part in rounds."""
        self.supervisor.detach(worker_id)
        telemetry.event(
            "fleet.leave", worker=worker_id,
            active=len(self.supervisor.members),
        )

    def attach_worker(self, worker_id: int) -> None:
        """Elastic join: return a detached worker to the membership.

        The caller must follow with :meth:`sync_worker` (replica state)
        and a :meth:`reshard` (data shards) before stepping it.
        """
        if worker_id not in self.supervisor.alive:
            raise ClusterError(
                f"worker {worker_id} cannot rejoin: "
                f"{self.supervisor.dead.get(worker_id, 'never booted')}"
            )
        self.supervisor.attach(worker_id)
        telemetry.event(
            "fleet.join", worker=worker_id,
            active=len(self.supervisor.members),
        )

    def sync_worker(
        self, worker_id: int, round_id: int, state_bytes: bytes
    ) -> None:
        """Ship the driver's replica state to one (re)joining worker.

        ``state_bytes`` is the pickled control dict built by the fleet
        trainer (theta + optimizer copy); uses the init timeout since
        the state scales with the model, not with a step.
        """
        frame = pack_frame(KIND_SYNC, DRIVER_SENDER, state_bytes)

        def decode(payload: bytes) -> int:
            acked = unpack_ack(payload)
            if acked != round_id:
                raise FrameError(
                    f"stale sync ack {acked} (want {round_id})"
                )
            return acked

        result = self.supervisor.request(
            worker_id,
            frame,
            phase="sync",
            expect_kind=KIND_ACK,
            decode=decode,
            timeout=self.config.supervision.init_timeout,
        )
        if result is None:
            raise ClusterError(
                f"worker {worker_id} failed to sync at round {round_id}"
            )

    def reshard(
        self, generation: int, assignments: Dict[int, bytes]
    ) -> None:
        """Re-partition: ship each targeted worker its new shard spec.

        ``assignments`` maps worker id → pickled control dict (rows,
        batch size, shuffle seed) built by the fleet trainer.  Fan-out
        is pipelined like every other phase; every targeted worker must
        ack the generation.
        """
        frames = [b""] * self.num_workers
        for worker_id, payload in assignments.items():
            frames[worker_id] = pack_frame(
                KIND_RESHARD, DRIVER_SENDER, payload
            )
        targets = sorted(assignments)
        sent = self._send_all(frames, targets)

        def decode(payload: bytes) -> int:
            acked = unpack_ack(payload)
            if acked != generation:
                raise FrameError(
                    f"stale reshard ack {acked} (want {generation})"
                )
            return acked

        self._collect(
            frames, sent, phase="reshard", expect_kind=KIND_ACK,
            decode=decode, workers=targets,
        )
        self._require_workers("reshard")
        telemetry.event(
            "fleet.reshard", generation=generation, workers=len(targets)
        )

    def echo(self, worker_id: int, payload: bytes) -> bytes:
        """Round-trip raw bytes through a worker (transport benchmark)."""
        result = self.supervisor.request(
            worker_id,
            pack_frame(KIND_ECHO, DRIVER_SENDER, payload),
            phase="echo",
            expect_kind=KIND_ECHO,
        )
        if result is None:
            raise ClusterError(f"worker {worker_id} unavailable for echo")
        return result

    # ------------------------------------------------------------------
    def close(self) -> None:
        """STOP the workers (best effort) and tear down the transport."""
        if self._closed:
            return
        self._closed = True
        stop = pack_frame(KIND_STOP, DRIVER_SENDER)
        for worker_id in sorted(self.supervisor.alive):
            try:
                self.transport.send(worker_id, stop)
            except TransportError:
                pass  # already gone; close() reaps it
        self.transport.close()

    def __enter__(self) -> "RuntimeCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
