"""Entry points for spawned worker processes (``mp`` and ``tcp``).

Both entries run the same :func:`serve` loop over a worker-side
endpoint: block on the next frame, dispatch it, send the replies.
The first substantive frame must be ``INIT`` (a pickled
:class:`~repro.runtime.worker_runtime.WorkerBootstrap`), answered with
``READY``; after that the loop services ``EPOCH`` / ``STEP`` /
``UPDATE`` until ``STOP`` or driver hang-up.  ``ECHO`` frames are
answered at any time (the transport micro-benchmark uses them without
paying for a full bootstrap).

Unhandled exceptions are reported back as an ``ERROR`` frame naming
the worker and the frame kind being serviced, then the process exits —
the driver-side supervisor turns that into a structured failure.

A daemon heartbeat thread sends ``HEARTBEAT`` frames roughly every
``bootstrap.heartbeat_interval`` seconds (when positive) so the driver
can tell a slow worker from a dead one.  The schedule is *jittered*
(:func:`heartbeat_delays`): each worker starts at a seeded random
phase within one interval and perturbs every gap by
``heartbeat_jitter``, so hundreds of workers spread their heartbeats
across the interval instead of stampeding the driver in lockstep.
The jitter RNG is seeded from ``(seed, worker_id)``, so the schedule
is deterministic under a fixed seed.
"""

from __future__ import annotations

import pickle
import threading
import time
from typing import Iterator, Optional

import numpy as np

from .. import telemetry
from .framing import (
    KIND_CHUNK,
    KIND_ECHO,
    KIND_END,
    KIND_ERROR,
    KIND_HEARTBEAT,
    KIND_HELLO,
    KIND_INIT,
    KIND_READY,
    KIND_STOP,
    KIND_ACK,
    ChunkReassembler,
    FrameError,
    ProtocolCaps,
    negotiate_ops,
    negotiate_versions,
    pack_ack,
    pack_frame,
    pack_hello,
    pack_metrics,
    pack_ops,
    unpack_frame,
    unpack_hello,
)
from .transport import PipeEndpoint, SocketEndpoint
from .worker_runtime import WorkerBootstrap, WorkerRuntime

__all__ = [
    "serve",
    "negotiate_as_worker",
    "heartbeat_delays",
    "pipe_worker_entry",
    "tcp_worker_entry",
]


def heartbeat_delays(
    interval: float, jitter: float, seed: int, worker_id: int
) -> Iterator[float]:
    """Seeded per-worker heartbeat schedule (anti-thundering-herd).

    Yields the wait before each heartbeat: first a random phase drawn
    uniformly from ``[0, interval)`` (spreading ``W`` workers evenly
    across one interval), then ``interval`` perturbed by a uniform
    factor of ``1 ± jitter/2`` per beat so workers that started in
    phase drift apart instead of re-synchronising.  Seeding the RNG
    from ``(seed, worker_id)`` makes every worker's schedule
    deterministic under a fixed seed yet distinct from its peers'.
    """
    rng = np.random.default_rng([int(seed), int(worker_id)])
    yield float(rng.uniform(0.0, interval))
    half = jitter / 2.0
    while True:
        if half > 0:
            yield float(interval * (1.0 + rng.uniform(-half, half)))
        else:
            yield float(interval)


class _Heartbeat:
    """Daemon thread pushing HEARTBEAT frames on a jittered schedule.

    With a :class:`~repro.telemetry.metrics.WorkerMetrics` source
    attached (live-ops connections), each beat drains the accumulated
    metric deltas and piggybacks them as an ops block in the HEARTBEAT
    payload — the driver's supervisor folds them into the metrics hub.
    Without one, the frame is packed once and re-sent: the exact
    pre-ops byte stream.
    """

    def __init__(
        self,
        endpoint,
        worker_id: int,
        interval: float,
        *,
        jitter: float = 0.0,
        seed: int = 0,
        metrics=None,
    ) -> None:
        self._endpoint = endpoint
        self._worker_id = worker_id
        self._interval = interval
        self._jitter = jitter
        self._seed = seed
        self._metrics = metrics
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._interval <= 0 or self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        plain = pack_frame(KIND_HEARTBEAT, self._worker_id)
        delays = heartbeat_delays(
            self._interval, self._jitter, self._seed, self._worker_id
        )
        for delay in delays:
            t0 = time.perf_counter()
            if self._stop.wait(delay):
                return
            if self._metrics is None:
                frame = plain
            else:
                lag = (time.perf_counter() - t0) - delay
                if lag > 0:
                    self._metrics.add(
                        "worker.heartbeat_lag_ns", int(lag * 1e9)
                    )
                self._metrics.add("worker.heartbeats", 1)
                frame = pack_frame(
                    KIND_HEARTBEAT,
                    self._worker_id,
                    pack_ops(None, pack_metrics(self._metrics.take())),
                )
            try:
                self._endpoint.send(frame)
            except OSError:
                return  # driver is gone; the serve loop will exit too

    def stop(self) -> None:
        self._stop.set()


def negotiate_as_worker(endpoint, worker_id: int, caps: ProtocolCaps):
    """Worker side of the HELLO exchange.

    Sends this worker's supported version ranges and blocks for the
    driver's reply, which carries the pinned choice as a degenerate
    range.  Running the same :func:`negotiate_versions` over the reply
    both validates the choice against our caps and returns it.

    Returns ``(frame_version, payload_version, ops)`` — ``ops`` is the
    live-ops capability the driver echoed in its HELLO TLV (only
    honoured when we advertised it too).  Raises
    :class:`~repro.runtime.framing.NegotiationError` when the driver
    pinned something outside our range, and ``ConnectionError`` when
    the driver hung up mid-handshake (it saw no common version).
    """
    endpoint.send(pack_frame(KIND_HELLO, worker_id, pack_hello(caps)))
    while True:
        frame = endpoint.recv()
        if frame is None:
            raise ConnectionError(
                "driver hung up during version negotiation"
            )
        kind, _, payload = unpack_frame(frame)
        if kind == KIND_HEARTBEAT:
            continue
        if kind != KIND_HELLO:
            raise FrameError(
                f"expected HELLO reply, got frame kind {kind}"
            )
        theirs = unpack_hello(payload)
        frame_v, payload_v = negotiate_versions(caps, theirs)
        return frame_v, payload_v, negotiate_ops(caps, theirs, frame_v)


def serve(
    endpoint,
    worker_id: int,
    *,
    frame_version: int = 1,
    payload_version: int = 1,
    ops: bool = False,
) -> None:
    """Frame-dispatch loop of one worker process.

    Runs until a ``STOP`` frame, driver hang-up, or a fatal error
    (reported back as an ``ERROR`` frame before exiting).  The
    negotiated ``frame_version`` / ``payload_version`` / ``ops``
    capability are handed to the :class:`WorkerRuntime` at ``INIT``;
    on a frame-v2 connection incoming ``CHUNK``/``END`` streams (a
    chunked ``UPDATE``) are reassembled here with bounded accounting.
    On a live-ops connection the heartbeat thread piggybacks drained
    metric deltas on every beat.
    """
    runtime: Optional[WorkerRuntime] = None
    heartbeat: Optional[_Heartbeat] = None
    reassembler = ChunkReassembler()
    try:
        while True:
            frame = endpoint.recv()
            if frame is None:
                return  # driver hung up
            kind, _, payload = unpack_frame(frame)
            if kind == KIND_STOP:
                return
            if kind == KIND_ECHO:
                endpoint.send(pack_frame(KIND_ECHO, worker_id, payload))
                continue
            if kind == KIND_HEARTBEAT:
                continue  # driver-side probes need no reply
            if kind == KIND_INIT:
                bootstrap = WorkerBootstrap.from_bytes(payload)
                if bootstrap.trace_dir:
                    telemetry.enable_worker_recorder(
                        bootstrap.trace_dir, worker_id, bootstrap.run_id
                    )
                runtime = WorkerRuntime(bootstrap)
                runtime.set_wire(frame_version, payload_version, ops=ops)
                if ops:
                    # This process exists for exactly one worker, so
                    # the recorder tee can spool *every* counter it
                    # sees — codec instrumentation included — for wire
                    # delivery to the driver's hub.
                    from ..telemetry.metrics import SpoolHub

                    telemetry.set_metrics_hub(SpoolHub(runtime.metrics))
                heartbeat = _Heartbeat(
                    endpoint,
                    worker_id,
                    bootstrap.heartbeat_interval,
                    jitter=bootstrap.heartbeat_jitter,
                    seed=bootstrap.seed,
                    metrics=runtime.metrics if ops else None,
                )
                heartbeat.start()
                endpoint.send(pack_frame(KIND_READY, worker_id))
                continue
            if runtime is None:
                raise RuntimeError(
                    f"frame kind {kind} arrived before INIT"
                )
            if kind == KIND_CHUNK:
                # A supervised retry re-sends the whole stream from
                # seq 0; a reassembly protocol error drops the partial
                # stream instead of killing the process — the driver's
                # retry delivers a fresh copy.
                try:
                    reassembler.feed_tolerant(payload)
                except FrameError:
                    reassembler.reset()
                continue
            if kind == KIND_END:
                try:
                    stream = reassembler.finish_tolerant(payload)
                except FrameError:
                    reassembler.reset()
                    continue
                if stream is None:
                    continue
                inner_kind, chunks = stream
                replies = runtime.handle_chunks(inner_kind, chunks)
            else:
                replies = runtime.handle(kind, payload)
            for reply in replies:
                endpoint.send(reply)
    except Exception as exc:  # pragma: no cover - exercised via mp tests
        detail = pickle.dumps(
            {"worker_id": worker_id, "error": repr(exc)},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        try:
            endpoint.send(pack_frame(KIND_ERROR, worker_id, detail))
        except OSError:
            pass  # nothing left to report to
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        telemetry.close_worker_recorder()
        endpoint.close()


def pipe_worker_entry(
    conn, worker_id: int, caps: Optional[ProtocolCaps] = None
) -> None:
    """``mp`` backend child target: serve frames over a pipe.

    A v1-capped worker (``caps`` omitted or ``frame_max == 1``) sends
    nothing before its serve loop — the exact pre-v2 byte stream.  A
    v2-capable worker opens with a HELLO and waits for the driver's
    pinned choice.
    """
    endpoint = PipeEndpoint(conn)
    frame_v, payload_v, ops = 1, 1, False
    if caps is not None and caps.frame_max >= 2:
        frame_v, payload_v, ops = negotiate_as_worker(
            endpoint, worker_id, caps
        )
    serve(
        endpoint, worker_id,
        frame_version=frame_v, payload_version=payload_v, ops=ops,
    )


def tcp_worker_entry(
    host: str, port: int, worker_id: int,
    caps: Optional[ProtocolCaps] = None,
) -> None:
    """``tcp``/``aio`` backend child target: connect back, hello, serve.

    The opener doubles as the connection hello (its header names this
    worker, so the driver can map the accepted socket regardless of
    connect order): a v1-capped worker sends the legacy ACK hello, a
    v2-capable worker sends a HELLO and completes the negotiation
    before serving.
    """
    import socket

    sock = socket.create_connection((host, port), timeout=30.0)
    sock.settimeout(None)
    endpoint = SocketEndpoint(sock)
    frame_v, payload_v, ops = 1, 1, False
    if caps is not None and caps.frame_max >= 2:
        frame_v, payload_v, ops = negotiate_as_worker(
            endpoint, worker_id, caps
        )
    else:
        endpoint.send(pack_frame(KIND_ACK, worker_id, pack_ack(worker_id)))
    serve(
        endpoint, worker_id,
        frame_version=frame_v, payload_version=payload_v, ops=ops,
    )
