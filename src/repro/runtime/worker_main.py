"""Entry points for spawned worker processes (``mp`` and ``tcp``).

Both entries run the same :func:`serve` loop over a worker-side
endpoint: block on the next frame, dispatch it, send the replies.
The first substantive frame must be ``INIT`` (a pickled
:class:`~repro.runtime.worker_runtime.WorkerBootstrap`), answered with
``READY``; after that the loop services ``EPOCH`` / ``STEP`` /
``UPDATE`` until ``STOP`` or driver hang-up.  ``ECHO`` frames are
answered at any time (the transport micro-benchmark uses them without
paying for a full bootstrap).

Unhandled exceptions are reported back as an ``ERROR`` frame naming
the worker and the frame kind being serviced, then the process exits —
the driver-side supervisor turns that into a structured failure.

A daemon heartbeat thread sends ``HEARTBEAT`` frames every
``bootstrap.heartbeat_interval`` seconds (when positive) so the driver
can tell a slow worker from a dead one.
"""

from __future__ import annotations

import pickle
import threading
from typing import Optional

from .. import telemetry
from .framing import (
    KIND_ECHO,
    KIND_ERROR,
    KIND_HEARTBEAT,
    KIND_INIT,
    KIND_READY,
    KIND_STOP,
    KIND_ACK,
    pack_ack,
    pack_frame,
    unpack_frame,
)
from .transport import PipeEndpoint, SocketEndpoint
from .worker_runtime import WorkerBootstrap, WorkerRuntime

__all__ = ["serve", "pipe_worker_entry", "tcp_worker_entry"]


class _Heartbeat:
    """Daemon thread pushing HEARTBEAT frames at a fixed interval."""

    def __init__(self, endpoint, worker_id: int, interval: float) -> None:
        self._endpoint = endpoint
        self._worker_id = worker_id
        self._interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._interval <= 0 or self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        frame = pack_frame(KIND_HEARTBEAT, self._worker_id)
        while not self._stop.wait(self._interval):
            try:
                self._endpoint.send(frame)
            except OSError:
                return  # driver is gone; the serve loop will exit too

    def stop(self) -> None:
        self._stop.set()


def serve(endpoint, worker_id: int) -> None:
    """Frame-dispatch loop of one worker process.

    Runs until a ``STOP`` frame, driver hang-up, or a fatal error
    (reported back as an ``ERROR`` frame before exiting).
    """
    runtime: Optional[WorkerRuntime] = None
    heartbeat: Optional[_Heartbeat] = None
    try:
        while True:
            frame = endpoint.recv()
            if frame is None:
                return  # driver hung up
            kind, _, payload = unpack_frame(frame)
            if kind == KIND_STOP:
                return
            if kind == KIND_ECHO:
                endpoint.send(pack_frame(KIND_ECHO, worker_id, payload))
                continue
            if kind == KIND_HEARTBEAT:
                continue  # driver-side probes need no reply
            if kind == KIND_INIT:
                bootstrap = WorkerBootstrap.from_bytes(payload)
                if bootstrap.trace_dir:
                    telemetry.enable_worker_recorder(
                        bootstrap.trace_dir, worker_id, bootstrap.run_id
                    )
                runtime = WorkerRuntime(bootstrap)
                heartbeat = _Heartbeat(
                    endpoint, worker_id, bootstrap.heartbeat_interval
                )
                heartbeat.start()
                endpoint.send(pack_frame(KIND_READY, worker_id))
                continue
            if runtime is None:
                raise RuntimeError(
                    f"frame kind {kind} arrived before INIT"
                )
            for reply in runtime.handle(kind, payload):
                endpoint.send(reply)
    except Exception as exc:  # pragma: no cover - exercised via mp tests
        detail = pickle.dumps(
            {"worker_id": worker_id, "error": repr(exc)},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        try:
            endpoint.send(pack_frame(KIND_ERROR, worker_id, detail))
        except OSError:
            pass  # nothing left to report to
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        telemetry.close_worker_recorder()
        endpoint.close()


def pipe_worker_entry(conn, worker_id: int) -> None:
    """``mp`` backend child target: serve frames over a pipe."""
    serve(PipeEndpoint(conn), worker_id)


def tcp_worker_entry(host: str, port: int, worker_id: int) -> None:
    """``tcp`` backend child target: connect back, hello, serve."""
    import socket

    sock = socket.create_connection((host, port), timeout=30.0)
    sock.settimeout(None)
    endpoint = SocketEndpoint(sock)
    # Hello: an ACK frame whose header names this worker, so the
    # driver can map the accepted socket regardless of connect order.
    endpoint.send(pack_frame(KIND_ACK, worker_id, pack_ack(worker_id)))
    serve(endpoint, worker_id)
