"""Entry points for spawned worker processes (``mp`` and ``tcp``).

Both entries run the same :func:`serve` loop over a worker-side
endpoint: block on the next frame, dispatch it, send the replies.
The first substantive frame must be ``INIT`` (a pickled
:class:`~repro.runtime.worker_runtime.WorkerBootstrap`), answered with
``READY``; after that the loop services ``EPOCH`` / ``STEP`` /
``UPDATE`` until ``STOP`` or driver hang-up.  ``ECHO`` frames are
answered at any time (the transport micro-benchmark uses them without
paying for a full bootstrap).

Unhandled exceptions are reported back as an ``ERROR`` frame naming
the worker and the frame kind being serviced, then the process exits —
the driver-side supervisor turns that into a structured failure.

A daemon heartbeat thread sends ``HEARTBEAT`` frames roughly every
``bootstrap.heartbeat_interval`` seconds (when positive) so the driver
can tell a slow worker from a dead one.  The schedule is *jittered*
(:func:`heartbeat_delays`): each worker starts at a seeded random
phase within one interval and perturbs every gap by
``heartbeat_jitter``, so hundreds of workers spread their heartbeats
across the interval instead of stampeding the driver in lockstep.
The jitter RNG is seeded from ``(seed, worker_id)``, so the schedule
is deterministic under a fixed seed.
"""

from __future__ import annotations

import pickle
import threading
from typing import Iterator, Optional

import numpy as np

from .. import telemetry
from .framing import (
    KIND_ECHO,
    KIND_ERROR,
    KIND_HEARTBEAT,
    KIND_INIT,
    KIND_READY,
    KIND_STOP,
    KIND_ACK,
    pack_ack,
    pack_frame,
    unpack_frame,
)
from .transport import PipeEndpoint, SocketEndpoint
from .worker_runtime import WorkerBootstrap, WorkerRuntime

__all__ = [
    "serve",
    "heartbeat_delays",
    "pipe_worker_entry",
    "tcp_worker_entry",
]


def heartbeat_delays(
    interval: float, jitter: float, seed: int, worker_id: int
) -> Iterator[float]:
    """Seeded per-worker heartbeat schedule (anti-thundering-herd).

    Yields the wait before each heartbeat: first a random phase drawn
    uniformly from ``[0, interval)`` (spreading ``W`` workers evenly
    across one interval), then ``interval`` perturbed by a uniform
    factor of ``1 ± jitter/2`` per beat so workers that started in
    phase drift apart instead of re-synchronising.  Seeding the RNG
    from ``(seed, worker_id)`` makes every worker's schedule
    deterministic under a fixed seed yet distinct from its peers'.
    """
    rng = np.random.default_rng([int(seed), int(worker_id)])
    yield float(rng.uniform(0.0, interval))
    half = jitter / 2.0
    while True:
        if half > 0:
            yield float(interval * (1.0 + rng.uniform(-half, half)))
        else:
            yield float(interval)


class _Heartbeat:
    """Daemon thread pushing HEARTBEAT frames on a jittered schedule."""

    def __init__(
        self,
        endpoint,
        worker_id: int,
        interval: float,
        *,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        self._endpoint = endpoint
        self._worker_id = worker_id
        self._interval = interval
        self._jitter = jitter
        self._seed = seed
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._interval <= 0 or self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        frame = pack_frame(KIND_HEARTBEAT, self._worker_id)
        delays = heartbeat_delays(
            self._interval, self._jitter, self._seed, self._worker_id
        )
        for delay in delays:
            if self._stop.wait(delay):
                return
            try:
                self._endpoint.send(frame)
            except OSError:
                return  # driver is gone; the serve loop will exit too

    def stop(self) -> None:
        self._stop.set()


def serve(endpoint, worker_id: int) -> None:
    """Frame-dispatch loop of one worker process.

    Runs until a ``STOP`` frame, driver hang-up, or a fatal error
    (reported back as an ``ERROR`` frame before exiting).
    """
    runtime: Optional[WorkerRuntime] = None
    heartbeat: Optional[_Heartbeat] = None
    try:
        while True:
            frame = endpoint.recv()
            if frame is None:
                return  # driver hung up
            kind, _, payload = unpack_frame(frame)
            if kind == KIND_STOP:
                return
            if kind == KIND_ECHO:
                endpoint.send(pack_frame(KIND_ECHO, worker_id, payload))
                continue
            if kind == KIND_HEARTBEAT:
                continue  # driver-side probes need no reply
            if kind == KIND_INIT:
                bootstrap = WorkerBootstrap.from_bytes(payload)
                if bootstrap.trace_dir:
                    telemetry.enable_worker_recorder(
                        bootstrap.trace_dir, worker_id, bootstrap.run_id
                    )
                runtime = WorkerRuntime(bootstrap)
                heartbeat = _Heartbeat(
                    endpoint,
                    worker_id,
                    bootstrap.heartbeat_interval,
                    jitter=bootstrap.heartbeat_jitter,
                    seed=bootstrap.seed,
                )
                heartbeat.start()
                endpoint.send(pack_frame(KIND_READY, worker_id))
                continue
            if runtime is None:
                raise RuntimeError(
                    f"frame kind {kind} arrived before INIT"
                )
            for reply in runtime.handle(kind, payload):
                endpoint.send(reply)
    except Exception as exc:  # pragma: no cover - exercised via mp tests
        detail = pickle.dumps(
            {"worker_id": worker_id, "error": repr(exc)},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        try:
            endpoint.send(pack_frame(KIND_ERROR, worker_id, detail))
        except OSError:
            pass  # nothing left to report to
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        telemetry.close_worker_recorder()
        endpoint.close()


def pipe_worker_entry(conn, worker_id: int) -> None:
    """``mp`` backend child target: serve frames over a pipe."""
    serve(PipeEndpoint(conn), worker_id)


def tcp_worker_entry(host: str, port: int, worker_id: int) -> None:
    """``tcp`` backend child target: connect back, hello, serve."""
    import socket

    sock = socket.create_connection((host, port), timeout=30.0)
    sock.settimeout(None)
    endpoint = SocketEndpoint(sock)
    # Hello: an ACK frame whose header names this worker, so the
    # driver can map the accepted socket regardless of connect order.
    endpoint.send(pack_frame(KIND_ACK, worker_id, pack_ack(worker_id)))
    serve(endpoint, worker_id)
