"""Deterministic seeded fault injection for runtime transports.

A :class:`FaultyTransport` wraps any real :class:`~repro.runtime.
transport.Transport` and perturbs the frame stream on its way through:

* **drop** — a sent frame silently vanishes (the worker never sees
  it); supervision must time out and retry.
* **delay** — a received frame is withheld for ``n`` further ``recv``
  calls (sim) or until a wall-clock holdback elapses (real backends),
  exercising the timeout path without killing the worker.
* **duplicate** — a received frame is delivered twice; round-numbered
  idempotency on both sides must make the second copy harmless.
* **corrupt** — payload bytes of a received frame are flipped.  The
  frame header is left intact on purpose: the frame still *parses*, so
  the corruption must be caught downstream by ``deserialize_message``
  / the ``REPRO_SANITIZE`` invariant checks, not masked by the frame
  layer.

Faults fire from a seeded RNG (:class:`FaultConfig`) or an explicit
:class:`FaultSchedule` (exact ``(direction, worker, frame_index)``
triggers) so every failure path is replayable in tests.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

import numpy as np

from .. import telemetry
from .framing import HEADER_SIZE
from .transport import Transport, TransportTimeout

__all__ = ["FaultConfig", "FaultSchedule", "FaultyTransport"]

#: Fault kinds a schedule entry may name.
_FAULT_KINDS = ("drop", "delay", "duplicate", "corrupt")


@dataclass(frozen=True)
class FaultConfig:
    """Seeded probabilistic fault rates.

    Probabilities are evaluated per frame, independently per fault
    kind; ``drop`` applies to driver→worker sends, the rest to
    worker→driver receives (where retries are observable).

    Attributes:
        seed: fault RNG seed — same seed, same fault pattern.
        drop_rate: probability a sent frame is dropped.
        delay_rate: probability a received frame is delayed.
        duplicate_rate: probability a received frame is duplicated.
        corrupt_rate: probability a received frame's payload is
            corrupted.
        delay_recvs: sim backends: withhold a delayed frame for this
            many subsequent ``recv`` calls.
        delay_seconds: real backends: withhold a delayed frame for
            this much wall time.
        max_faults: total fault budget (0 = unlimited); keeps a high
            rate from starving a run forever.
    """

    seed: int = 0
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_recvs: int = 2
    delay_seconds: float = 0.05
    max_faults: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "delay_rate", "duplicate_rate", "corrupt_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay_recvs < 0 or self.delay_seconds < 0 or self.max_faults < 0:
            raise ValueError("delay/budget settings must be non-negative")

    @property
    def any_enabled(self) -> bool:
        return (
            self.drop_rate > 0
            or self.delay_rate > 0
            or self.duplicate_rate > 0
            or self.corrupt_rate > 0
        )


@dataclass
class FaultSchedule:
    """Exact fault triggers: ``(kind, direction, worker_id, index)``.

    ``index`` counts frames per ``(direction, worker)`` stream from 0.
    ``direction`` is ``"send"`` (driver→worker) or ``"recv"``
    (worker→driver).  Tests use this for surgically-placed failures;
    the probabilistic :class:`FaultConfig` is layered on top when both
    are given.
    """

    entries: List[Tuple[str, str, int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        for kind, direction, worker_id, index in self.entries:
            if kind not in _FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
            if direction not in ("send", "recv"):
                raise ValueError(f"unknown direction {direction!r}")
            if worker_id < 0 or index < 0:
                raise ValueError("worker_id and index must be non-negative")

    def add(self, kind: str, direction: str, worker_id: int, index: int) -> "FaultSchedule":
        self.entries.append((kind, direction, worker_id, index))
        self.__post_init__()
        return self

    def lookup(self, direction: str, worker_id: int, index: int) -> Set[str]:
        return {
            kind
            for kind, d, w, i in self.entries
            if d == direction and w == worker_id and i == index
        }


class FaultyTransport(Transport):
    """Transport wrapper injecting seeded drop/delay/duplicate/corrupt.

    Wraps any backend; owns a fault RNG and per-stream frame counters
    so runs with the same seed/schedule see the same fault pattern.
    Statistics land in :attr:`stats` for assertions.
    """

    def __init__(
        self,
        inner: Transport,
        config: Optional[FaultConfig] = None,
        schedule: Optional[FaultSchedule] = None,
    ) -> None:
        super().__init__(inner.num_workers)
        self.inner = inner
        self.name = f"faulty-{inner.name}"
        self.config = config or FaultConfig()
        self.schedule = schedule
        self._rng = np.random.default_rng(self.config.seed)
        self._send_index: Dict[int, int] = collections.defaultdict(int)
        self._recv_index: Dict[int, int] = collections.defaultdict(int)
        # Delayed frames: (release_after_recv_count, frame) per worker.
        self._held: Dict[int, Deque[Tuple[int, bytes]]] = (
            collections.defaultdict(collections.deque)
        )
        self._recv_calls: Dict[int, int] = collections.defaultdict(int)
        self.stats: Dict[str, int] = {
            kind + "s": 0 for kind in _FAULT_KINDS
        }

    # ------------------------------------------------------------------
    def _budget_left(self) -> bool:
        if self.config.max_faults <= 0:
            return True
        return sum(self.stats.values()) < self.config.max_faults

    def _faults_for(self, direction: str, worker_id: int, index: int) -> Set[str]:
        faults: Set[str] = set()
        if self.schedule is not None:
            faults |= self.schedule.lookup(direction, worker_id, index)
        cfg = self.config
        if cfg.any_enabled:
            if direction == "send":
                if cfg.drop_rate > 0 and self._rng.random() < cfg.drop_rate:
                    faults.add("drop")
            else:
                if cfg.delay_rate > 0 and self._rng.random() < cfg.delay_rate:
                    faults.add("delay")
                if cfg.duplicate_rate > 0 and self._rng.random() < cfg.duplicate_rate:
                    faults.add("duplicate")
                if cfg.corrupt_rate > 0 and self._rng.random() < cfg.corrupt_rate:
                    faults.add("corrupt")
        if faults and not self._budget_left():
            return set()
        return faults

    def _corrupt(self, frame: bytes) -> bytes:
        """Flip bytes in the payload, leaving the header parseable.

        Corruption must be caught by the *content* layer (message
        deserialization + sanitizer invariants), so the frame header —
        magic, kind, declared length — stays intact.  Header-level
        mangling is a different failure (stream desync) with its own
        transport-level handling.
        """
        if len(frame) <= HEADER_SIZE:
            return frame  # nothing to corrupt without breaking the header
        data = bytearray(frame)
        payload_len = len(frame) - HEADER_SIZE
        n_flips = max(1, payload_len // 64)
        offsets = self._rng.integers(0, payload_len, size=n_flips)
        for off in offsets:
            data[HEADER_SIZE + int(off)] ^= 0xA5
        return bytes(data)

    # ------------------------------------------------------------------
    def send(self, worker_id: int, frame: bytes) -> None:
        index = self._send_index[worker_id]
        self._send_index[worker_id] += 1
        faults = self._faults_for("send", worker_id, index)
        if "drop" in faults:
            self.stats["drops"] += 1
            telemetry.event(
                "fault.drop", worker=worker_id, direction="send", index=index
            )
            return  # the frame never reaches the worker
        self.inner.send(worker_id, frame)

    def recv(self, worker_id: int, timeout: float) -> bytes:
        self._recv_calls[worker_id] += 1
        call = self._recv_calls[worker_id]
        held = self._held[worker_id]
        if held and held[0][0] <= call:
            return held.popleft()[1]
        frame = self.inner.recv(worker_id, timeout)
        index = self._recv_index[worker_id]
        self._recv_index[worker_id] += 1
        faults = self._faults_for("recv", worker_id, index)
        if "corrupt" in faults:
            self.stats["corrupts"] += 1
            telemetry.event(
                "fault.corrupt", worker=worker_id, direction="recv", index=index
            )
            frame = self._corrupt(frame)
        if "duplicate" in faults:
            self.stats["duplicates"] += 1
            telemetry.event(
                "fault.duplicate", worker=worker_id, direction="recv", index=index
            )
            held.append((call, frame))  # immediately available next recv
        if "delay" in faults:
            self.stats["delays"] += 1
            telemetry.event(
                "fault.delay", worker=worker_id, direction="recv", index=index
            )
            held.append((call + self.config.delay_recvs, frame))
            raise TransportTimeout(
                f"frame from worker {worker_id} delayed by fault injection"
            )
        return frame

    def ready_workers(self, candidates=None):
        """Arrival-order hint passthrough (event-driven inner backends).

        A worker also counts as ready when this wrapper holds a
        delayed/duplicated frame for it that the next ``recv`` call
        would release.  Inner backends without the hint yield ``[]``,
        which degrades to the id-order gather.
        """
        inner_ready = getattr(self.inner, "ready_workers", None)
        ready = list(inner_ready(candidates)) if inner_ready else []
        ids = (
            range(self.num_workers) if candidates is None else candidates
        )
        for worker_id in ids:
            held = self._held.get(worker_id)
            if (
                held
                and held[0][0] <= self._recv_calls[worker_id] + 1
                and worker_id not in ready
            ):
                ready.append(worker_id)
        return ready

    def alive(self, worker_id: int) -> bool:
        return self.inner.alive(worker_id)

    def terminate(self, worker_id: int) -> None:
        self.inner.terminate(worker_id)

    def close(self) -> None:
        self.inner.close()
