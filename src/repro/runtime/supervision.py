"""Supervision: timeouts, retries, heartbeats, and failure policies.

The transport layer moves frames; this layer decides what to do when
they stop moving.  A :class:`Supervisor` wraps a transport and turns
its raw failure modes into policy:

* **per-message timeouts** — every request waits a bounded time for a
  matching reply;
* **bounded retries with exponential backoff + jitter** — a timed-out
  or corrupted reply re-sends the request; workers answer retried
  rounds from an idempotency cache, so a retry never recomputes;
* **heartbeats** — any frame (including dedicated ``HEARTBEAT``
  frames) refreshes a worker's last-seen clock; a worker silent past
  ``heartbeat_timeout`` is declared lost;
* **straggler/dead-worker policies** — ``fail_fast`` raises a
  structured error naming the worker and phase; ``drop`` removes the
  worker from the round and lets the driver re-weight the aggregate
  over the survivors.

All randomness (backoff jitter) flows from the config seed, so a
supervised run with a deterministic fault schedule is replayable.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

import numpy as np

from .. import telemetry
from .framing import (
    KIND_ACK,
    KIND_CHUNK,
    KIND_END,
    KIND_ERROR,
    KIND_HEARTBEAT,
    KIND_NAMES,
    ChunkReassembler,
    FrameError,
    unpack_frame,
    unpack_ops_prefix,
)
from .transport import Transport, TransportClosed, TransportError, TransportTimeout

__all__ = [
    "SupervisionConfig",
    "WorkerSupervisionError",
    "RetryExhaustedError",
    "HeartbeatLostError",
    "WorkerCrashedError",
    "Supervisor",
    "backoff_delays",
    "POLICY_FAIL_FAST",
    "POLICY_DROP",
]

POLICY_FAIL_FAST = "fail_fast"
POLICY_DROP = "drop"


@dataclass(frozen=True)
class SupervisionConfig:
    """Knobs of the retry/timeout/heartbeat layer.

    Attributes:
        message_timeout: seconds to wait for one reply attempt.
        init_timeout: seconds to wait for a worker's ``READY`` after
            ``INIT`` (spawn + import is far slower than a step).
        max_retries: re-send attempts after the first (so a request is
            tried ``max_retries + 1`` times in total).
        backoff_base: first retry delay, seconds.
        backoff_factor: multiplier per subsequent retry.
        backoff_jitter: uniform jitter as a fraction of each delay
            (0.5 → delay drawn from ``[0.75d, 1.25d]``), decorrelating
            retry storms across workers.
        heartbeat_interval: seconds between worker heartbeat frames
            (shipped to workers via their bootstrap; 0 disables).
        heartbeat_jitter: uniform jitter as a fraction of the
            heartbeat interval (0.2 → each gap drawn from
            ``[0.9i, 1.1i]``), plus a random initial phase in
            ``[0, i)``.  Spreads hundreds of workers' heartbeats
            across the interval instead of firing them in lockstep
            (a thundering herd at the driver).  Seeded per worker
            from the bootstrap seed, so schedules are deterministic
            under a fixed seed.
        heartbeat_timeout: declare a worker lost when nothing (frames
            or heartbeats) was seen from it for this long; 0 disables
            passive loss detection (timeout+retries still apply).
        straggler_policy: ``"fail_fast"`` (raise on first lost worker)
            or ``"drop"`` (continue without it; the aggregate is
            re-weighted over survivors).
        seed: backoff-jitter RNG seed.
    """

    message_timeout: float = 10.0
    init_timeout: float = 120.0
    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    heartbeat_interval: float = 0.5
    heartbeat_jitter: float = 0.2
    heartbeat_timeout: float = 0.0
    straggler_policy: str = POLICY_FAIL_FAST
    seed: int = 0

    def __post_init__(self) -> None:
        if self.message_timeout <= 0:
            raise ValueError("message_timeout must be positive")
        if self.init_timeout <= 0:
            raise ValueError("init_timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff_base >= 0 and backoff_factor >= 1 required")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")
        if self.heartbeat_interval < 0 or self.heartbeat_timeout < 0:
            raise ValueError("heartbeat settings must be non-negative")
        if not 0.0 <= self.heartbeat_jitter <= 1.0:
            raise ValueError("heartbeat_jitter must be in [0, 1]")
        if self.straggler_policy not in (POLICY_FAIL_FAST, POLICY_DROP):
            raise ValueError(
                f"unknown straggler_policy {self.straggler_policy!r}"
            )


def backoff_delays(config: SupervisionConfig, rng: np.random.Generator) -> List[float]:
    """The retry delay sequence for one request, jitter applied."""
    delays = []
    delay = config.backoff_base
    for _ in range(config.max_retries):
        jitter = 1.0
        if config.backoff_jitter > 0:
            half = config.backoff_jitter / 2.0
            jitter = 1.0 + float(rng.uniform(-half, half))
        delays.append(delay * jitter)
        delay *= config.backoff_factor
    return delays


class WorkerSupervisionError(RuntimeError):
    """A worker failed under supervision.

    Structured: names the worker, the phase (``init`` / ``epoch`` /
    ``step`` / ``update`` / ``heartbeat``), and the attempt count, so
    operators (and tests) need not parse the message text.
    """

    def __init__(
        self,
        worker_id: int,
        phase: str,
        attempts: int,
        cause: Optional[BaseException] = None,
    ) -> None:
        self.worker_id = int(worker_id)
        self.phase = str(phase)
        self.attempts = int(attempts)
        self.cause = cause
        detail = f": {cause}" if cause is not None else ""
        super().__init__(
            f"worker {worker_id} failed in phase {phase!r} after "
            f"{attempts} attempt{'s' if attempts != 1 else ''}{detail}"
        )


class RetryExhaustedError(WorkerSupervisionError):
    """Every retry of a request timed out or was rejected."""


class HeartbeatLostError(WorkerSupervisionError):
    """Nothing was heard from the worker within ``heartbeat_timeout``."""


class WorkerCrashedError(WorkerSupervisionError):
    """The worker reported a fatal error (``ERROR`` frame) or hung up."""


class _AttemptFailed(Exception):
    """Internal: this request attempt failed; retry if budget remains."""


class Supervisor:
    """Retry/timeout/heartbeat policy over a :class:`Transport`.

    Args:
        transport: the frame pipe to supervise.
        config: supervision knobs.
        sleeper: injectable ``sleep(seconds)`` — the ``sim`` backend
            passes a no-op so simulated retries cost no wall time.
        clock: injectable monotonic clock (tests drive it manually).
    """

    def __init__(
        self,
        transport: Transport,
        config: Optional[SupervisionConfig] = None,
        *,
        sleeper: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.transport = transport
        self.config = config or SupervisionConfig()
        self._sleep = sleeper
        self._clock = clock
        self._rng = np.random.default_rng(self.config.seed)
        now = clock()
        self.alive: Set[int] = set(range(transport.num_workers))
        self.detached: Set[int] = set()
        self.dead: Dict[int, WorkerSupervisionError] = {}
        self.last_seen: Dict[int, float] = {w: now for w in self.alive}
        self.stats: Dict[str, int] = {
            "requests": 0,
            "retries": 0,
            "timeouts": 0,
            "rejected_replies": 0,
            "heartbeats": 0,
            "stale_frames": 0,
            "workers_lost": 0,
        }

    # ------------------------------------------------------------------
    def request(
        self,
        worker_id: int,
        frame: bytes,
        *,
        phase: str,
        expect_kind: int,
        decode: Optional[Callable[[bytes], object]] = None,
        timeout: Optional[float] = None,
        already_sent: bool = False,
    ) -> Optional[object]:
        """Send ``frame`` and await a matching reply, with retries.

        ``decode`` parses/validates the reply payload — contiguous
        bytes, or the reassembled chunk list when the worker streamed
        its reply as ``CHUNK``/``END`` frames; any ``ValueError``
        (which covers ``SerializationError``, ``SanitizerError``, and
        ``FrameError``) it raises counts as a rejected reply and
        triggers a retry — this is the path a corrupted frame takes.
        ``frame`` may itself be a list of frames (a chunked request);
        every retry re-sends the whole sequence.  ``already_sent=True``
        skips the first send (for pipelined fan-out: send to all
        workers, then collect each).

        Returns the decoded payload (or the raw payload when ``decode``
        is None); returns ``None`` when the worker was dropped under
        the ``drop`` policy.  Raises the structured error under
        ``fail_fast``.
        """
        if worker_id not in self.alive:
            return None
        cfg = self.config
        wait = cfg.message_timeout if timeout is None else timeout
        delays = backoff_delays(cfg, self._rng)
        attempts = cfg.max_retries + 1
        self.stats["requests"] += 1
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            if attempt > 0:
                self.stats["retries"] += 1
                delay = delays[attempt - 1]
                telemetry.counter("runtime.retries", 1, worker=worker_id)
                telemetry.event(
                    "runtime.retry",
                    worker=worker_id,
                    phase=phase,
                    attempt=attempt,
                    delay=delay,
                )
                if delay > 0:
                    self._sleep(delay)
            try:
                if attempt > 0 or not already_sent:
                    self._send(worker_id, frame)
                return self._await_reply(
                    worker_id, expect_kind, decode, wait, phase
                )
            except _AttemptFailed as exc:
                last_error = exc.__cause__ or exc
            except TransportClosed as exc:
                return self._fail(
                    WorkerCrashedError(worker_id, phase, attempt + 1, exc)
                )
            except TransportError as exc:
                last_error = exc
        return self._fail(
            RetryExhaustedError(worker_id, phase, attempts, last_error)
        )

    def _send(self, worker_id: int, frame) -> None:
        """Push one request — a single frame or a chunked sequence."""
        if isinstance(frame, (list, tuple)):
            for piece in frame:
                self.transport.send(worker_id, piece)
        else:
            self.transport.send(worker_id, frame)

    def _await_reply(
        self,
        worker_id: int,
        expect_kind: int,
        decode: Optional[Callable[[bytes], object]],
        wait: float,
        phase: str,
    ) -> object:
        deadline = self._clock() + wait
        # Per-attempt reassembly: a retry starts a fresh stream, so a
        # half-received chunk sequence from a failed attempt can never
        # splice into the retried reply.
        reassembler = ChunkReassembler()
        while True:
            remaining = deadline - self._clock()
            if remaining <= 0:
                self.stats["timeouts"] += 1
                telemetry.counter(
                    "runtime.timeouts", 1, worker=worker_id, phase=phase
                )
                raise _AttemptFailed() from TransportTimeout(
                    f"no {KIND_NAMES.get(expect_kind, expect_kind)} reply "
                    f"within {wait:.3f}s"
                )
            try:
                data = self.transport.recv(worker_id, remaining)
            except TransportTimeout as exc:
                self.stats["timeouts"] += 1
                telemetry.counter(
                    "runtime.timeouts", 1, worker=worker_id, phase=phase
                )
                raise _AttemptFailed() from exc
            try:
                kind, _, payload = unpack_frame(data)
            except FrameError as exc:
                # Mangled past frame-level recognition: reject + retry.
                self.stats["rejected_replies"] += 1
                raise _AttemptFailed() from exc
            self.note_alive(worker_id)
            if kind == KIND_HEARTBEAT:
                self.stats["heartbeats"] += 1
                telemetry.counter("runtime.heartbeats", 1, worker=worker_id)
                self._ingest_piggyback(worker_id, payload)
                continue
            if kind == KIND_ERROR:
                raise TransportClosed(self._error_detail(payload))
            if kind == KIND_CHUNK:
                # Leftover chunks from a previous attempt's timed-out
                # stream drain as stale frames within *this* attempt;
                # only genuine mid-stream corruption fails the attempt.
                try:
                    accepted = reassembler.feed_tolerant(payload)
                except FrameError as exc:
                    self.stats["rejected_replies"] += 1
                    raise _AttemptFailed() from exc
                if not accepted:
                    self.stats["stale_frames"] += 1
                continue
            if kind == KIND_END:
                try:
                    stream = reassembler.finish_tolerant(payload)
                except FrameError as exc:
                    self.stats["rejected_replies"] += 1
                    raise _AttemptFailed() from exc
                if stream is None:
                    self.stats["stale_frames"] += 1
                    continue
                inner_kind, chunks = stream
                if inner_kind != expect_kind:
                    # A settled round's streamed reply arriving late.
                    self.stats["stale_frames"] += 1
                    continue
                payload = chunks
            elif kind != expect_kind:
                self.stats["stale_frames"] += 1
                continue
            if expect_kind == KIND_ACK and isinstance(payload, bytes):
                # Live-ops acks prefix drained worker metric deltas;
                # peel them here (where the sender is known) so decode
                # callbacks keep seeing the bare ack payload.  Plain
                # acks are shorter than the ops header and pass through
                # untouched.
                try:
                    _, deltas, payload = unpack_ops_prefix(payload)
                except FrameError as exc:
                    self.stats["rejected_replies"] += 1
                    raise _AttemptFailed() from exc
                if deltas:
                    telemetry.ingest_worker_metrics(worker_id, deltas)
            if decode is None:
                return payload
            try:
                return decode(payload)
            except ValueError as exc:
                # SerializationError / SanitizerError / FrameError and
                # round-mismatch rejections all land here: the reply is
                # unusable, ask again.
                self.stats["rejected_replies"] += 1
                raise _AttemptFailed() from exc

    @staticmethod
    def _error_detail(payload: bytes) -> str:
        try:
            detail = pickle.loads(payload)
            return f"worker reported fatal error: {detail.get('error')}"
        except Exception:
            return "worker reported a fatal error (detail unreadable)"

    # ------------------------------------------------------------------
    # elastic membership (repro.fleet): a *detached* worker is alive —
    # its process keeps running and heartbeating — but takes no part in
    # training rounds until re-attached.  Distinct from ``dead``, which
    # is a supervision failure and is never reversed.
    # ------------------------------------------------------------------
    @property
    def members(self) -> Set[int]:
        """Workers currently participating in rounds (alive − detached)."""
        return self.alive - self.detached

    def detach(self, worker_id: int) -> None:
        """Remove a worker from the active membership (elastic leave)."""
        if worker_id not in self.alive:
            raise ValueError(
                f"cannot detach worker {worker_id}: not alive"
            )
        self.detached.add(worker_id)

    def attach(self, worker_id: int) -> None:
        """Return a detached worker to the active membership (join).

        Refreshes the last-seen clock: a worker idle through a long
        detachment must not be declared heartbeat-lost the instant it
        rejoins.
        """
        if worker_id not in self.alive:
            raise ValueError(
                f"cannot attach worker {worker_id}: not alive"
            )
        self.detached.discard(worker_id)
        self.note_alive(worker_id)

    # ------------------------------------------------------------------
    def note_alive(self, worker_id: int) -> None:
        """Refresh the worker's last-seen clock (any frame counts)."""
        self.last_seen[worker_id] = self._clock()

    def drain_heartbeats(self, worker_id: int) -> None:
        """Absorb any queued frames from a worker without blocking.

        Keeps last-seen fresh between rounds; non-heartbeat stale
        frames are discarded (they belong to settled rounds).
        """
        if worker_id not in self.alive:
            return
        while True:
            try:
                data = self.transport.recv(worker_id, 0.0)
            except TransportError:
                return
            try:
                kind, _, payload = unpack_frame(data)
            except FrameError:
                continue
            self.note_alive(worker_id)
            if kind == KIND_HEARTBEAT:
                self.stats["heartbeats"] += 1
                telemetry.counter("runtime.heartbeats", 1, worker=worker_id)
                self._ingest_piggyback(worker_id, payload)
            else:
                self.stats["stale_frames"] += 1

    def _ingest_piggyback(self, worker_id: int, payload: bytes) -> None:
        """Fold heartbeat-carried metric deltas into the metrics hub.

        A mangled piggyback never affects liveness accounting — the
        heartbeat already counted; the deltas are best-effort.
        """
        if not payload:
            return
        try:
            _, deltas, _ = unpack_ops_prefix(payload)
        except FrameError:
            return
        if deltas:
            telemetry.ingest_worker_metrics(worker_id, deltas)

    def check_heartbeats(self, *, phase: str = "heartbeat") -> List[int]:
        """Apply the loss policy to workers silent past the timeout.

        Returns the workers declared lost in this sweep (empty when
        ``heartbeat_timeout`` is disabled).
        """
        cfg = self.config
        if cfg.heartbeat_timeout <= 0:
            return []
        now = self._clock()
        lost: List[int] = []
        for worker_id in sorted(self.alive):
            self.drain_heartbeats(worker_id)
            silent = now - self.last_seen[worker_id]
            if silent > cfg.heartbeat_timeout:
                error = HeartbeatLostError(
                    worker_id, phase, 1,
                    TransportTimeout(
                        f"silent for {silent:.3f}s "
                        f"(heartbeat_timeout={cfg.heartbeat_timeout:.3f}s)"
                    ),
                )
                self._fail(error)
                lost.append(worker_id)
        return lost

    def _fail(self, error: WorkerSupervisionError) -> None:
        """Apply the straggler policy to a structured failure."""
        telemetry.event(
            "runtime.worker_lost",
            worker=error.worker_id,
            phase=error.phase,
            policy=self.config.straggler_policy,
            error=type(error).__name__,
        )
        if self.config.straggler_policy == POLICY_FAIL_FAST:
            raise error
        if error.worker_id in self.alive:
            self.alive.discard(error.worker_id)
            self.dead[error.worker_id] = error
            self.stats["workers_lost"] += 1
        return None
