"""Worker-side execution logic, shared by every transport backend.

A :class:`WorkerRuntime` owns one worker's partition, model replica,
optimizer replica, and compressor, and services driver frames:

* ``EPOCH``  — reshuffle and restart batch iteration, ack.
* ``STEP``   — compute + compress the next mini-batch gradient and
  reply with a ``GRAD`` frame whose payload is the *serialized wire
  bytes* of the compressed message.
* ``UPDATE`` — deserialize + decompress the broadcast aggregate and
  apply it to the local replica with the shipped learning rate, ack.
* ``SYNC``   — replace the local replica state (theta + optimizer)
  with the driver's, so a worker joining mid-training starts exactly
  where the surviving fleet is, ack.
* ``RESHARD`` — rebuild the local :class:`~repro.distributed.worker.
  Worker` over a new row shard of the full training set (elastic
  membership changed; the driver re-partitioned), ack.

Every command is **idempotent per round**: the last ``GRAD`` frame and
the last applied update round are cached, so a retried ``STEP`` or
``UPDATE`` (after a dropped or corrupted reply) re-sends the cached
result instead of recomputing — retries never make a worker's replica
diverge from the driver's model.

The same class backs the in-process ``sim`` transport (handler
callables) and the spawned ``mp`` / ``tcp`` worker processes
(:mod:`repro.runtime.worker_main`).
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .. import telemetry
from ..telemetry.metrics import WorkerMetrics
from ..compression.base import GradientCompressor
from ..core.serialization import (
    SUPPORTED_PAYLOAD_VERSIONS,
    deserialize_message,
    deserialize_message_chunks,
    iter_serialize_message,
    serialize_message,
)
from ..distributed.worker import Worker
from ..models.base import Model
from ..optim.optimizers import Optimizer
from .framing import (
    DEFAULT_CHUNK_BYTES,
    KIND_ACK,
    KIND_EPOCH,
    KIND_GRAD,
    KIND_RESHARD,
    KIND_STEP,
    KIND_SYNC,
    KIND_UPDATE,
    SUPPORTED_FRAME_VERSIONS,
    UPDATE_HEADER_SIZE,
    FrameError,
    iter_chunk_frames,
    pack_ack,
    pack_frame,
    pack_grad_header,
    pack_metrics,
    pack_ops,
    split_chunk_prefix,
    split_ops_prefix_chunks,
    unpack_ack,
    unpack_ops_prefix,
    unpack_step_ex,
    unpack_update,
)

__all__ = ["WorkerBootstrap", "WorkerRuntime"]


@dataclass
class WorkerBootstrap:
    """Everything a worker process needs to reconstruct its state.

    Shipped pickled inside the ``INIT`` frame (workers are child
    processes of the driver on this host; the gradient path itself
    never uses pickle).  All fields must therefore be picklable —
    notably the *compressor instance* rather than a factory closure.

    Attributes:
        worker_id: stable id (seeds batch shuffling, names frames).
        dataset: this worker's row partition (already subset).
        model: shared model definition (stateless).
        optimizer: this replica's optimizer (fresh, unprepared).
        compressor: this worker's compressor instance.
        batch_size: rows per mini-batch.
        seed: base seed for batch order shuffling.
        compute_seconds_per_nnz: modelled compute charge (see
            :class:`~repro.distributed.worker.Worker`).
        heartbeat_interval: seconds between worker heartbeats
            (0 disables; the ``sim`` backend never starts the thread).
        heartbeat_jitter: uniform jitter fraction applied to each
            heartbeat gap, plus a seeded random initial phase — see
            :func:`repro.runtime.worker_main.heartbeat_delays`.
        sanitize: force the :mod:`repro.sanitize` invariant checks on
            in this worker process (the driver's ``REPRO_SANITIZE``
            environment is inherited by spawned children, but a
            programmatic :func:`repro.sanitize.set_enabled` is not —
            this flag carries it across).
        trace_dir: directory of per-process trace part files for the
            active :mod:`repro.telemetry` session (``None`` disables
            the worker-side flight recorder).
        run_id: trace run identifier stamped on every event this
            worker records (matches the driver's run context).
        full_dataset: the *entire* training set (elastic runs only).
            When present, ``dataset`` is ignored and the worker's
            initial shard is ``full_dataset.subset(shard_rows)``;
            keeping the full set on every worker is what makes a
            driver-side ``RESHARD`` a pure control message instead of
            a data transfer.  ``None`` for classic fixed-membership
            runs, where only the pre-cut shard ships.
        shard_rows: row indices of the initial shard into
            ``full_dataset`` (required iff ``full_dataset`` is set).
        entropy_coding: request rANS entropy coding of the bucket-index
            stream (``docs/wire.md``).  Only takes effect when the
            connection negotiated payload v2; a v1-pinned worker
            silently serialises plain v1 bytes.
        chunk_bytes: data bytes per ``CHUNK`` frame when a GRAD body
            larger than this streams over a frame-v2 connection.
    """

    worker_id: int
    dataset: object
    model: Model
    optimizer: Optimizer
    compressor: GradientCompressor
    batch_size: int
    seed: int = 0
    compute_seconds_per_nnz: float = 0.0
    heartbeat_interval: float = 0.0
    heartbeat_jitter: float = 0.0
    sanitize: bool = False
    trace_dir: Optional[str] = None
    run_id: Optional[str] = None
    full_dataset: Optional[object] = None
    shard_rows: Optional[object] = None
    entropy_coding: bool = False
    chunk_bytes: int = DEFAULT_CHUNK_BYTES

    def to_bytes(self) -> bytes:
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def from_bytes(data: bytes) -> "WorkerBootstrap":
        spec = pickle.loads(data)
        if not isinstance(spec, WorkerBootstrap):
            raise FrameError(
                f"INIT payload is {type(spec).__name__}, "
                "expected WorkerBootstrap"
            )
        return spec


@dataclass
class _StepCache:
    """Cached reply for idempotent retries of the latest round.

    ``frames`` is the full GRAD reply — a single frame, or the
    ``CHUNK``...``END`` sequence when the round streamed.
    """

    round_id: int = -1
    frames: List[bytes] = field(default_factory=list)
    applied_round: int = -1
    synced_round: int = -1
    generation: int = -1
    acks: List[bytes] = field(default_factory=list)


class WorkerRuntime:
    """One worker's replica state + frame handlers."""

    def __init__(self, bootstrap: WorkerBootstrap) -> None:
        self.worker_id = int(bootstrap.worker_id)
        self._model = bootstrap.model
        self._full_dataset = bootstrap.full_dataset
        self._compute_seconds_per_nnz = float(
            bootstrap.compute_seconds_per_nnz
        )
        if self._full_dataset is not None:
            if bootstrap.shard_rows is None:
                raise ValueError(
                    "full_dataset bootstraps must carry shard_rows"
                )
            dataset = self._full_dataset.subset(
                np.asarray(bootstrap.shard_rows, dtype=np.int64)
            )
        else:
            dataset = bootstrap.dataset
        self.worker = Worker(
            worker_id=bootstrap.worker_id,
            dataset=dataset,
            model=bootstrap.model,
            compressor=bootstrap.compressor,
            batch_size=bootstrap.batch_size,
            seed=bootstrap.seed,
            compute_seconds_per_nnz=bootstrap.compute_seconds_per_nnz,
        )
        self.theta = bootstrap.model.init_theta()
        self.optimizer = bootstrap.optimizer
        self.optimizer.prepare(bootstrap.model.num_parameters)
        self._cache = _StepCache()
        self._frame_version = 1
        self._payload_version = 1
        self._ops = False
        self._spool = False
        #: live-ops metric deltas, drained by GRAD replies, UPDATE acks
        #: and the heartbeat thread (only fed on spawned-process ops
        #: connections — see :meth:`_metric`).
        self.metrics = WorkerMetrics()
        self._entropy = bool(bootstrap.entropy_coding)
        self._chunk_bytes = int(bootstrap.chunk_bytes)
        if self._chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if bootstrap.sanitize:
            from .. import sanitize

            sanitize.set_enabled(True)

    def set_wire(
        self,
        frame_version: int,
        payload_version: int,
        ops: bool = False,
    ) -> None:
        """Adopt the connection's negotiated protocol versions.

        Called once after the HELLO exchange (spawned workers) or
        directly by the cluster (``sim``).  Until then the runtime
        speaks v1/v1 — a peer that never negotiated is a v1 peer.
        ``ops`` turns on the live-ops plane for this connection:
        GRAD replies carry metric deltas and adopt the driver's
        propagated span context.
        """
        if frame_version not in SUPPORTED_FRAME_VERSIONS:
            raise FrameError(f"unsupported frame version {frame_version}")
        if payload_version not in SUPPORTED_PAYLOAD_VERSIONS:
            raise FrameError(
                f"unsupported payload version {payload_version}"
            )
        if ops and frame_version < 2:
            raise FrameError("live-ops requires a frame-v2 connection")
        self._frame_version = int(frame_version)
        self._payload_version = int(payload_version)
        self._ops = bool(ops)
        # Attach ops blocks (drained metric deltas) to replies only when
        # no driver-side MetricsHub lives in this process: spawned
        # workers spool (worker_main installs a SpoolHub so the recorder
        # tee captures every counter for wire delivery), ``sim`` workers
        # rely on the tee reaching the driver's hub directly — spooling
        # there too would double count.
        from ..telemetry.metrics import SpoolHub

        hub = telemetry.metrics_hub()
        self._spool = self._ops and (
            hub is None or isinstance(hub, SpoolHub)
        )

    def _metric(self, name: str, value: int) -> None:
        """Record one worker counter delta.

        Always emitted as a trace counter event; the process metrics
        hub tee (driver MetricsHub for in-process workers, SpoolHub
        for spawned live-ops workers) is what keeps exporter totals
        and trace sums bit-exactly in step.
        """
        telemetry.counter(name, value, worker=self.worker_id)

    def _ops_block(self) -> bytes:
        """Drain the spool into an ops block for the next reply."""
        return pack_ops(None, pack_metrics(self.metrics.take()))

    # ------------------------------------------------------------------
    def handle(self, kind: int, payload: bytes) -> List[bytes]:
        """Service one driver frame; returns the reply frames to send."""
        if kind == KIND_EPOCH:
            return self._handle_epoch(payload)
        if kind == KIND_STEP:
            return self._handle_step(payload)
        if kind == KIND_UPDATE:
            return self._handle_update(payload)
        if kind == KIND_SYNC:
            return self._handle_sync(payload)
        if kind == KIND_RESHARD:
            return self._handle_reshard(payload)
        raise FrameError(f"worker cannot service frame kind {kind}")

    def handle_frame(self, frame: bytes) -> List[bytes]:
        """``sim`` transport adapter: raw frame in, reply frames out."""
        from .framing import unpack_frame

        kind, _, payload = unpack_frame(frame)
        return self.handle(kind, payload)

    # ------------------------------------------------------------------
    def _handle_epoch(self, payload: bytes) -> List[bytes]:
        epoch = unpack_ack(payload)
        self.worker.start_epoch()
        return [pack_frame(KIND_ACK, self.worker_id, pack_ack(epoch))]

    def _handle_step(self, payload: bytes) -> List[bytes]:
        round_id, _lr, span_id, _ = unpack_step_ex(payload)
        if round_id == self._cache.round_id and self._cache.frames:
            # Retried STEP: re-send the cached reply, don't recompute.
            self._metric("worker.step_retries", 1)
            return list(self._cache.frames)
        # Only the first (computing) service of a round is spanned, so a
        # retried STEP never double-counts worker busy time.  The
        # driver's propagated span context (ops connections) parents
        # this span across the process boundary.
        with telemetry.context(
            worker=self.worker_id, round=round_id, phase="step"
        ), telemetry.remote_parent(span_id), telemetry.span(
            "worker.step"
        ) as step_span:
            rows = self.worker.next_batch()
            if rows is None or rows.size == 0:
                frames = [
                    pack_frame(
                        KIND_GRAD, self.worker_id,
                        pack_grad_header(round_id, False, 0.0, 0.0, 0.0, 0),
                    )
                ]
            else:
                result = self.worker.compute_step(rows, self.theta)
                step_span.set_attrs(
                    compute_s=result.compute_seconds,
                    encode_s=result.encode_seconds,
                )
                self._metric("worker.steps", 1)
                self._metric(
                    "worker.compute_ns",
                    int(result.compute_seconds * 1e9),
                )
                self._metric(
                    "worker.encode_ns", int(result.encode_seconds * 1e9)
                )
                self._metric("worker.grad_nnz", int(result.gradient_nnz))
                # Compressed payload bytes, metered *before* the frames
                # are built so the delta rides this very reply's ops
                # block — every metered byte is wire-deliverable, which
                # is what keeps exporter totals == trace sums bit-exact
                # (framed byte counts live in transport.bytes_* on the
                # driver side).
                self._metric(
                    "worker.bytes_out", int(result.message.num_bytes)
                )
                frames = self._grad_frames(round_id, result)
        self._cache.round_id = round_id
        self._cache.frames = frames
        return list(frames)

    def _grad_frames(self, round_id: int, result) -> List[bytes]:
        """Serialize one step result at the negotiated wire settings.

        A v1/v1 connection produces byte-identical frames to the pre-v2
        runtime.  On payload v2 the message may be entropy coded; on
        frame v2 a body larger than ``chunk_bytes`` streams as
        ``CHUNK``/``END`` frames without ever being joined contiguously.
        """
        version = self._payload_version
        entropy = self._entropy and version >= 2
        header = pack_grad_header(
            round_id,
            True,
            result.local_loss,
            result.compute_seconds,
            result.encode_seconds,
            result.gradient_nnz,
        )
        if self._frame_version >= 2:
            pieces = [header]
            if self._spool:
                # Live-ops block between the GRAD header and the
                # serialized message: drained metric deltas ride the
                # reply.  The message magic ("SKML") can never collide
                # with the ops magic, so v2 peers peel tolerantly.
                pieces.append(self._ops_block())
            body_len = sum(len(p) for p in pieces)
            for piece in iter_serialize_message(
                result.message, version=version, entropy=entropy,
                chunk_bytes=self._chunk_bytes,
            ):
                pieces.append(piece)
                body_len += len(piece)
            if body_len > self._chunk_bytes:
                return list(
                    iter_chunk_frames(
                        KIND_GRAD, self.worker_id, pieces,
                        chunk_bytes=self._chunk_bytes,
                    )
                )
            return [
                pack_frame(KIND_GRAD, self.worker_id, b"".join(pieces))
            ]
        data = serialize_message(
            result.message, version=version, entropy=entropy
        )
        return [pack_frame(KIND_GRAD, self.worker_id, header + data)]

    def _handle_update(self, payload: bytes) -> List[bytes]:
        round_id, lr, data = unpack_update(payload)
        span_id, _, data = unpack_ops_prefix(data)
        return self._apply_update(round_id, lr, data, span_id)

    def handle_chunks(self, inner_kind: int, chunks: List[bytes]) -> List[bytes]:
        """Service a reassembled ``CHUNK``/``END`` stream (frame v2).

        Only ``UPDATE`` streams: the aggregate is the one driver-to-
        worker payload that scales with the model.  The fixed UPDATE
        header is peeled off the chunk list and the rest goes to the
        streaming deserialiser — the message is never joined.
        """
        if inner_kind != KIND_UPDATE:
            raise FrameError(
                f"worker cannot service chunked frame kind {inner_kind}"
            )
        head, rest = split_chunk_prefix(chunks, UPDATE_HEADER_SIZE)
        round_id, lr, _ = unpack_update(head)
        span_id, _, rest = split_ops_prefix_chunks(rest)
        return self._apply_update(round_id, lr, rest, span_id)

    def _apply_update(
        self,
        round_id: int,
        lr: float,
        data,
        span_id: Optional[int] = None,
    ) -> List[bytes]:
        """Decode + apply one broadcast aggregate; ``data`` is the wire
        bytes, contiguous or as a chunk list."""
        if round_id == self._cache.applied_round:
            # Retried UPDATE: already applied, just re-ack.
            return [self._pack_ack_reply(round_id)]
        with telemetry.context(
            worker=self.worker_id, round=round_id, phase="update"
        ), telemetry.remote_parent(span_id), telemetry.span(
            "worker.update"
        ) as upd_span:
            t0 = time.perf_counter()
            if isinstance(data, list):
                message = deserialize_message_chunks(data)
            else:
                message = deserialize_message(data)
            keys, values = self.worker.compressor.decompress(message)
            decode_ns = int((time.perf_counter() - t0) * 1e9)
            upd_span.set_attrs(decode_s=decode_ns / 1e9)
            self.optimizer.learning_rate = lr
            if keys.size:
                self.optimizer.step(self.theta, keys, values)
            self._metric("worker.updates", 1)
            self._metric("worker.decode_ns", decode_ns)
        self._cache.applied_round = round_id
        # The ack's ops block drains everything spooled since the GRAD
        # reply (bytes_out, update metrics) — the round's wire tail, so
        # a clean run delivers every delta without relying on
        # heartbeats.
        return [self._pack_ack_reply(round_id)]

    def _pack_ack_reply(self, round_id: int) -> bytes:
        """ACK with a drained ops prefix on spooling connections.

        A plain ack payload is shorter than the ops header, so v2 peers
        peel the prefix tolerantly and v1 byte streams are unchanged.
        """
        body = pack_ack(round_id)
        if self._spool:
            body = self._ops_block() + body
        return pack_frame(KIND_ACK, self.worker_id, body)

    # ------------------------------------------------------------------
    # elastic membership (repro.fleet)
    # ------------------------------------------------------------------
    def _handle_sync(self, payload: bytes) -> List[bytes]:
        """Adopt the driver's replica state (a worker is (re)joining).

        The payload is a pickled control dict — the ``INIT`` idiom, not
        the gradient wire path — carrying the driver's current theta
        and a deep copy of its optimizer, so the joiner's replica is
        bit-identical to every surviving worker's.
        """
        state = pickle.loads(payload)
        round_id = int(state["round"])
        ack = pack_frame(KIND_ACK, self.worker_id, pack_ack(round_id))
        if round_id == self._cache.synced_round:
            return [ack]  # retried SYNC: already applied, just re-ack
        with telemetry.context(
            worker=self.worker_id, round=round_id, phase="sync"
        ), telemetry.span("worker.sync"):
            self.theta = np.array(state["theta"], dtype=np.float64)
            self.optimizer = state["optimizer"]
            # A sync invalidates any cached GRAD: it was computed
            # against pre-join state no driver will ever ask for again.
            self._cache.round_id = -1
            self._cache.frames = []
        self._cache.synced_round = round_id
        return [ack]

    def _handle_reshard(self, payload: bytes) -> List[bytes]:
        """Rebuild the local shard after an elastic membership change.

        The driver re-partitioned the full training set over the new
        active membership; this worker's new shard arrives as row
        indices into the full dataset shipped at bootstrap.  The
        compressor instance is kept — error-feedback state survives a
        reshard, mirroring how a production worker keeps its residual
        across re-balancing.
        """
        spec = pickle.loads(payload)
        generation = int(spec["generation"])
        ack = pack_frame(KIND_ACK, self.worker_id, pack_ack(generation))
        if generation == self._cache.generation:
            return [ack]  # retried RESHARD: already applied, just re-ack
        if self._full_dataset is None:
            raise FrameError(
                "worker was not bootstrapped with the full dataset; "
                "elastic resharding is unavailable"
            )
        with telemetry.context(
            worker=self.worker_id, phase="reshard"
        ), telemetry.span("worker.reshard", generation=generation):
            rows = np.asarray(spec["rows"], dtype=np.int64)
            self.worker = Worker(
                worker_id=self.worker_id,
                dataset=self._full_dataset.subset(rows),
                model=self._model,
                compressor=self.worker.compressor,
                batch_size=int(spec["batch_size"]),
                seed=int(spec["seed"]),
                compute_seconds_per_nnz=self._compute_seconds_per_nnz,
            )
            # Fresh worker ⇒ fresh batch iterator; a stale cached GRAD
            # from the previous shard must never answer a new round.
            self._cache.round_id = -1
            self._cache.frames = []
        self._cache.generation = generation
        return [ack]
