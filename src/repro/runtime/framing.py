"""Length-prefixed frame codec for the runtime transports.

Every driver/worker exchange — on every backend, including the
in-process simulator — is a *frame*: a fixed little-endian header
followed by an opaque payload.  Gradient payloads are the real
SketchML wire bytes from :func:`repro.core.serialization.
serialize_message`; control payloads (step, update, ack headers) are
packed here so byte-layout opinions stay confined to wire modules
(the ``wire-format`` lint rule).

Layout (all integers little-endian)::

    frame:   magic "SKRT" | version u8 | kind u8 | sender u16 | length u64
             | payload bytes
    STEP:    round u32 | lr f64
    GRAD:    round u32 | has_batch u8 | loss f64 | compute_s f64
             | encode_s f64 | nnz u64 | serialized message bytes
    UPDATE:  round u32 | lr f64 | serialized aggregate bytes
    ACK:     value u32
    EPOCH:   epoch u32

``INIT`` / ``READY`` / ``ERROR`` / ``SYNC`` / ``RESHARD`` payloads are
pickled control dictionaries (they never carry gradient data and never
cross trust boundaries: workers are child processes of the driver on
this host).  ``SYNC`` ships a joining worker the driver's full replica
state; ``RESHARD`` re-assigns a worker's data shard when the elastic
membership changes (see ``docs/fleet.md``).
A frame that does not parse raises :class:`FrameError`; corrupted
*gradient* payloads parse as frames and are rejected downstream by
``deserialize_message`` / the ``REPRO_SANITIZE`` invariant checks —
the frame layer deliberately carries no checksum that would mask that
path.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

__all__ = [
    "FrameError",
    "FrameAssembler",
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "HEADER_SIZE",
    "MAX_FRAME_BYTES",
    "KIND_INIT",
    "KIND_READY",
    "KIND_EPOCH",
    "KIND_STEP",
    "KIND_GRAD",
    "KIND_UPDATE",
    "KIND_ACK",
    "KIND_HEARTBEAT",
    "KIND_STOP",
    "KIND_ERROR",
    "KIND_ECHO",
    "KIND_SYNC",
    "KIND_RESHARD",
    "KIND_NAMES",
    "pack_frame",
    "unpack_header",
    "unpack_header_from",
    "unpack_frame",
    "pack_step",
    "unpack_step",
    "pack_grad_header",
    "unpack_grad",
    "pack_update_header",
    "unpack_update",
    "pack_ack",
    "unpack_ack",
]

FRAME_MAGIC = b"SKRT"
FRAME_VERSION = 1

_HEADER = struct.Struct("<4sBBHQ")
HEADER_SIZE = _HEADER.size

#: Hard ceiling on a single frame's payload — a corrupted length field
#: must not make a receiver try to allocate petabytes.
MAX_FRAME_BYTES = 1 << 31

KIND_INIT = 1
KIND_READY = 2
KIND_EPOCH = 3
KIND_STEP = 4
KIND_GRAD = 5
KIND_UPDATE = 6
KIND_ACK = 7
KIND_HEARTBEAT = 8
KIND_STOP = 9
KIND_ERROR = 10
KIND_ECHO = 11
KIND_SYNC = 12
KIND_RESHARD = 13

KIND_NAMES = {
    KIND_INIT: "init",
    KIND_READY: "ready",
    KIND_EPOCH: "epoch",
    KIND_STEP: "step",
    KIND_GRAD: "grad",
    KIND_UPDATE: "update",
    KIND_ACK: "ack",
    KIND_HEARTBEAT: "heartbeat",
    KIND_STOP: "stop",
    KIND_ERROR: "error",
    KIND_ECHO: "echo",
    KIND_SYNC: "sync",
    KIND_RESHARD: "reshard",
}

_STEP = struct.Struct("<Id")
_GRAD = struct.Struct("<IBdddQ")
_UPDATE = struct.Struct("<Id")
_ACK = struct.Struct("<I")


class FrameError(ValueError):
    """Raised when bytes cannot be parsed as a runtime frame."""


def pack_frame(kind: int, sender: int, payload: bytes = b"") -> bytes:
    """Build one wire frame: header + payload."""
    if kind not in KIND_NAMES:
        raise FrameError(f"unknown frame kind {kind}")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"payload of {len(payload)} bytes exceeds frame limit")
    return _HEADER.pack(
        FRAME_MAGIC, FRAME_VERSION, kind, sender, len(payload)
    ) + payload


def unpack_header(data: bytes) -> Tuple[int, int, int]:
    """Parse a frame header; returns ``(kind, sender, payload_length)``."""
    if len(data) < HEADER_SIZE:
        raise FrameError(f"short frame header ({len(data)} bytes)")
    magic, version, kind, sender, length = _HEADER.unpack(data[:HEADER_SIZE])
    if magic != FRAME_MAGIC:
        raise FrameError("bad magic; not a runtime frame")
    if version != FRAME_VERSION:
        raise FrameError(f"unsupported frame version {version}")
    if kind not in KIND_NAMES:
        raise FrameError(f"unknown frame kind {kind}")
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds limit")
    return kind, sender, length


def unpack_header_from(buf, offset: int = 0) -> Tuple[int, int, int]:
    """Parse a frame header in place (no slice copy).

    Works over any buffer object (``bytes``, ``bytearray``,
    ``memoryview``) with at least ``HEADER_SIZE`` bytes available at
    ``offset``; returns ``(kind, sender, payload_length)``.
    """
    try:
        magic, version, kind, sender, length = _HEADER.unpack_from(buf, offset)
    except struct.error as exc:
        raise FrameError(f"short frame header: {exc}") from None
    if magic != FRAME_MAGIC:
        raise FrameError("bad magic; not a runtime frame")
    if version != FRAME_VERSION:
        raise FrameError(f"unsupported frame version {version}")
    if kind not in KIND_NAMES:
        raise FrameError(f"unknown frame kind {kind}")
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds limit")
    return kind, sender, length


class FrameAssembler:
    """Incremental zero-copy reassembly of frames from a byte stream.

    Stream transports feed raw socket bytes in and take complete
    frames out.  The assembler owns one reusable ``bytearray``; readers
    fill its tail directly via :meth:`writable` (a ``memoryview``
    suitable for ``recv_into``) + :meth:`commit`, so arriving bytes are
    written into the frame buffer exactly once.  :meth:`next_frame`
    parses the header in place (:func:`unpack_header_from`) and copies
    each complete frame out once — the only copy a frame pays between
    the socket and the transport inbox.  Partial reads, frames split
    across arbitrary ``recv`` boundaries, and coalesced back-to-back
    frames all fall out of the same accounting.

    The buffer is compacted (live bytes moved to the front) only when
    the tail runs out of room, and grows geometrically when a frame is
    larger than the current capacity.
    """

    def __init__(self, initial_capacity: int = 65536) -> None:
        if initial_capacity <= 0:
            raise ValueError("initial_capacity must be positive")
        self._buf = bytearray(initial_capacity)
        self._start = 0  # first unconsumed byte
        self._end = 0  # one past the last filled byte

    def __len__(self) -> int:
        """Bytes buffered but not yet extracted as frames."""
        return self._end - self._start

    def writable(self, min_size: int = 65536) -> memoryview:
        """A writable view of the buffer tail (use with ``recv_into``).

        Guarantees at least ``min_size`` bytes of room, compacting or
        growing the underlying buffer as needed.
        """
        if len(self._buf) - self._end < min_size:
            live = self._end - self._start
            capacity = len(self._buf)
            while capacity - live < min_size:
                capacity *= 2  # geometric growth
            # Swap in a fresh buffer rather than resizing in place: a
            # caller may still hold the memoryview from the previous
            # writable() call, and resizing an exported bytearray
            # raises BufferError.
            fresh = bytearray(capacity)
            fresh[:live] = self._buf[self._start:self._end]
            self._buf = fresh
            self._start, self._end = 0, live
        return memoryview(self._buf)[self._end:]

    def commit(self, n: int) -> None:
        """Record that ``n`` bytes were written into :meth:`writable`."""
        if n < 0 or self._end + n > len(self._buf):
            raise ValueError(f"cannot commit {n} bytes")
        self._end += n

    def feed(self, data: bytes) -> None:
        """Copy-in convenience for non-socket sources (pipes, tests)."""
        view = self.writable(max(len(data), 1))
        view[: len(data)] = data
        self.commit(len(data))

    def next_frame(self) -> Optional[bytes]:
        """Extract the next complete frame, or ``None`` if more bytes
        are needed.  Raises :class:`FrameError` when the buffered bytes
        cannot be a frame header (a desynchronised stream)."""
        available = self._end - self._start
        if available < HEADER_SIZE:
            return None
        _, _, length = unpack_header_from(self._buf, self._start)
        total = HEADER_SIZE + length
        if available < total:
            # Pre-size for the rest of this frame so large payloads
            # don't pay repeated doublings.
            if total > len(self._buf) - self._start:
                self.writable(total - available)
            return None
        frame = bytes(self._buf[self._start:self._start + total])
        self._start += total
        if self._start == self._end:
            self._start = self._end = 0
        return frame


def unpack_frame(data: bytes) -> Tuple[int, int, bytes]:
    """Parse one complete frame; returns ``(kind, sender, payload)``."""
    kind, sender, length = unpack_header(data)
    if len(data) != HEADER_SIZE + length:
        raise FrameError(
            f"frame length mismatch: header says {length}, "
            f"got {len(data) - HEADER_SIZE} payload bytes"
        )
    return kind, sender, data[HEADER_SIZE:]


# ----------------------------------------------------------------------
# typed payload codecs
# ----------------------------------------------------------------------
def pack_step(round_id: int, lr: float) -> bytes:
    return _STEP.pack(round_id, lr)


def unpack_step(payload: bytes) -> Tuple[int, float]:
    try:
        round_id, lr = _STEP.unpack(payload)
    except struct.error as exc:
        raise FrameError(f"bad STEP payload: {exc}") from None
    return int(round_id), float(lr)


def pack_grad_header(
    round_id: int,
    has_batch: bool,
    loss: float,
    compute_seconds: float,
    encode_seconds: float,
    nnz: int,
) -> bytes:
    return _GRAD.pack(
        round_id, 1 if has_batch else 0, loss, compute_seconds,
        encode_seconds, nnz,
    )


def unpack_grad(payload: bytes) -> Tuple[int, bool, float, float, float, int, bytes]:
    """Split a GRAD payload into its header fields + message bytes."""
    if len(payload) < _GRAD.size:
        raise FrameError(f"short GRAD payload ({len(payload)} bytes)")
    round_id, has_batch, loss, compute_s, encode_s, nnz = _GRAD.unpack(
        payload[:_GRAD.size]
    )
    return (
        int(round_id), bool(has_batch), float(loss), float(compute_s),
        float(encode_s), int(nnz), payload[_GRAD.size:],
    )


def pack_update_header(round_id: int, lr: float) -> bytes:
    return _UPDATE.pack(round_id, lr)


def unpack_update(payload: bytes) -> Tuple[int, float, bytes]:
    """Split an UPDATE payload into ``(round, lr, message_bytes)``."""
    if len(payload) < _UPDATE.size:
        raise FrameError(f"short UPDATE payload ({len(payload)} bytes)")
    round_id, lr = _UPDATE.unpack(payload[:_UPDATE.size])
    return int(round_id), float(lr), payload[_UPDATE.size:]


def pack_ack(value: int) -> bytes:
    return _ACK.pack(value)


def unpack_ack(payload: bytes) -> int:
    try:
        (value,) = _ACK.unpack(payload)
    except struct.error as exc:
        raise FrameError(f"bad ACK payload: {exc}") from None
    return int(value)
