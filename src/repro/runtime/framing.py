"""Length-prefixed frame codec for the runtime transports.

Every driver/worker exchange — on every backend, including the
in-process simulator — is a *frame*: a fixed little-endian header
followed by an opaque payload.  Gradient payloads are the real
SketchML wire bytes from :func:`repro.core.serialization.
serialize_message`; control payloads (step, update, ack headers) are
packed here so byte-layout opinions stay confined to wire modules
(the ``wire-format`` lint rule).

Layout (all integers little-endian)::

    frame:   magic "SKRT" | version u8 | kind u8 | sender u16 | length u64
             | payload bytes
    STEP:    round u32 | lr f64
    GRAD:    round u32 | has_batch u8 | loss f64 | compute_s f64
             | encode_s f64 | nnz u64 | serialized message bytes
    UPDATE:  round u32 | lr f64 | serialized aggregate bytes
    ACK:     value u32
    EPOCH:   epoch u32

``INIT`` / ``READY`` / ``ERROR`` / ``SYNC`` / ``RESHARD`` payloads are
pickled control dictionaries (they never carry gradient data and never
cross trust boundaries: workers are child processes of the driver on
this host).  ``SYNC`` ships a joining worker the driver's full replica
state; ``RESHARD`` re-assigns a worker's data shard when the elastic
membership changes (see ``docs/fleet.md``).
A frame that does not parse raises :class:`FrameError`; corrupted
*gradient* payloads parse as frames and are rejected downstream by
``deserialize_message`` / the ``REPRO_SANITIZE`` invariant checks —
the frame layer deliberately carries no checksum that would mask that
path.

Frame version 2 (``docs/wire.md``) keeps the identical header layout
and adds three kinds.  ``HELLO`` carries both peers' supported
``{frame, payload}`` version ranges; the exchange pins the highest
mutually supported pair per connection (:func:`negotiate_versions`),
and a peer that never sends one is pinned at v1 — exactly how the
pre-v2 transports behaved.  ``CHUNK``/``END`` stream one oversized
logical frame as a bounded sequence (:func:`iter_chunk_frames` /
:class:`ChunkReassembler`) so a multi-GB gradient never crosses the
wire — or the reassembly buffer — as one contiguous allocation.
``CHUNK``/``END`` frames are stamped with header version 2 and are
only legal on connections that negotiated frame v2; everything else
keeps version 1 so a mixed fleet's non-chunked byte streams are
bit-identical to an all-v1 fleet's.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "FrameError",
    "NegotiationError",
    "FrameAssembler",
    "ChunkReassembler",
    "ProtocolCaps",
    "DEFAULT_CAPS",
    "V1_CAPS",
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "FRAME_VERSION_V2",
    "SUPPORTED_FRAME_VERSIONS",
    "HEADER_SIZE",
    "GRAD_HEADER_SIZE",
    "UPDATE_HEADER_SIZE",
    "MAX_FRAME_BYTES",
    "DEFAULT_CHUNK_BYTES",
    "KIND_INIT",
    "KIND_READY",
    "KIND_EPOCH",
    "KIND_STEP",
    "KIND_GRAD",
    "KIND_UPDATE",
    "KIND_ACK",
    "KIND_HEARTBEAT",
    "KIND_STOP",
    "KIND_ERROR",
    "KIND_ECHO",
    "KIND_SYNC",
    "KIND_RESHARD",
    "KIND_HELLO",
    "KIND_CHUNK",
    "KIND_END",
    "KIND_NAMES",
    "pack_frame",
    "unpack_header",
    "unpack_header_from",
    "unpack_frame",
    "pack_step",
    "unpack_step",
    "unpack_step_ex",
    "pack_grad_header",
    "unpack_grad",
    "pack_update_header",
    "unpack_update",
    "pack_ack",
    "unpack_ack",
    "pack_hello",
    "unpack_hello",
    "negotiate_versions",
    "negotiate_ops",
    "OPS_HEADER_SIZE",
    "pack_ops",
    "unpack_ops_prefix",
    "split_ops_prefix_chunks",
    "pack_metrics",
    "unpack_metrics",
    "pack_chunk",
    "unpack_chunk",
    "pack_chunk_end",
    "unpack_chunk_end",
    "iter_chunk_frames",
    "split_chunk_prefix",
]

FRAME_MAGIC = b"SKRT"
FRAME_VERSION = 1
FRAME_VERSION_V2 = 2
SUPPORTED_FRAME_VERSIONS = (FRAME_VERSION, FRAME_VERSION_V2)

_HEADER = struct.Struct("<4sBBHQ")
HEADER_SIZE = _HEADER.size

#: Hard ceiling on a single frame's payload — a corrupted length field
#: must not make a receiver try to allocate petabytes.  Receivers can
#: (and the fuzz tier does) pass :class:`FrameAssembler` a tighter
#: per-connection budget.
MAX_FRAME_BYTES = 1 << 31

#: Default data bytes per ``CHUNK`` frame when streaming a large
#: payload (:func:`iter_chunk_frames`).
DEFAULT_CHUNK_BYTES = 64 * 1024

KIND_INIT = 1
KIND_READY = 2
KIND_EPOCH = 3
KIND_STEP = 4
KIND_GRAD = 5
KIND_UPDATE = 6
KIND_ACK = 7
KIND_HEARTBEAT = 8
KIND_STOP = 9
KIND_ERROR = 10
KIND_ECHO = 11
KIND_SYNC = 12
KIND_RESHARD = 13
KIND_HELLO = 14
KIND_CHUNK = 15
KIND_END = 16

KIND_NAMES = {
    KIND_INIT: "init",
    KIND_READY: "ready",
    KIND_EPOCH: "epoch",
    KIND_STEP: "step",
    KIND_GRAD: "grad",
    KIND_UPDATE: "update",
    KIND_ACK: "ack",
    KIND_HEARTBEAT: "heartbeat",
    KIND_STOP: "stop",
    KIND_ERROR: "error",
    KIND_ECHO: "echo",
    KIND_SYNC: "sync",
    KIND_RESHARD: "reshard",
    KIND_HELLO: "hello",
    KIND_CHUNK: "chunk",
    KIND_END: "end",
}

_STEP = struct.Struct("<Id")
_GRAD = struct.Struct("<IBdddQ")
_UPDATE = struct.Struct("<Id")
_ACK = struct.Struct("<I")

#: Fixed header sizes of the GRAD / UPDATE payloads — what
#: :func:`split_chunk_prefix` peels off a reassembled chunk stream
#: before the rest goes to the streaming message decoder.
GRAD_HEADER_SIZE = _GRAD.size
UPDATE_HEADER_SIZE = _UPDATE.size

_HELLO_MAGIC = b"HELO"
_HELLO = struct.Struct("<4sBBBB")
#: HELLO capability extension: ``tag u8 | len u8 | value`` TLVs after
#: the 8-byte base.  Tag 1 = live-ops plane (value: one non-zero byte).
_HELLO_TLV = struct.Struct("<BBB")
_HELLO_EXT_OPS = 1
_CHUNK = struct.Struct("<IB")
_CHUNK_END = struct.Struct("<IBQ")

#: Ops block (live-ops plane): an optional, length-delimited block
#: between a payload's fixed header and its message bytes, carrying a
#: propagated span context and/or compact metric deltas.  Layout:
#: ``"OPS1" | flags u8 | span_id u64 | metrics_len u32 | metrics``.
_OPS_MAGIC = b"OPS1"
_OPS_HEADER = struct.Struct("<4sBQI")
_OPS_FLAG_SPAN = 0x01
OPS_HEADER_SIZE = _OPS_HEADER.size

#: Metric-delta encoding inside an ops block: ``count u16`` then per
#: entry ``key_len u8 | key utf-8 | value i64`` (name-sorted).
_METRICS_COUNT = struct.Struct("<H")
_METRICS_VALUE = struct.Struct("<q")


class FrameError(ValueError):
    """Raised when bytes cannot be parsed as a runtime frame."""


class NegotiationError(FrameError):
    """Raised when two peers share no common protocol version."""


def pack_frame(
    kind: int, sender: int, payload: bytes = b"", *, version: int = FRAME_VERSION
) -> bytes:
    """Build one wire frame: header + payload."""
    if kind not in KIND_NAMES:
        raise FrameError(f"unknown frame kind {kind}")
    if version not in SUPPORTED_FRAME_VERSIONS:
        raise FrameError(f"unsupported frame version {version}")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"payload of {len(payload)} bytes exceeds frame limit")
    return _HEADER.pack(
        FRAME_MAGIC, version, kind, sender, len(payload)
    ) + payload


def unpack_header(
    data: bytes, *, max_frame_bytes: int = MAX_FRAME_BYTES
) -> Tuple[int, int, int]:
    """Parse a frame header; returns ``(kind, sender, payload_length)``."""
    if len(data) < HEADER_SIZE:
        raise FrameError(f"short frame header ({len(data)} bytes)")
    return unpack_header_from(data, 0, max_frame_bytes=max_frame_bytes)


def unpack_header_from(
    buf, offset: int = 0, *, max_frame_bytes: int = MAX_FRAME_BYTES
) -> Tuple[int, int, int]:
    """Parse a frame header in place (no slice copy).

    Works over any buffer object (``bytes``, ``bytearray``,
    ``memoryview``) with at least ``HEADER_SIZE`` bytes available at
    ``offset``; returns ``(kind, sender, payload_length)``.  The
    declared length is validated against ``max_frame_bytes`` *here*,
    before any receiver allocates for the payload.
    """
    try:
        magic, version, kind, sender, length = _HEADER.unpack_from(buf, offset)
    except struct.error as exc:
        raise FrameError(f"short frame header: {exc}") from None
    if magic != FRAME_MAGIC:
        raise FrameError("bad magic; not a runtime frame")
    if version not in SUPPORTED_FRAME_VERSIONS:
        raise FrameError(f"unsupported frame version {version}")
    if kind not in KIND_NAMES:
        raise FrameError(f"unknown frame kind {kind}")
    if length > min(max_frame_bytes, MAX_FRAME_BYTES):
        raise FrameError(f"frame length {length} exceeds limit")
    return kind, sender, length


class FrameAssembler:
    """Incremental zero-copy reassembly of frames from a byte stream.

    Stream transports feed raw socket bytes in and take complete
    frames out.  The assembler owns one reusable ``bytearray``; readers
    fill its tail directly via :meth:`writable` (a ``memoryview``
    suitable for ``recv_into``) + :meth:`commit`, so arriving bytes are
    written into the frame buffer exactly once.  :meth:`next_frame`
    parses the header in place (:func:`unpack_header_from`) and copies
    each complete frame out once — the only copy a frame pays between
    the socket and the transport inbox.  Partial reads, frames split
    across arbitrary ``recv`` boundaries, and coalesced back-to-back
    frames all fall out of the same accounting.

    The buffer is compacted (live bytes moved to the front) only when
    the tail runs out of room, and grows geometrically when a frame is
    larger than the current capacity.

    ``max_frame_bytes`` clamps the declared length of every frame
    *before* the pre-sizing allocation: a lying u64 length field raises
    :class:`FrameError` instead of growing the buffer toward it.  The
    default is the protocol-wide :data:`MAX_FRAME_BYTES`; receivers
    that know their peers better (tests, fuzzers, control-plane-only
    connections) pass a tighter budget.
    """

    def __init__(
        self,
        initial_capacity: int = 65536,
        *,
        max_frame_bytes: Optional[int] = None,
    ) -> None:
        if initial_capacity <= 0:
            raise ValueError("initial_capacity must be positive")
        if max_frame_bytes is None:
            max_frame_bytes = MAX_FRAME_BYTES
        if max_frame_bytes <= 0:
            raise ValueError("max_frame_bytes must be positive")
        self._max_frame_bytes = max_frame_bytes
        self._buf = bytearray(initial_capacity)
        self._start = 0  # first unconsumed byte
        self._end = 0  # one past the last filled byte

    def __len__(self) -> int:
        """Bytes buffered but not yet extracted as frames."""
        return self._end - self._start

    def writable(self, min_size: int = 65536) -> memoryview:
        """A writable view of the buffer tail (use with ``recv_into``).

        Guarantees at least ``min_size`` bytes of room, compacting or
        growing the underlying buffer as needed.
        """
        if len(self._buf) - self._end < min_size:
            live = self._end - self._start
            capacity = len(self._buf)
            while capacity - live < min_size:
                capacity *= 2  # geometric growth
            # Swap in a fresh buffer rather than resizing in place: a
            # caller may still hold the memoryview from the previous
            # writable() call, and resizing an exported bytearray
            # raises BufferError.
            fresh = bytearray(capacity)
            fresh[:live] = self._buf[self._start:self._end]
            self._buf = fresh
            self._start, self._end = 0, live
        return memoryview(self._buf)[self._end:]

    def commit(self, n: int) -> None:
        """Record that ``n`` bytes were written into :meth:`writable`."""
        if n < 0 or self._end + n > len(self._buf):
            raise ValueError(f"cannot commit {n} bytes")
        self._end += n

    def feed(self, data: bytes) -> None:
        """Copy-in convenience for non-socket sources (pipes, tests)."""
        view = self.writable(max(len(data), 1))
        view[: len(data)] = data
        self.commit(len(data))

    def next_frame(self) -> Optional[bytes]:
        """Extract the next complete frame, or ``None`` if more bytes
        are needed.  Raises :class:`FrameError` when the buffered bytes
        cannot be a frame header (a desynchronised stream)."""
        available = self._end - self._start
        if available < HEADER_SIZE:
            return None
        _, _, length = unpack_header_from(
            self._buf, self._start, max_frame_bytes=self._max_frame_bytes
        )
        total = HEADER_SIZE + length
        if available < total:
            # Pre-size for the rest of this frame so large payloads
            # don't pay repeated doublings.
            if total > len(self._buf) - self._start:
                self.writable(total - available)
            return None
        frame = bytes(self._buf[self._start:self._start + total])
        self._start += total
        if self._start == self._end:
            self._start = self._end = 0
        return frame


def unpack_frame(data: bytes) -> Tuple[int, int, bytes]:
    """Parse one complete frame; returns ``(kind, sender, payload)``."""
    kind, sender, length = unpack_header(data)
    if len(data) != HEADER_SIZE + length:
        raise FrameError(
            f"frame length mismatch: header says {length}, "
            f"got {len(data) - HEADER_SIZE} payload bytes"
        )
    return kind, sender, data[HEADER_SIZE:]


# ----------------------------------------------------------------------
# version negotiation (frame v2)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProtocolCaps:
    """The ``{frame, payload}`` version ranges one peer supports.

    A ``HELLO`` carries both ranges; :func:`negotiate_versions` pins
    each axis to ``min(max_a, max_b)`` and fails when that falls below
    either peer's minimum.  The defaults advertise everything this
    build speaks; ``V1_CAPS`` emulates a pre-v2 peer bit-for-bit.
    """

    frame_min: int = 1
    frame_max: int = FRAME_VERSION_V2
    payload_min: int = 1
    payload_max: int = 2
    #: live-ops plane capability: span-context + metrics ops blocks on
    #: GRAD/UPDATE/STEP/HEARTBEAT payloads.  Advertised as a HELLO TLV
    #: extension (absent => False), effective only when both peers
    #: advertise it *and* the pinned frame version is >= 2.
    ops: bool = True

    def __post_init__(self) -> None:
        for lo, hi, axis in (
            (self.frame_min, self.frame_max, "frame"),
            (self.payload_min, self.payload_max, "payload"),
        ):
            if not 1 <= lo <= hi <= 255:
                raise ValueError(
                    f"invalid {axis} version range [{lo}, {hi}]"
                )


DEFAULT_CAPS = ProtocolCaps()
V1_CAPS = ProtocolCaps(
    frame_min=1, frame_max=1, payload_min=1, payload_max=1, ops=False
)


def negotiate_versions(
    ours: ProtocolCaps, theirs: ProtocolCaps
) -> Tuple[int, int]:
    """Pin the highest mutually supported ``(frame, payload)`` versions.

    Raises:
        NegotiationError: when either axis has no overlap — the caller
            turns this into a structured per-worker transport failure.
    """
    pinned: List[int] = []
    for lo_a, hi_a, lo_b, hi_b, axis in (
        (ours.frame_min, ours.frame_max, theirs.frame_min,
         theirs.frame_max, "frame"),
        (ours.payload_min, ours.payload_max, theirs.payload_min,
         theirs.payload_max, "payload"),
    ):
        chosen = min(hi_a, hi_b)
        if chosen < max(lo_a, lo_b):
            raise NegotiationError(
                f"no common {axis} version: ours [{lo_a}, {hi_a}], "
                f"theirs [{lo_b}, {hi_b}]"
            )
        pinned.append(chosen)
    return pinned[0], pinned[1]


def pack_hello(caps: ProtocolCaps) -> bytes:
    """HELLO payload: magic + version ranges + capability TLVs.

    The 8-byte base is the frozen v2 HELLO; capabilities beyond the
    version axes append as ``tag u8 | len u8 | value`` TLVs (the
    extension space the wire follow-ons reserved).  Readers skip
    unknown tags, so future capabilities stay backward compatible; a
    peer without the ops capability emits the bare 8-byte base —
    byte-identical to the original v2 HELLO.
    """
    base = _HELLO.pack(
        _HELLO_MAGIC, caps.frame_min, caps.frame_max,
        caps.payload_min, caps.payload_max,
    )
    if caps.ops:
        base += _HELLO_TLV.pack(_HELLO_EXT_OPS, 1, 1)
    return base


def unpack_hello(payload: bytes) -> ProtocolCaps:
    if len(payload) < _HELLO.size:
        raise FrameError(f"short HELLO payload ({len(payload)} bytes)")
    try:
        magic, f_lo, f_hi, p_lo, p_hi = _HELLO.unpack_from(payload)
    except struct.error as exc:
        raise FrameError(f"bad HELLO payload: {exc}") from None
    if magic != _HELLO_MAGIC:
        raise FrameError("bad HELLO magic")
    ops = False
    offset = _HELLO.size
    while offset < len(payload):
        if offset + 2 > len(payload):
            raise FrameError("truncated HELLO extension TLV")
        tag = payload[offset]
        tlen = payload[offset + 1]
        offset += 2
        if offset + tlen > len(payload):
            raise FrameError(
                f"HELLO TLV {tag} declares {tlen} bytes past the payload"
            )
        value = payload[offset:offset + tlen]
        offset += tlen
        if tag == _HELLO_EXT_OPS:
            ops = bool(tlen >= 1 and value[0] != 0)
        # Unknown tags are skipped: forward compatibility.
    try:
        return ProtocolCaps(
            frame_min=f_lo, frame_max=f_hi,
            payload_min=p_lo, payload_max=p_hi,
            ops=ops,
        )
    except ValueError as exc:
        raise FrameError(f"bad HELLO payload: {exc}") from None


def negotiate_ops(
    ours: ProtocolCaps, theirs: ProtocolCaps, frame_version: int
) -> bool:
    """Effective ops capability: both advertise it, on a v2+ frame."""
    return bool(ours.ops and theirs.ops and frame_version >= 2)


# ----------------------------------------------------------------------
# chunked streaming (frame v2)
# ----------------------------------------------------------------------
def pack_chunk(sender: int, seq: int, inner_kind: int, data: bytes) -> bytes:
    """One ``CHUNK`` frame: sequence number, wrapped kind, data slice."""
    if inner_kind not in KIND_NAMES:
        raise FrameError(f"unknown inner frame kind {inner_kind}")
    return pack_frame(
        KIND_CHUNK, sender, _CHUNK.pack(seq, inner_kind) + data,
        version=FRAME_VERSION_V2,
    )


def unpack_chunk(payload: bytes) -> Tuple[int, int, bytes]:
    """Split a ``CHUNK`` payload into ``(seq, inner_kind, data)``."""
    if len(payload) < _CHUNK.size:
        raise FrameError(f"short CHUNK payload ({len(payload)} bytes)")
    seq, inner_kind = _CHUNK.unpack(payload[:_CHUNK.size])
    return int(seq), int(inner_kind), payload[_CHUNK.size:]


def pack_chunk_end(
    sender: int, total_chunks: int, inner_kind: int, total_bytes: int
) -> bytes:
    """The ``END`` frame closing a chunk stream, with its totals."""
    if inner_kind not in KIND_NAMES:
        raise FrameError(f"unknown inner frame kind {inner_kind}")
    return pack_frame(
        KIND_END, sender, _CHUNK_END.pack(total_chunks, inner_kind, total_bytes),
        version=FRAME_VERSION_V2,
    )


def unpack_chunk_end(payload: bytes) -> Tuple[int, int, int]:
    """Split an ``END`` payload into ``(total_chunks, inner_kind, total_bytes)``."""
    try:
        total_chunks, inner_kind, total_bytes = _CHUNK_END.unpack(payload)
    except struct.error as exc:
        raise FrameError(f"bad END payload: {exc}") from None
    return int(total_chunks), int(inner_kind), int(total_bytes)


def iter_chunk_frames(
    inner_kind: int,
    sender: int,
    pieces: Iterable[bytes],
    *,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> Iterator[bytes]:
    """Stream a logical payload as ``CHUNK`` frames plus a closing ``END``.

    ``pieces`` is any iterable of byte strings (for gradients, the
    GRAD header followed by
    :func:`~repro.core.serialization.iter_serialize_message` output);
    they are re-sliced so every ``CHUNK`` carries exactly
    ``chunk_bytes`` of data except the last.  Only one chunk is
    buffered at a time.
    """
    if chunk_bytes <= 0:
        raise FrameError("chunk_bytes must be positive")
    seq = 0
    total_bytes = 0
    buf = bytearray()
    for piece in pieces:
        start = 0
        while start < len(piece):
            take = min(chunk_bytes - len(buf), len(piece) - start)
            buf += piece[start:start + take]
            start += take
            if len(buf) == chunk_bytes:
                yield pack_chunk(sender, seq, inner_kind, bytes(buf))
                seq += 1
                total_bytes += len(buf)
                del buf[:]
    if buf:
        yield pack_chunk(sender, seq, inner_kind, bytes(buf))
        seq += 1
        total_bytes += len(buf)
    yield pack_chunk_end(sender, seq, inner_kind, total_bytes)


class ChunkReassembler:
    """Bounded, strictly sequential reassembly of one chunk stream.

    Transports feed ``CHUNK`` payloads in arrival order and close the
    stream with the ``END`` payload; the result is the inner frame kind
    plus the data as a *list* of chunks, never joined here — the
    streaming deserialiser consumes the list directly, so the payload
    stays non-contiguous end to end.

    Every deviation is a structured :class:`FrameError`: out-of-order
    or duplicated sequence numbers, a mid-stream kind switch, a budget
    overrun, or ``END`` totals that disagree with what actually
    arrived (a length-field lie).
    """

    def __init__(self, *, max_bytes: int = MAX_FRAME_BYTES) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self._max_bytes = max_bytes
        self.reset()

    def reset(self) -> None:
        """Drop any partial stream (e.g. before a supervised retry)."""
        self._chunks: List[bytes] = []
        self._bytes = 0
        self._kind: Optional[int] = None
        self._next_seq = 0

    @property
    def active(self) -> bool:
        """True once at least one chunk of a stream has arrived."""
        return self._kind is not None

    def feed(self, payload: bytes) -> None:
        """Add one ``CHUNK`` frame's payload to the stream."""
        seq, inner_kind, data = unpack_chunk(payload)
        if self._kind is None:
            self._kind = inner_kind
        elif inner_kind != self._kind:
            raise FrameError(
                f"chunk stream switched kind {self._kind} -> {inner_kind}"
            )
        if seq != self._next_seq:
            raise FrameError(
                f"chunk sequence broken: got {seq}, expected {self._next_seq}"
            )
        if self._bytes + len(data) > self._max_bytes:
            raise FrameError(
                f"chunked payload exceeds the {self._max_bytes}-byte "
                f"reassembly budget"
            )
        self._chunks.append(data)
        self._bytes += len(data)
        self._next_seq += 1

    def feed_tolerant(self, payload: bytes) -> bool:
        """Feed one ``CHUNK`` payload, absorbing retries and stale tails.

        The supervised send path retries a failed chunked send from the
        beginning with identical bytes, and a receiver that timed out
        mid-stream may still see the old stream's tail before the new
        one starts.  Two deviations are therefore expected rather than
        fatal: a seq-0 chunk arriving while a stream is active restarts
        the stream (the partial one it replaces is discarded), and a
        non-zero-seq chunk arriving while *no* stream is active is a
        recognisably stale leftover and is dropped.  Returns ``True``
        when the chunk was accepted, ``False`` when it was dropped as
        stale.  Everything else — a mid-stream gap, a kind switch, a
        budget overrun — still raises :class:`FrameError`.
        """
        seq, _, _ = unpack_chunk(payload)
        if seq == 0 and self.active:
            self.reset()
        elif seq != 0 and not self.active:
            return False
        self.feed(payload)
        return True

    def finish_tolerant(
        self, payload: bytes
    ) -> Optional[Tuple[int, List[bytes]]]:
        """Close the stream, dropping a recognisably stale ``END``.

        An ``END`` declaring non-zero totals while no stream is active
        is the tail of an aborted earlier stream (whose chunks
        :meth:`feed_tolerant` already dropped); it returns ``None``
        instead of raising.  An ``END`` whose totals disagree with an
        *active* stream is still a length-field lie and raises
        :class:`FrameError`.
        """
        total_chunks, _, total_bytes = unpack_chunk_end(payload)
        if not self.active and (total_chunks != 0 or total_bytes != 0):
            return None
        return self.finish(payload)

    def finish(self, payload: bytes) -> Tuple[int, List[bytes]]:
        """Close the stream with the ``END`` payload.

        Returns ``(inner_kind, chunks)`` and resets for the next
        stream.  The declared totals must match what arrived exactly.
        """
        total_chunks, inner_kind, total_bytes = unpack_chunk_end(payload)
        if self._kind is None:
            if total_chunks != 0 or total_bytes != 0:
                raise FrameError("END without a preceding chunk stream")
            self._kind = inner_kind
        if inner_kind != self._kind:
            raise FrameError(
                f"END kind {inner_kind} does not match stream kind {self._kind}"
            )
        if total_chunks != self._next_seq:
            raise FrameError(
                f"END declares {total_chunks} chunks, received {self._next_seq}"
            )
        if total_bytes != self._bytes:
            raise FrameError(
                f"END declares {total_bytes} bytes, received {self._bytes}"
            )
        out = (self._kind, self._chunks)
        self.reset()
        return out


def split_chunk_prefix(
    chunks: Sequence[bytes], n: int
) -> Tuple[bytes, List[bytes]]:
    """Peel ``n`` header bytes off a chunk list without joining the rest.

    Used to strip the fixed GRAD/UPDATE header from a reassembled
    stream before handing the remaining chunks to the streaming
    message decoder.
    """
    head = bytearray()
    rest: List[bytes] = []
    for chunk in chunks:
        if len(head) < n:
            need = n - len(head)
            head += chunk[:need]
            if len(chunk) > need:
                rest.append(chunk[need:])
        elif chunk:
            rest.append(chunk)
    if len(head) < n:
        raise FrameError(
            f"chunked payload shorter than its {n}-byte header"
        )
    return bytes(head), rest


# ----------------------------------------------------------------------
# typed payload codecs
# ----------------------------------------------------------------------
def pack_step(round_id: int, lr: float) -> bytes:
    return _STEP.pack(round_id, lr)


def unpack_step(payload: bytes) -> Tuple[int, float]:
    try:
        round_id, lr = _STEP.unpack(payload)
    except struct.error as exc:
        raise FrameError(f"bad STEP payload: {exc}") from None
    return int(round_id), float(lr)


def unpack_step_ex(
    payload: bytes,
) -> Tuple[int, float, Optional[int], Dict[str, int]]:
    """Ops-tolerant STEP unpack: ``(round, lr, span_id, metrics)``.

    Accepts both the bare v1 12-byte payload (span ``None``, empty
    metrics) and a payload followed by an ops block.  Trailing bytes
    that are neither raise :class:`FrameError`.
    """
    if len(payload) < _STEP.size:
        raise FrameError(f"short STEP payload ({len(payload)} bytes)")
    try:
        round_id, lr = _STEP.unpack_from(payload)
    except struct.error as exc:
        raise FrameError(f"bad STEP payload: {exc}") from None
    span_id, metrics, rest = unpack_ops_prefix(payload[_STEP.size:])
    if rest:
        raise FrameError(
            f"{len(rest)} unrecognised trailing bytes after STEP payload"
        )
    return int(round_id), float(lr), span_id, metrics


# ----------------------------------------------------------------------
# ops blocks (live-ops plane): span context + metric deltas
# ----------------------------------------------------------------------
def pack_metrics(deltas: Dict[str, int]) -> bytes:
    """Encode integer metric deltas (name-sorted for determinism)."""
    items = sorted(deltas.items())
    if len(items) > 0xFFFF:
        raise FrameError(f"too many metric entries ({len(items)})")
    parts = [_METRICS_COUNT.pack(len(items))]
    for name, value in items:
        key = name.encode("utf-8")
        if not 0 < len(key) <= 255:
            raise FrameError(f"bad metric name length: {name!r}")
        parts.append(bytes((len(key),)))
        parts.append(key)
        parts.append(_METRICS_VALUE.pack(int(value)))
    return b"".join(parts)


def unpack_metrics(data: bytes) -> Dict[str, int]:
    """Decode :func:`pack_metrics` output; raises on truncation."""
    if len(data) < _METRICS_COUNT.size:
        raise FrameError(f"short metrics block ({len(data)} bytes)")
    (count,) = _METRICS_COUNT.unpack_from(data)
    offset = _METRICS_COUNT.size
    deltas: Dict[str, int] = {}
    for _ in range(count):
        if offset >= len(data):
            raise FrameError("truncated metrics block")
        key_len = data[offset]
        offset += 1
        end = offset + key_len + _METRICS_VALUE.size
        if key_len == 0 or end > len(data):
            raise FrameError("truncated metrics block")
        try:
            name = bytes(data[offset:offset + key_len]).decode("utf-8")
        except UnicodeDecodeError as exc:
            # A corrupted-in-flight block must surface as a frame
            # error so supervision rejects + retries the reply.
            raise FrameError(f"bad metric name bytes: {exc}") from None
        (value,) = _METRICS_VALUE.unpack_from(data, offset + key_len)
        deltas[name] = int(value)
        offset = end
    if offset != len(data):
        raise FrameError(
            f"{len(data) - offset} trailing bytes after metrics block"
        )
    return deltas


def pack_ops(
    span_id: Optional[int] = None, metrics: bytes = b""
) -> bytes:
    """One ops block: optional span context + optional metric bytes."""
    flags = _OPS_FLAG_SPAN if span_id is not None else 0
    return _OPS_HEADER.pack(
        _OPS_MAGIC, flags, span_id or 0, len(metrics)
    ) + metrics


def unpack_ops_prefix(
    data: bytes,
) -> Tuple[Optional[int], Dict[str, int], bytes]:
    """Peel an ops block off the front of ``data`` (tolerantly).

    Returns ``(span_id, metric_deltas, rest)``.  Bytes that do not
    open with the ops magic are returned untouched as ``rest`` — the
    bare pre-ops payload shape — so receivers parse both generations
    with one call.  A present block with a lying ``metrics_len``
    raises :class:`FrameError`.
    """
    if len(data) < OPS_HEADER_SIZE or bytes(data[:4]) != _OPS_MAGIC:
        return None, {}, data
    magic, flags, span_raw, metrics_len = _OPS_HEADER.unpack_from(data)
    end = OPS_HEADER_SIZE + metrics_len
    if end > len(data):
        raise FrameError(
            f"ops block declares {metrics_len} metric bytes, "
            f"only {len(data) - OPS_HEADER_SIZE} present"
        )
    metrics: Dict[str, int] = {}
    if metrics_len:
        metrics = unpack_metrics(data[OPS_HEADER_SIZE:end])
    span_id = int(span_raw) if flags & _OPS_FLAG_SPAN else None
    return span_id, metrics, data[end:]


def split_ops_prefix_chunks(
    chunks: Sequence[bytes],
) -> Tuple[Optional[int], Dict[str, int], List[bytes]]:
    """Chunk-list variant of :func:`unpack_ops_prefix`.

    Peels the block without joining the remaining chunks, so a
    streamed GRAD/UPDATE body stays non-contiguous end to end.
    """
    head = bytearray()
    for chunk in chunks:
        head += chunk[: OPS_HEADER_SIZE - len(head)]
        if len(head) >= OPS_HEADER_SIZE:
            break
    if len(head) < OPS_HEADER_SIZE or bytes(head[:4]) != _OPS_MAGIC:
        return None, {}, list(chunks)
    magic, flags, span_raw, metrics_len = _OPS_HEADER.unpack(bytes(head))
    block, rest = split_chunk_prefix(
        chunks, OPS_HEADER_SIZE + metrics_len
    )
    metrics: Dict[str, int] = {}
    if metrics_len:
        metrics = unpack_metrics(block[OPS_HEADER_SIZE:])
    span_id = int(span_raw) if flags & _OPS_FLAG_SPAN else None
    return span_id, metrics, rest


def pack_grad_header(
    round_id: int,
    has_batch: bool,
    loss: float,
    compute_seconds: float,
    encode_seconds: float,
    nnz: int,
) -> bytes:
    return _GRAD.pack(
        round_id, 1 if has_batch else 0, loss, compute_seconds,
        encode_seconds, nnz,
    )


def unpack_grad(payload: bytes) -> Tuple[int, bool, float, float, float, int, bytes]:
    """Split a GRAD payload into its header fields + message bytes."""
    if len(payload) < _GRAD.size:
        raise FrameError(f"short GRAD payload ({len(payload)} bytes)")
    round_id, has_batch, loss, compute_s, encode_s, nnz = _GRAD.unpack(
        payload[:_GRAD.size]
    )
    return (
        int(round_id), bool(has_batch), float(loss), float(compute_s),
        float(encode_s), int(nnz), payload[_GRAD.size:],
    )


def pack_update_header(round_id: int, lr: float) -> bytes:
    return _UPDATE.pack(round_id, lr)


def unpack_update(payload: bytes) -> Tuple[int, float, bytes]:
    """Split an UPDATE payload into ``(round, lr, message_bytes)``."""
    if len(payload) < _UPDATE.size:
        raise FrameError(f"short UPDATE payload ({len(payload)} bytes)")
    round_id, lr = _UPDATE.unpack(payload[:_UPDATE.size])
    return int(round_id), float(lr), payload[_UPDATE.size:]


def pack_ack(value: int) -> bytes:
    return _ACK.pack(value)


def unpack_ack(payload: bytes) -> int:
    try:
        (value,) = _ACK.unpack(payload)
    except struct.error as exc:
        raise FrameError(f"bad ACK payload: {exc}") from None
    return int(value)
