"""Sketch substrates: hashing, quantile sketches, frequency sketches."""

from .frequency import (
    BloomFilter,
    ConservativeCountMinSketch,
    CountMinSketch,
    CountSketch,
    SpaceSaving,
)
from .hashing import (
    HashFunction,
    MultiplyShiftHash,
    TabulationHash,
    build_hash_family,
)
from .quantile import (
    GKSummary,
    KLLSketch,
    QuantileSketch,
    TDigest,
    exact_quantiles,
    uniform_probabilities,
)

__all__ = [
    "HashFunction",
    "MultiplyShiftHash",
    "TabulationHash",
    "build_hash_family",
    "QuantileSketch",
    "GKSummary",
    "KLLSketch",
    "TDigest",
    "exact_quantiles",
    "uniform_probabilities",
    "BloomFilter",
    "ConservativeCountMinSketch",
    "CountMinSketch",
    "CountSketch",
    "SpaceSaving",
]
