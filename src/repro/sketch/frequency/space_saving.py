"""Space-Saving heavy-hitter sketch (Metwally, Agrawal, El Abbadi 2005).

Tracks the (approximately) ``k`` most frequent items of a stream in
O(k) space.  In this reproduction it powers two things:

* stream analysis of which gradient dimensions are *hot* (the Zipf-head
  features that drive message-size saturation, Fig. 11);
* the :class:`~repro.compression.hybrid.HeavyHitterSketchMLCompressor`
  extension, which sends heavy gradient coordinates exactly and pushes
  only the long tail through the sketch pipeline.

Guarantees: every item with true frequency > N/k is tracked, and each
reported count overestimates by at most the minimum counter value
(which the sketch exposes as the per-item error bound).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

__all__ = ["SpaceSaving"]


class SpaceSaving:
    """Space-Saving top-k counter.

    Args:
        capacity: number of tracked counters (``k``).

    Example:
        >>> ss = SpaceSaving(capacity=2)
        >>> ss.insert_many([1, 1, 1, 2, 3, 1])
        >>> top = ss.heavy_hitters()
        >>> top[0][0]
        1
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._counts: Dict[int, int] = {}
        self._errors: Dict[int, int] = {}
        self._total = 0

    # ------------------------------------------------------------------
    def insert(self, key: int, count: int = 1) -> None:
        if count <= 0:
            raise ValueError("count must be positive")
        key = int(key)
        self._total += count
        if key in self._counts:
            self._counts[key] += count
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = count
            self._errors[key] = 0
            return
        # Evict the minimum counter; the newcomer inherits its count as
        # potential overestimation error.
        victim = min(self._counts, key=self._counts.get)
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[key] = floor + count
        self._errors[key] = floor

    def insert_many(self, keys: Iterable[int]) -> None:
        for key in keys:
            self.insert(int(key))

    # ------------------------------------------------------------------
    def query(self, key: int) -> int:
        """Estimated count (0 if untracked; else an overestimate)."""
        return self._counts.get(int(key), 0)

    def error_bound(self, key: int) -> int:
        """Maximum overestimation of this key's count."""
        return self._errors.get(int(key), 0)

    def heavy_hitters(
        self, threshold_fraction: float = 0.0
    ) -> List[Tuple[int, int]]:
        """Tracked items with (estimated) count above the threshold.

        Args:
            threshold_fraction: report items whose estimated count
                exceeds ``threshold_fraction * N``; 0 reports every
                tracked item.

        Returns:
            ``(key, estimated_count)`` pairs, most frequent first.
        """
        if not 0.0 <= threshold_fraction <= 1.0:
            raise ValueError("threshold_fraction must be in [0, 1]")
        cutoff = threshold_fraction * self._total
        items = [
            (key, count) for key, count in self._counts.items() if count > cutoff
        ]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        return items

    def guaranteed_heavy_hitters(
        self, threshold_fraction: float
    ) -> List[Tuple[int, int]]:
        """Items *provably* above the threshold (count - error > cutoff)."""
        cutoff = threshold_fraction * self._total
        items = [
            (key, count)
            for key, count in self._counts.items()
            if count - self._errors[key] > cutoff
        ]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        return items

    # ------------------------------------------------------------------
    def merge(self, other: "SpaceSaving") -> "SpaceSaving":
        """Merge another sketch (counter union, then re-truncate)."""
        if not isinstance(other, SpaceSaving):
            raise TypeError(f"cannot merge with {type(other).__name__}")
        for key, count in other._counts.items():
            if key in self._counts:
                self._counts[key] += count
                self._errors[key] += other._errors[key]
            else:
                self._counts[key] = count
                self._errors[key] = other._errors[key]
        self._total += other._total
        # Re-truncate to capacity, dropping the smallest counters.
        if len(self._counts) > self.capacity:
            keep = sorted(self._counts, key=self._counts.get, reverse=True)
            for key in keep[self.capacity:]:
                self._counts.pop(key)
                self._errors.pop(key)
        return self

    @property
    def total_count(self) -> int:
        return self._total

    @property
    def tracked_count(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        return (
            f"SpaceSaving(capacity={self.capacity}, tracked={self.tracked_count}, "
            f"N={self._total})"
        )
