"""Frequency sketches and related multi-hash structures (§2.4)."""

from .bloom import BloomFilter
from .conservative import ConservativeCountMinSketch
from .count_min import CountMinSketch
from .count_sketch import CountSketch
from .space_saving import SpaceSaving

__all__ = [
    "BloomFilter",
    "ConservativeCountMinSketch",
    "CountMinSketch",
    "CountSketch",
    "SpaceSaving",
]
