"""Count Sketch (Charikar–Chen–Farach-Colton): signed frequency sketch.

Included as a second frequency-sketch substrate: unlike Count-Min its
error is two-sided but unbiased (each row adds ``sign(key) * count`` and
queries take the median of the signed candidates).  The paper's analysis
(§3.3) notes that all existing frequency sketches "either have both
errors or only have overestimated error" — Count Sketch is the both-
sided representative, used in tests demonstrating exactly that.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..hashing import build_hash_family

__all__ = ["CountSketch"]


class CountSketch:
    """Median-of-signed-counters frequency estimator.

    Args:
        num_rows: number of hash tables (use an odd number so the median
            is a held value).
        num_bins: bins per table.
        seed: hash family seed; the sign hashes derive from ``seed + 1``.
    """

    def __init__(self, num_rows: int = 5, num_bins: int = 1024, seed: int = 0) -> None:
        if num_rows <= 0 or num_bins <= 0:
            raise ValueError("num_rows and num_bins must be positive")
        self.num_rows = int(num_rows)
        self.num_bins = int(num_bins)
        self._bin_hashes = build_hash_family(num_rows, num_bins, seed)
        # Sign hashes map into {0, 1}; we translate to {-1, +1}.
        self._sign_hashes = build_hash_family(num_rows, 2, seed + 0x5EED)
        self._table = np.zeros((num_rows, num_bins), dtype=np.int64)
        self._total = 0

    def _signs(self, keys: np.ndarray, row: int) -> np.ndarray:
        return self._sign_hashes[row](keys) * 2 - 1

    # ------------------------------------------------------------------
    def insert(self, key: int, count: int = 1) -> None:
        keys = np.asarray([key], dtype=np.int64)
        for row in range(self.num_rows):
            b = self._bin_hashes[row](keys)[0]
            self._table[row, b] += int(self._signs(keys, row)[0]) * count
        self._total += count

    def insert_many(self, keys: Iterable[int]) -> None:
        keys = np.asarray(list(keys), dtype=np.int64)
        if keys.size == 0:
            return
        for row in range(self.num_rows):
            bins = self._bin_hashes[row](keys)
            np.add.at(self._table[row], bins, self._signs(keys, row))
        self._total += keys.size

    def query(self, key: int) -> int:
        keys = np.asarray([key], dtype=np.int64)
        candidates = [
            int(self._table[row, self._bin_hashes[row](keys)[0]])
            * int(self._signs(keys, row)[0])
            for row in range(self.num_rows)
        ]
        return int(np.median(candidates))

    def query_many(self, keys: Iterable[int]) -> np.ndarray:
        keys = np.asarray(list(keys), dtype=np.int64)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        candidates = np.empty((self.num_rows, keys.size), dtype=np.int64)
        for row in range(self.num_rows):
            bins = self._bin_hashes[row](keys)
            candidates[row] = self._table[row, bins] * self._signs(keys, row)
        return np.median(candidates, axis=0).astype(np.int64)

    # ------------------------------------------------------------------
    def merge(self, other: "CountSketch") -> "CountSketch":
        if not isinstance(other, CountSketch):
            raise TypeError(f"cannot merge with {type(other).__name__}")
        if (self.num_rows, self.num_bins) != (other.num_rows, other.num_bins):
            raise ValueError("sketch dimensions differ; cannot merge")
        self._table += other._table
        self._total += other._total
        return self

    @property
    def total_count(self) -> int:
        return self._total

    @property
    def size_bytes(self) -> int:
        return self._table.nbytes

    def __repr__(self) -> str:
        return (
            f"CountSketch(rows={self.num_rows}, bins={self.num_bins}, "
            f"N={self._total})"
        )
