"""Count-Min sketch (Cormode & Muthukrishnan 2005), as in Figure 1.

The paper contrasts its MinMaxSketch against this structure: Count-Min
*adds* on insert and takes the *minimum* on query, so its error is
one-sided (overestimation).  §3.3 argues that an additive strategy
applied to bucket indexes amplifies decoded gradients arbitrarily; we
keep Count-Min both as a faithful substrate implementation and as the
ablation baseline that demonstrates that divergence.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ..hashing import build_hash_family

__all__ = ["CountMinSketch"]


class CountMinSketch:
    """Classic Count-Min frequency sketch.

    Guarantees ``f(e) <= f̂(e) <= f(e) + eps * N`` with probability at
    least ``1 - delta`` when constructed via :meth:`from_error_bounds`.

    Args:
        num_rows: number of hash tables (``s``, depth).
        num_bins: bins per table (``t``, width).
        seed: seed for the hash family.
        hash_family: passed through to :func:`build_hash_family`.
    """

    def __init__(
        self,
        num_rows: int = 4,
        num_bins: int = 1024,
        seed: int = 0,
        hash_family: str = "multiply_shift",
    ) -> None:
        if num_rows <= 0 or num_bins <= 0:
            raise ValueError("num_rows and num_bins must be positive")
        self.num_rows = int(num_rows)
        self.num_bins = int(num_bins)
        self._hashes = build_hash_family(num_rows, num_bins, seed, hash_family)
        self._table = np.zeros((num_rows, num_bins), dtype=np.int64)
        self._total = 0

    @classmethod
    def from_error_bounds(
        cls, epsilon: float, delta: float, seed: int = 0
    ) -> "CountMinSketch":
        """Size a sketch for additive error ``eps*N`` w.p. ``1 - delta``.

        Standard sizing: ``width = ceil(e / eps)``, ``depth =
        ceil(ln(1/delta))``.
        """
        if not 0 < epsilon < 1 or not 0 < delta < 1:
            raise ValueError("epsilon and delta must be in (0, 1)")
        width = int(math.ceil(math.e / epsilon))
        depth = int(math.ceil(math.log(1.0 / delta)))
        return cls(num_rows=max(depth, 1), num_bins=width, seed=seed)

    # ------------------------------------------------------------------
    def insert(self, key: int, count: int = 1) -> None:
        """Add ``count`` occurrences of ``key``."""
        for row, h in enumerate(self._hashes):
            self._table[row, h.hash_one(key)] += count
        self._total += count

    def insert_many(self, keys: Iterable[int]) -> None:
        keys = np.asarray(list(keys), dtype=np.int64)
        if keys.size == 0:
            return
        for row, h in enumerate(self._hashes):
            bins = h(keys)
            np.add.at(self._table[row], bins, 1)
        self._total += keys.size

    def query(self, key: int) -> int:
        """Estimated frequency of ``key`` (never underestimates)."""
        return int(
            min(self._table[row, h.hash_one(key)] for row, h in enumerate(self._hashes))
        )

    def query_many(self, keys: Iterable[int]) -> np.ndarray:
        keys = np.asarray(list(keys), dtype=np.int64)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        candidates = np.empty((self.num_rows, keys.size), dtype=np.int64)
        for row, h in enumerate(self._hashes):
            candidates[row] = self._table[row, h(keys)]
        return candidates.min(axis=0)

    # ------------------------------------------------------------------
    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Merge a compatible sketch by elementwise addition."""
        self._check_compatible(other)
        self._table += other._table
        self._total += other._total
        return self

    def _check_compatible(self, other: "CountMinSketch") -> None:
        if not isinstance(other, type(self)):
            raise TypeError(f"cannot merge with {type(other).__name__}")
        if (self.num_rows, self.num_bins) != (other.num_rows, other.num_bins):
            raise ValueError("sketch dimensions differ; cannot merge")

    # ------------------------------------------------------------------
    @property
    def total_count(self) -> int:
        """Total insertions ``N``."""
        return self._total

    @property
    def size_bytes(self) -> int:
        """In-memory table size (what would travel on the wire)."""
        return self._table.nbytes

    def __repr__(self) -> str:
        return (
            f"CountMinSketch(rows={self.num_rows}, bins={self.num_bins}, "
            f"N={self._total})"
        )
