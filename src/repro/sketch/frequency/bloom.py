"""Bloom filter — the multiple-hashing membership structure of §3.3.

The paper motivates MinMaxSketch's multi-hash design by analogy to
Bloom filters ("the same strategy is also adopted in other methods such
as Bloom Filter").  We provide a production-grade implementation: it is
used by tests that validate the shared hashing substrate, and it gives
downstream users a membership primitive alongside the frequency and
quantile sketches.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ..hashing import build_hash_family

__all__ = ["BloomFilter"]


class BloomFilter:
    """Standard Bloom filter over non-negative integer keys.

    Args:
        num_bits: size of the bit array (``m``).
        num_hashes: number of hash functions (``k``).
        seed: hash family seed.
    """

    def __init__(self, num_bits: int = 8192, num_hashes: int = 4, seed: int = 0) -> None:
        if num_bits <= 0 or num_hashes <= 0:
            raise ValueError("num_bits and num_hashes must be positive")
        self.num_bits = int(num_bits)
        self.num_hashes = int(num_hashes)
        self._hashes = build_hash_family(num_hashes, num_bits, seed)
        self._bits = np.zeros(num_bits, dtype=bool)
        self._inserted = 0

    @classmethod
    def from_capacity(
        cls, capacity: int, false_positive_rate: float = 0.01, seed: int = 0
    ) -> "BloomFilter":
        """Size the filter for ``capacity`` keys at a target FP rate.

        Uses the textbook optimum ``m = -n ln p / (ln 2)^2`` and
        ``k = (m/n) ln 2``.
        """
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < false_positive_rate < 1:
            raise ValueError("false_positive_rate must be in (0, 1)")
        m = int(math.ceil(-capacity * math.log(false_positive_rate) / math.log(2) ** 2))
        k = max(1, int(round(m / capacity * math.log(2))))
        return cls(num_bits=m, num_hashes=k, seed=seed)

    # ------------------------------------------------------------------
    def add(self, key: int) -> None:
        for h in self._hashes:
            self._bits[h.hash_one(key)] = True
        self._inserted += 1

    def add_many(self, keys: Iterable[int]) -> None:
        keys = np.asarray(list(keys), dtype=np.int64)
        if keys.size == 0:
            return
        for h in self._hashes:
            self._bits[h(keys)] = True
        self._inserted += keys.size

    def __contains__(self, key: int) -> bool:
        return all(self._bits[h.hash_one(key)] for h in self._hashes)

    def contains_many(self, keys: Iterable[int]) -> np.ndarray:
        keys = np.asarray(list(keys), dtype=np.int64)
        if keys.size == 0:
            return np.empty(0, dtype=bool)
        out = np.ones(keys.size, dtype=bool)
        for h in self._hashes:
            out &= self._bits[h(keys)]
        return out

    # ------------------------------------------------------------------
    def merge(self, other: "BloomFilter") -> "BloomFilter":
        """Union with a compatible filter (bitwise OR)."""
        if not isinstance(other, BloomFilter):
            raise TypeError(f"cannot merge with {type(other).__name__}")
        if (self.num_bits, self.num_hashes) != (other.num_bits, other.num_hashes):
            raise ValueError("filter dimensions differ; cannot merge")
        self._bits |= other._bits
        self._inserted += other._inserted
        return self

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set — predicts the current FP rate."""
        return float(self._bits.mean())

    @property
    def expected_false_positive_rate(self) -> float:
        """``fill_ratio ** k``, the standard FP estimate."""
        return self.fill_ratio ** self.num_hashes

    @property
    def approximate_count(self) -> int:
        """Cardinality estimate from the fill ratio (Swamidass–Baldi)."""
        zero_frac = 1.0 - self.fill_ratio
        if zero_frac <= 0.0:
            return self._inserted
        return int(round(-self.num_bits / self.num_hashes * math.log(zero_frac)))

    def __repr__(self) -> str:
        return (
            f"BloomFilter(bits={self.num_bits}, hashes={self.num_hashes}, "
            f"fill={self.fill_ratio:.3f})"
        )
