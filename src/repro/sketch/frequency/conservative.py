"""Count-Min with conservative update (Estan & Varghese 2002).

A classical collision-mitigation variant the paper's §3.3 analysis
implicitly competes with: on insert, only the rows whose counters are
*minimal* are incremented, which provably never worsens (and usually
tightens) Count-Min's one-sided overestimation.  Its error is still
one-sided upward — so it still amplifies decoded gradients, and the
MinMaxSketch comparison benches use it to show that even the best
additive sketch keeps the failure mode SketchML's min/max protocol
eliminates.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..hashing import build_hash_family

__all__ = ["ConservativeCountMinSketch"]


class ConservativeCountMinSketch:
    """Count-Min sketch with the conservative-update insertion rule."""

    def __init__(
        self,
        num_rows: int = 4,
        num_bins: int = 1024,
        seed: int = 0,
        hash_family: str = "multiply_shift",
    ) -> None:
        if num_rows <= 0 or num_bins <= 0:
            raise ValueError("num_rows and num_bins must be positive")
        self.num_rows = int(num_rows)
        self.num_bins = int(num_bins)
        self._hashes = build_hash_family(num_rows, num_bins, seed, hash_family)
        self._table = np.zeros((num_rows, num_bins), dtype=np.int64)
        self._total = 0

    def insert(self, key: int, count: int = 1) -> None:
        """Raise only the minimal counters: new value = max(old, min+count)."""
        if count <= 0:
            raise ValueError("count must be positive")
        bins = [h.hash_one(key) for h in self._hashes]
        current = np.asarray(
            [self._table[row, b] for row, b in enumerate(bins)], dtype=np.int64
        )
        target = current.min() + count
        for row, b in enumerate(bins):
            if self._table[row, b] < target:
                self._table[row, b] = target
        self._total += count

    def insert_many(self, keys: Iterable[int]) -> None:
        for key in np.asarray(list(keys), dtype=np.int64):
            self.insert(int(key))

    def query(self, key: int) -> int:
        """Min-of-candidates estimate; never underestimates."""
        return int(
            min(self._table[row, h.hash_one(key)] for row, h in enumerate(self._hashes))
        )

    def query_many(self, keys: Iterable[int]) -> np.ndarray:
        keys = np.asarray(list(keys), dtype=np.int64)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        candidates = np.empty((self.num_rows, keys.size), dtype=np.int64)
        for row, h in enumerate(self._hashes):
            candidates[row] = self._table[row, h(keys)]
        return candidates.min(axis=0)

    @property
    def total_count(self) -> int:
        return self._total

    @property
    def size_bytes(self) -> int:
        return self._table.nbytes

    def __repr__(self) -> str:
        return (
            f"ConservativeCountMinSketch(rows={self.num_rows}, "
            f"bins={self.num_bins}, N={self._total})"
        )
