"""Seeded hash families used by every sketch in this library.

Sketch error bounds (Count-Min, MinMaxSketch, Bloom filters) assume the
hash functions of different rows are drawn independently from a pairwise
independent family.  We provide two families:

* :class:`MultiplyShiftHash` — the classic ``(a*x + b) mod p mod t``
  construction over a Mersenne prime, vectorised with numpy.  Pairwise
  independent, extremely fast, and the default everywhere.
* :class:`TabulationHash` — 4-wise-ish tabulation hashing over the four
  bytes of a 32-bit key.  Slower but with much stronger independence
  guarantees; useful when validating that a result does not depend on the
  hash family.

Both operate on non-negative integer keys (gradient dimensions) and map
them into ``[0, num_bins)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "MERSENNE_PRIME_61",
    "HashFunction",
    "MultiplyShiftHash",
    "TabulationHash",
    "build_hash_family",
]

#: 2**61 - 1, the Mersenne prime used for modular universal hashing.
MERSENNE_PRIME_61 = (1 << 61) - 1

_MAX_KEY_BITS = 32


class HashFunction:
    """Protocol-style base class for a single seeded hash function.

    Subclasses map arrays of non-negative integer keys into
    ``[0, num_bins)``.  They must be deterministic for a given seed so
    that an encoder and a decoder constructed with the same seed agree
    on every bin placement.
    """

    def __init__(self, num_bins: int, seed: int) -> None:
        if num_bins <= 0:
            raise ValueError(f"num_bins must be positive, got {num_bins}")
        self.num_bins = int(num_bins)
        self.seed = int(seed)

    def __call__(self, keys: np.ndarray) -> np.ndarray:
        """Hash an array of keys; returns an int64 array of bin indexes."""
        raise NotImplementedError

    def hash_one(self, key: int) -> int:
        """Hash a single scalar key."""
        return int(self(np.asarray([key], dtype=np.int64))[0])


class MultiplyShiftHash(HashFunction):
    """Pairwise-independent universal hash ``((a*x + b) mod p) mod t``.

    ``a`` and ``b`` are drawn from a seeded PRNG with ``a`` odd and
    nonzero, ``p`` the Mersenne prime ``2**61 - 1``.  Computation is done
    in Python-int space only at construction; the per-call path is pure
    numpy ``uint64`` arithmetic using the standard Mersenne-prime
    reduction trick, so hashing a million keys is a handful of vector ops.
    """

    def __init__(self, num_bins: int, seed: int) -> None:
        super().__init__(num_bins, seed)
        rng = np.random.default_rng(seed)
        # a in [1, p-1] and odd; b in [0, p-1]
        self._a = int(rng.integers(1, MERSENNE_PRIME_61)) | 1
        self._b = int(rng.integers(0, MERSENNE_PRIME_61))

    def __call__(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size and keys.max() >= (1 << _MAX_KEY_BITS):
            raise ValueError("keys must fit in 32 bits for MultiplyShiftHash")
        # (a * x + b) mod (2^61 - 1) without overflow: split a into high
        # and low 30-bit halves so every intermediate fits in uint64.
        a = self._a
        a_hi = np.uint64(a >> 30)
        a_lo = np.uint64(a & ((1 << 30) - 1))
        prod_lo = keys * a_lo
        prod_hi = keys * a_hi
        # a*x = prod_hi * 2^30 + prod_lo; reduce mod 2^61-1 via the
        # identity 2^61 ≡ 1 (mod p).
        combined = (
            (prod_hi << np.uint64(30)) % np.uint64(MERSENNE_PRIME_61)
            + prod_lo % np.uint64(MERSENNE_PRIME_61)
            + np.uint64(self._b)
        )
        combined %= np.uint64(MERSENNE_PRIME_61)
        return (combined % np.uint64(self.num_bins)).astype(np.int64)


class TabulationHash(HashFunction):
    """Simple tabulation hashing over the 4 bytes of a 32-bit key.

    Each byte position gets a seeded table of 256 random 64-bit words;
    the hash is the XOR of the four looked-up words, reduced mod the
    number of bins.  3-wise independent and empirically behaves like a
    fully random function for sketching workloads.
    """

    def __init__(self, num_bins: int, seed: int) -> None:
        super().__init__(num_bins, seed)
        rng = np.random.default_rng(seed)
        self._tables = rng.integers(
            0, np.iinfo(np.int64).max, size=(4, 256), dtype=np.int64
        ).astype(np.uint64)

    def __call__(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size and keys.max() >= (1 << _MAX_KEY_BITS):
            raise ValueError("keys must fit in 32 bits for TabulationHash")
        out = np.zeros(keys.shape, dtype=np.uint64)
        for byte in range(4):
            chunk = (keys >> np.uint64(8 * byte)) & np.uint64(0xFF)
            out ^= self._tables[byte][chunk.astype(np.int64)]
        return (out % np.uint64(self.num_bins)).astype(np.int64)


_FAMILIES = {
    "multiply_shift": MultiplyShiftHash,
    "tabulation": TabulationHash,
}


def build_hash_family(
    num_hashes: int,
    num_bins: int,
    seed: int,
    family: str = "multiply_shift",
) -> Sequence[HashFunction]:
    """Build ``num_hashes`` independent hash functions into ``num_bins`` bins.

    Row ``i`` is seeded deterministically from ``(seed, i)`` so that two
    sketches constructed with the same ``(num_hashes, num_bins, seed,
    family)`` — e.g. the encoder on a worker and the decoder on the
    driver — produce identical hash placements.

    Args:
        num_hashes: number of independent rows (``s`` in the paper).
        num_bins: bins per row (``t`` in the paper).
        seed: master seed.
        family: ``"multiply_shift"`` (default) or ``"tabulation"``.

    Returns:
        A list of :class:`HashFunction` instances, one per row.
    """
    if num_hashes <= 0:
        raise ValueError(f"num_hashes must be positive, got {num_hashes}")
    try:
        cls = _FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown hash family {family!r}; choose from {sorted(_FAMILIES)}"
        ) from None
    # Offset row seeds by a large odd stride so adjacent master seeds do
    # not produce overlapping row seeds.
    return [cls(num_bins, seed * 0x9E3779B1 + 0x85EBCA77 * i) for i in range(num_hashes)]
