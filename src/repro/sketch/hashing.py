"""Seeded hash families used by every sketch in this library.

Sketch error bounds (Count-Min, MinMaxSketch, Bloom filters) assume the
hash functions of different rows are drawn independently from a pairwise
independent family.  We provide two families:

* :class:`MultiplyShiftHash` — the classic ``(a*x + b) mod p mod t``
  construction over a Mersenne prime, vectorised with numpy.  Pairwise
  independent, extremely fast, and the default everywhere.
* :class:`TabulationHash` — 4-wise-ish tabulation hashing over the four
  bytes of a 32-bit key.  Slower but with much stronger independence
  guarantees; useful when validating that a result does not depend on the
  hash family.

Both operate on non-negative integer keys (gradient dimensions) and map
them into ``[0, num_bins)``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence

import numpy as np

from .. import kernels

__all__ = [
    "MERSENNE_PRIME_61",
    "HashFunction",
    "MultiplyShiftHash",
    "TabulationHash",
    "HashFamily",
    "build_hash_family",
    "hash_all_grouped",
]

#: 2**61 - 1, the Mersenne prime used for modular universal hashing.
MERSENNE_PRIME_61 = (1 << 61) - 1

_MAX_KEY_BITS = 32
_P64 = np.uint64(MERSENNE_PRIME_61)


def _mod_mersenne(x: np.ndarray) -> np.ndarray:
    """``x % (2**61 - 1)`` via the Mersenne fold — no integer division.

    Exact for any uint64 input: ``(x & p) + (x >> 61)`` is at most
    ``p + 7``, so a single conditional subtract finishes the reduction.
    Bit-identical to ``x % p`` but several times faster, which matters
    because the multiply-shift hash reduces three times per key.
    """
    x = (x & _P64) + (x >> np.uint64(61))
    np.subtract(x, _P64, out=x, where=x >= _P64)
    return x


def _fold_mersenne(x: np.ndarray) -> np.ndarray:
    """Partial Mersenne reduction: congruent to ``x`` mod p, ``<= p + 7``.

    Skips :func:`_mod_mersenne`'s conditional subtract; summands reduced
    this way stay below ``2**63`` for three terms, so the *sum* cannot
    wrap and one final exact :func:`_mod_mersenne` recovers the same
    residue the fully-reduced arithmetic would.
    """
    return (x & _P64) + (x >> np.uint64(61))


class HashFunction:
    """Protocol-style base class for a single seeded hash function.

    Subclasses map arrays of non-negative integer keys into
    ``[0, num_bins)``.  They must be deterministic for a given seed so
    that an encoder and a decoder constructed with the same seed agree
    on every bin placement.
    """

    def __init__(self, num_bins: int, seed: int) -> None:
        if num_bins <= 0:
            raise ValueError(f"num_bins must be positive, got {num_bins}")
        self.num_bins = int(num_bins)
        self.seed = int(seed)

    def __call__(self, keys: np.ndarray) -> np.ndarray:
        """Hash an array of keys; returns an int64 array of bin indexes."""
        raise NotImplementedError

    def hash_one(self, key: int) -> int:
        """Hash a single scalar key."""
        return int(self(np.asarray([key], dtype=np.int64))[0])


class MultiplyShiftHash(HashFunction):
    """Pairwise-independent universal hash ``((a*x + b) mod p) mod t``.

    ``a`` and ``b`` are drawn from a seeded PRNG with ``a`` odd and
    nonzero, ``p`` the Mersenne prime ``2**61 - 1``.  Computation is done
    in Python-int space only at construction; the per-call path is pure
    numpy ``uint64`` arithmetic using the standard Mersenne-prime
    reduction trick, so hashing a million keys is a handful of vector ops.
    """

    def __init__(self, num_bins: int, seed: int) -> None:
        super().__init__(num_bins, seed)
        rng = np.random.default_rng(seed)
        # a in [1, p-1] and odd; b in [0, p-1]
        self._a = int(rng.integers(1, MERSENNE_PRIME_61)) | 1
        self._b = int(rng.integers(0, MERSENNE_PRIME_61))

    def __call__(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size and keys.max() >= (1 << _MAX_KEY_BITS):
            raise ValueError("keys must fit in 32 bits for MultiplyShiftHash")
        # (a * x + b) mod (2^61 - 1) without overflow: split a into high
        # and low 30-bit halves so every intermediate fits in uint64.
        a = self._a
        a_hi = np.uint64(a >> 30)
        a_lo = np.uint64(a & ((1 << 30) - 1))
        prod_lo = keys * a_lo
        prod_hi = keys * a_hi
        # a*x = prod_hi * 2^30 + prod_lo; reduce mod 2^61-1 via the
        # identity 2^61 ≡ 1 (mod p).
        combined = (
            (prod_hi << np.uint64(30)) % np.uint64(MERSENNE_PRIME_61)
            + prod_lo % np.uint64(MERSENNE_PRIME_61)
            + np.uint64(self._b)
        )
        combined %= np.uint64(MERSENNE_PRIME_61)
        return (combined % np.uint64(self.num_bins)).astype(np.int64)


class TabulationHash(HashFunction):
    """Simple tabulation hashing over the 4 bytes of a 32-bit key.

    Each byte position gets a seeded table of 256 random 64-bit words;
    the hash is the XOR of the four looked-up words, reduced mod the
    number of bins.  3-wise independent and empirically behaves like a
    fully random function for sketching workloads.
    """

    def __init__(self, num_bins: int, seed: int) -> None:
        super().__init__(num_bins, seed)
        rng = np.random.default_rng(seed)
        self._tables = rng.integers(
            0, np.iinfo(np.int64).max, size=(4, 256), dtype=np.int64
        ).astype(np.uint64)

    def __call__(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size and keys.max() >= (1 << _MAX_KEY_BITS):
            raise ValueError("keys must fit in 32 bits for TabulationHash")
        out = np.zeros(keys.shape, dtype=np.uint64)
        for byte in range(4):
            chunk = (keys >> np.uint64(8 * byte)) & np.uint64(0xFF)
            out ^= self._tables[byte][chunk.astype(np.int64)]
        return (out % np.uint64(self.num_bins)).astype(np.int64)


class HashFamily(Sequence):
    """All ``s`` hash rows of one sketch, with a fused all-rows kernel.

    Behaves like the plain list of :class:`HashFunction` it used to be
    (indexing, iteration, ``len``), and adds :meth:`hash_all`, which
    computes every row's bins in one batched numpy evaluation instead
    of ``s`` Python-level calls.  ``hash_all`` is bit-identical to the
    per-row loop: it runs the same uint64 arithmetic, just broadcast
    over a ``(rows, keys)`` grid.
    """

    def __init__(self, functions: Sequence[HashFunction], num_bins: int) -> None:
        self._functions: List[HashFunction] = list(functions)
        self.num_bins = int(num_bins)
        # Pre-gather per-row parameters when every row is the same
        # concrete type, so hash_all can broadcast instead of looping.
        if all(isinstance(f, MultiplyShiftHash) for f in self._functions):
            self._kind = "multiply_shift"
            a = np.asarray([f._a for f in self._functions], dtype=np.uint64)
            # (a_hi * keys) << 30 == (a_hi << 30) * keys in uint64 wrap
            # arithmetic, so the shift is folded into the multiplier.
            self._a_hi_shifted = (a >> np.uint64(30) << np.uint64(30)).reshape(-1, 1)
            self._a_lo = (a & np.uint64((1 << 30) - 1)).reshape(-1, 1)
            self._b = np.asarray(
                [f._b for f in self._functions], dtype=np.uint64
            ).reshape(-1, 1)
        elif all(isinstance(f, TabulationHash) for f in self._functions):
            self._kind = "tabulation"
            # (rows, 4, 256) stack of per-row byte tables.
            self._tables = np.stack([f._tables for f in self._functions])
        else:
            self._kind = "mixed"

    def __len__(self) -> int:
        return len(self._functions)

    def __getitem__(self, index):
        return self._functions[index]

    def hash_all(self, keys: np.ndarray) -> np.ndarray:
        """Hash ``keys`` through every row at once.

        Returns:
            int64 array of shape ``(num_rows, keys.size)`` where row
            ``i`` equals ``self[i](keys)`` exactly.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return np.empty((len(self), 0), dtype=np.int64)
        if self._kind == "mixed" or not kernels.vectorised_enabled():
            return np.stack([h(keys) for h in self._functions])
        if keys.max() >= (1 << _MAX_KEY_BITS):
            raise ValueError("keys must fit in 32 bits")
        if self._kind == "multiply_shift":
            return _multiply_shift_grid(
                keys, self._a_hi_shifted, self._a_lo, self._b, self.num_bins
            )
        out = np.zeros((len(self), keys.size), dtype=np.uint64)
        for byte in range(4):
            chunk = ((keys >> np.uint64(8 * byte)) & np.uint64(0xFF)).astype(np.int64)
            out ^= self._tables[:, byte][:, chunk]
        return (out % np.uint64(self.num_bins)).view(np.int64)


def _multiply_shift_grid(
    keys: np.ndarray,
    a_hi_shifted: np.ndarray,
    a_lo: np.ndarray,
    b: np.ndarray,
    num_bins,
) -> np.ndarray:
    """Evaluate ``((a*x + b) mod p) mod t`` over a ``(rows, keys)`` grid.

    Identical bits to the scalar :class:`MultiplyShiftHash` arithmetic;
    the fold/reduce chain runs in place so the grid allocates three
    ``(rows, n)`` buffers instead of one per ufunc.  ``num_bins`` is a
    scalar or a per-key uint64 vector (mixed-width grouped hashing).
    """
    hi = keys[None, :] * a_hi_shifted
    lo = keys[None, :] * a_lo
    tmp = hi >> np.uint64(61)
    np.bitwise_and(hi, _P64, out=hi)
    np.add(hi, tmp, out=hi)
    np.right_shift(lo, np.uint64(61), out=tmp)
    np.bitwise_and(lo, _P64, out=lo)
    np.add(lo, tmp, out=lo)
    np.add(hi, lo, out=hi)
    np.add(hi, b, out=hi)
    np.right_shift(hi, np.uint64(61), out=tmp)
    np.bitwise_and(hi, _P64, out=hi)
    np.add(hi, tmp, out=hi)
    np.subtract(hi, _P64, out=hi, where=hi >= _P64)
    if np.ndim(num_bins) == 0:
        num_bins = np.uint64(num_bins)
    np.remainder(hi, num_bins, out=hi)
    return hi.view(np.int64)


@lru_cache(maxsize=256)
def _stacked_multiply_shift_params(families: tuple):
    """``(a_hi_shifted, a_lo, b)`` as ``(rows, groups)`` uint64 matrices."""
    return (
        np.concatenate([f._a_hi_shifted for f in families], axis=1),
        np.concatenate([f._a_lo for f in families], axis=1),
        np.concatenate([f._b for f in families], axis=1),
    )


def hash_all_grouped(
    families: Sequence["HashFamily"],
    keys: np.ndarray,
    counts: np.ndarray,
    group_ids: np.ndarray = None,
) -> np.ndarray:
    """Hash concatenated per-group keys through per-group families at once.

    ``keys`` holds every group's keys back to back (``counts[g]`` of
    them belonging to group ``g``); the result equals
    ``np.concatenate([families[g].hash_all(keys_g)], axis=1)`` exactly.
    For all-multiply-shift families the per-row parameters are gathered
    through one element-level group-id vector and the whole grid is
    hashed in a single fused evaluation — the GroupedMinMaxSketch insert
    path calls this once per sign instead of once per group.

    ``group_ids`` optionally supplies the precomputed
    ``np.repeat(np.arange(len(families)), counts)`` vector so callers
    that already materialised it (the insert scatter does) avoid a
    second expansion.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if len(families) != counts.size:
        raise ValueError("one count per family required")
    keys = np.asarray(keys, dtype=np.uint64)
    if keys.size != int(counts.sum()):
        raise ValueError("counts must sum to keys.size")
    fused = (
        kernels.vectorised_enabled()
        and all(f._kind == "multiply_shift" for f in families)
        and len({len(f) for f in families}) == 1
    )
    if not fused:
        bounds = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        return np.concatenate(
            [
                families[g].hash_all(keys[bounds[g]:bounds[g + 1]])
                for g in range(len(families))
            ],
            axis=1,
        )
    if keys.size == 0:
        return np.empty((len(families[0]), 0), dtype=np.int64)
    if keys.max() >= (1 << _MAX_KEY_BITS):
        raise ValueError("keys must fit in 32 bits")
    a_hi, a_lo, b = _stacked_multiply_shift_params(tuple(families))
    if group_ids is None:
        group_ids = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    bins = np.asarray([f.num_bins for f in families], dtype=np.uint64)
    num_bins = (
        # Per-family bin counts: gather to element level so the final
        # remainder still runs as one broadcast pass.
        int(bins[0]) if counts.size and (bins == bins[0]).all()
        else bins.take(group_ids)
    )
    return _multiply_shift_grid(
        keys,
        a_hi.take(group_ids, axis=1),
        a_lo.take(group_ids, axis=1),
        b.take(group_ids, axis=1),
        num_bins,
    )


_FAMILIES = {
    "multiply_shift": MultiplyShiftHash,
    "tabulation": TabulationHash,
}


def build_hash_family(
    num_hashes: int,
    num_bins: int,
    seed: int,
    family: str = "multiply_shift",
) -> "HashFamily":
    """Build ``num_hashes`` independent hash functions into ``num_bins`` bins.

    Row ``i`` is seeded deterministically from ``(seed, i)`` so that two
    sketches constructed with the same ``(num_hashes, num_bins, seed,
    family)`` — e.g. the encoder on a worker and the decoder on the
    driver — produce identical hash placements.

    Args:
        num_hashes: number of independent rows (``s`` in the paper).
        num_bins: bins per row (``t`` in the paper).
        seed: master seed.
        family: ``"multiply_shift"`` (default) or ``"tabulation"``.

    Returns:
        A :class:`HashFamily` (sequence of :class:`HashFunction`, one
        per row, plus the fused :meth:`HashFamily.hash_all` kernel).
        Families are stateless once built, so repeated calls with the
        same parameters return one shared cached instance — the
        encoder rebuilds a sketch per message, and reseeding numpy
        generators for every row dominated sketch construction before
        this cache.
    """
    if num_hashes <= 0:
        raise ValueError(f"num_hashes must be positive, got {num_hashes}")
    if family not in _FAMILIES:
        raise ValueError(
            f"unknown hash family {family!r}; choose from {sorted(_FAMILIES)}"
        )
    return _build_hash_family_cached(int(num_hashes), int(num_bins), int(seed), family)


@lru_cache(maxsize=1024)
def _build_hash_family_cached(
    num_hashes: int, num_bins: int, seed: int, family: str
) -> "HashFamily":
    cls = _FAMILIES[family]
    # Offset row seeds by a large odd stride so adjacent master seeds do
    # not produce overlapping row seeds.
    functions = [
        cls(num_bins, seed * 0x9E3779B1 + 0x85EBCA77 * i) for i in range(num_hashes)
    ]
    return HashFamily(functions, num_bins)
