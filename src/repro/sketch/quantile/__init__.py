"""Quantile sketches: Greenwald–Khanna and KLL (DataSketches-style).

See :mod:`repro.sketch.quantile.base` for the shared interface.
"""

from .base import QuantileSketch, exact_quantiles, uniform_probabilities
from .gk import GKSummary, GKTuple
from .kll import KLLSketch
from .tdigest import TDigest

__all__ = [
    "QuantileSketch",
    "GKSummary",
    "GKTuple",
    "KLLSketch",
    "TDigest",
    "exact_quantiles",
    "uniform_probabilities",
]
