"""Common interface for quantile sketches.

The paper (§2.3) relies on a quantile sketch with three capabilities:

* single-pass insertion of a stream of floats,
* ``query(phi)`` returning an approximate ``phi``-quantile,
* ``merge`` so per-partition sketches can be combined on the driver.

Both of our implementations (:class:`~repro.sketch.quantile.gk.GKSummary`
and :class:`~repro.sketch.quantile.kll.KLLSketch`) satisfy this
interface; SketchML's quantizer is written against it so either can be
plugged in.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

__all__ = [
    "QuantileSketch",
    "as_float_array",
    "exact_quantiles",
    "uniform_probabilities",
]


def as_float_array(values: Iterable[float]) -> np.ndarray:
    """Coerce ``values`` to a float64 array without a ``list()`` detour.

    Arrays, lists and tuples go straight through ``np.asarray``;
    arbitrary iterables (generators, ``range``) stream through
    ``np.fromiter``.
    """
    if isinstance(values, np.ndarray):
        return values.astype(np.float64, copy=False)
    if isinstance(values, (list, tuple)):
        return np.asarray(values, dtype=np.float64)
    return np.fromiter(values, dtype=np.float64)


class QuantileSketch:
    """Abstract single-pass mergeable quantile estimator."""

    def insert(self, value: float) -> None:
        """Insert one value into the sketch."""
        raise NotImplementedError

    def insert_many(self, values: Iterable[float]) -> None:
        """Insert a batch of values (default: loop over :meth:`insert`)."""
        for value in as_float_array(values):
            self.insert(float(value))

    def insert_sorted(self, values: np.ndarray) -> None:
        """Insert a batch known to be ascending (default: insert_many).

        Subclasses with a batched build path override this; the
        quantizer sorts each sign's magnitudes once and feeds every
        sketch backend through this entry point.
        """
        self.insert_many(values)

    def query(self, phi: float) -> float:
        """Return an approximate ``phi``-quantile, ``phi`` in [0, 1]."""
        raise NotImplementedError

    def query_many(self, phis: Sequence[float]) -> List[float]:
        """Query several quantiles at once."""
        return [self.query(float(phi)) for phi in phis]

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Merge ``other`` into ``self`` and return ``self``."""
        raise NotImplementedError

    def __len__(self) -> int:
        """Number of values inserted so far."""
        raise NotImplementedError

    @property
    def is_empty(self) -> bool:
        return len(self) == 0


def uniform_probabilities(q: int) -> np.ndarray:
    """The ``q + 1`` probabilities ``{0, 1/q, ..., 1}`` used for splits.

    Section 3.2 queries the sketch at q averaged quantiles plus the
    maximum, yielding ``q`` equi-depth buckets.
    """
    if q <= 0:
        raise ValueError(f"q must be positive, got {q}")
    return np.linspace(0.0, 1.0, q + 1)


def exact_quantiles(
    values: Sequence[float], phis: Sequence[float], assume_sorted: bool = False
) -> np.ndarray:
    """Exact quantiles by full sort — the O(N log N) brute force of §2.3.

    Used as ground truth in tests and for tiny inputs where a sketch is
    overkill.  Uses the "lower" interpolation so results are actual data
    points, matching sketch semantics.  Pass ``assume_sorted=True`` when
    the caller already sorted ``values`` (the quantizer sorts once and
    shares the array between this and the sketch batch builds).
    """
    arr = np.asarray(values, dtype=np.float64)
    if not assume_sorted:
        arr = np.sort(arr)
    if arr.size == 0:
        raise ValueError("cannot take quantiles of an empty sequence")
    phis = np.clip(np.asarray(phis, dtype=np.float64), 0.0, 1.0)
    idx = np.minimum((phis * arr.size).astype(np.int64), arr.size - 1)
    return arr[idx]
