"""KLL-style mergeable quantile sketch (the "Yahoo DataSketches" stand-in).

The paper uses Yahoo DataSketches' quantile sketch, whose modern
implementation is the KLL sketch (Karnin–Lang–Liberty, FOCS 2016).  This
module implements the randomized compaction scheme from that paper:

* a hierarchy of levels, level ``h`` holding items each representing
  ``2**h`` stream items;
* level capacities decaying geometrically (``k * c**depth``) with the
  top levels pinned at capacity ``k``;
* a compaction step that sorts a full level and promotes a random
  half (even- or odd-indexed items) to the level above.

With size parameter ``k = 256`` the sketch answers quantile queries
within ~1% rank error with high probability — the "99% correctness when
m = 256" contract quoted in §2.3.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from ... import kernels
from .base import QuantileSketch, as_float_array

__all__ = ["KLLSketch"]

_CAPACITY_DECAY = 2.0 / 3.0
_MIN_LEVEL_CAPACITY = 2


class KLLSketch(QuantileSketch):
    """Randomized mergeable quantile sketch with O(k log log n) space.

    Args:
        k: size parameter controlling accuracy; rank error is roughly
            ``O(1/k)``.  The paper's default sketch size of 128/256 maps
            directly onto this parameter.
        seed: PRNG seed for the randomized compaction coin flips.  Two
            sketches built with the same seed over the same stream are
            identical, which keeps tests and worker/driver pairs
            deterministic.

    Example:
        >>> sk = KLLSketch(k=256, seed=7)
        >>> sk.insert_many(np.random.default_rng(0).normal(size=100_000))
        >>> abs(sk.query(0.5)) < 0.02
        True
    """

    def __init__(self, k: int = 256, seed: int = 0) -> None:
        if k < 8:
            raise ValueError(f"k must be >= 8, got {k}")
        self.k = int(k)
        self._rng = np.random.default_rng(seed)
        self._levels: List[List[float]] = [[]]
        self._count = 0
        self._min = np.inf
        self._max = -np.inf

    # ------------------------------------------------------------------
    # capacity schedule
    # ------------------------------------------------------------------
    def _capacity(self, level: int, num_levels: Optional[int] = None) -> int:
        """Capacity of ``level``: decays geometrically from the top."""
        if num_levels is None:
            num_levels = len(self._levels)
        depth = num_levels - level - 1
        cap = int(np.ceil(self.k * (_CAPACITY_DECAY ** depth)))
        return max(cap, _MIN_LEVEL_CAPACITY)

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, value: float) -> None:
        value = float(value)
        if np.isnan(value):
            raise ValueError("cannot insert NaN into a quantile sketch")
        self._levels[0].append(value)
        self._count += 1
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if len(self._levels[0]) >= self._capacity(0):
            self._compress()

    def insert_many(self, values: Iterable[float]) -> None:
        arr = as_float_array(values)
        if arr.size == 0:
            return
        if np.isnan(arr).any():
            raise ValueError("cannot insert NaN into a quantile sketch")
        if self._count == 0:
            self.insert_sorted(np.sort(arr))
            return
        self._count += arr.size
        self._min = min(self._min, float(arr.min()))
        self._max = max(self._max, float(arr.max()))
        # Bulk path: feed level 0 in large chunks (compaction handles any
        # over-full level in one cascade), keeping the Python-level loop
        # short even when the level-0 capacity has decayed to its floor.
        chunk = max(self._capacity(0), 4 * self.k)
        for chunk_start in range(0, arr.size, chunk):
            self._levels[0].extend(arr[chunk_start:chunk_start + chunk].tolist())
            if len(self._levels[0]) >= self._capacity(0):
                self._compress()

    def insert_sorted(self, values: np.ndarray) -> None:
        """Batch-build from an ascending array: pour into level 0, cascade.

        Only a bulk load into an *empty* sketch takes the array fast
        path (the quantizer's fit case); otherwise this defers to
        :meth:`insert_many`.  Both kernel modes run the identical
        compaction control flow — one coin flip per compacted level, in
        the same order — so the retained items and therefore every
        query are bit-identical between them.
        """
        arr = as_float_array(values)
        if arr.size == 0:
            return
        if self._count != 0:
            self.insert_many(arr)
            return
        if np.isnan(arr).any():
            raise ValueError("cannot insert NaN into a quantile sketch")
        self._count = int(arr.size)
        self._min = min(self._min, float(arr[0]))
        self._max = max(self._max, float(arr[-1]))
        if not kernels.vectorised_enabled():
            self._levels = [arr.tolist()]
            if len(self._levels[0]) >= self._capacity(0):
                self._compress()
            return
        # Array mirror of _compress: same per-level capacities (computed
        # against the growing level count), same odd-straggler rule,
        # same promotion slicing.  During this single ascending cascade
        # every level only ever holds an ascending array (the sorted
        # input, or one promotion's even/odd slice of one), so the sort
        # _compress performs before compacting is a no-op here and is
        # skipped — the retained items are bit-identical.
        levels: List[np.ndarray] = [arr]
        level = 0
        while level < len(levels):
            if levels[level].size < self._capacity(level, len(levels)):
                level += 1
                continue
            items = levels[level]
            if items.size % 2 == 1:
                levels[level] = items[-1:]
                items = items[:-1]
            else:
                levels[level] = np.empty(0, dtype=np.float64)
            offset = int(self._rng.integers(0, 2))
            promoted = items[offset::2]
            if level + 1 == len(levels):
                levels.append(np.empty(0, dtype=np.float64))
            levels[level + 1] = np.concatenate([levels[level + 1], promoted])
            level += 1
        self._levels = [lvl.tolist() for lvl in levels]

    def _compress(self) -> None:
        """Compact the lowest over-full level, cascading upward."""
        level = 0
        while level < len(self._levels):
            if len(self._levels[level]) < self._capacity(level):
                level += 1
                continue
            items = sorted(self._levels[level])
            # Compact an even count only; an odd straggler stays at this
            # level so total weight is preserved exactly.
            if len(items) % 2 == 1:
                self._levels[level] = [items[-1]]
                items = items[:-1]
            else:
                self._levels[level] = []
            offset = int(self._rng.integers(0, 2))
            promoted = items[offset::2]
            if level + 1 == len(self._levels):
                self._levels.append([])
            self._levels[level + 1].extend(promoted)
            level += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _weighted_items(self) -> Tuple[np.ndarray, np.ndarray]:
        """All retained items with their level weights, sorted by value."""
        values: List[float] = []
        weights: List[int] = []
        for level, items in enumerate(self._levels):
            if items:
                values.extend(items)
                weights.extend([1 << level] * len(items))
        if not values:
            return np.empty(0), np.empty(0, dtype=np.int64)
        order = np.argsort(values, kind="stable")
        return (
            np.asarray(values, dtype=np.float64)[order],
            np.asarray(weights, dtype=np.int64)[order],
        )

    def query(self, phi: float) -> float:
        if self._count == 0:
            raise ValueError("cannot query an empty KLLSketch")
        phi = min(max(float(phi), 0.0), 1.0)
        if phi <= 0.0:
            return self._min
        if phi >= 1.0:
            return self._max
        values, weights = self._weighted_items()
        cum = np.cumsum(weights)
        target = phi * cum[-1]
        idx = int(np.searchsorted(cum, target, side="left"))
        idx = min(idx, values.size - 1)
        return float(values[idx])

    def query_many(self, phis) -> List[float]:
        if self._count == 0:
            raise ValueError("cannot query an empty KLLSketch")
        values, weights = self._weighted_items()
        cum = np.cumsum(weights)
        if not kernels.vectorised_enabled():
            out: List[float] = []
            for phi in phis:
                phi = min(max(float(phi), 0.0), 1.0)
                if phi <= 0.0:
                    out.append(self._min)
                elif phi >= 1.0:
                    out.append(self._max)
                else:
                    idx = int(np.searchsorted(cum, phi * cum[-1], side="left"))
                    out.append(float(values[min(idx, values.size - 1)]))
            return out
        phi_arr = np.clip(np.asarray(list(phis), dtype=np.float64), 0.0, 1.0)
        idx = np.minimum(
            np.searchsorted(cum, phi_arr * cum[-1], side="left"), values.size - 1
        )
        out_arr = values[idx]
        out_arr[phi_arr <= 0.0] = self._min
        out_arr[phi_arr >= 1.0] = self._max
        return out_arr.tolist()

    def rank(self, value: float) -> float:
        """Approximate fraction of inserted items ≤ ``value``."""
        if self._count == 0:
            raise ValueError("cannot query an empty KLLSketch")
        values, weights = self._weighted_items()
        total = int(weights.sum())
        below = int(weights[values <= value].sum())
        return below / total

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def merge(self, other: "KLLSketch") -> "KLLSketch":
        """Merge another KLL sketch into this one (level-wise concat)."""
        if not isinstance(other, KLLSketch):
            raise TypeError(f"cannot merge KLLSketch with {type(other).__name__}")
        if other._count == 0:
            return self
        while len(self._levels) < len(other._levels):
            self._levels.append([])
        for level, items in enumerate(other._levels):
            self._levels[level].extend(items)
        self._count += other._count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._compress()
        return self

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def retained_items(self) -> int:
        """Number of items currently held across all levels."""
        return sum(len(level) for level in self._levels)

    @property
    def num_levels(self) -> int:
        return len(self._levels)

    @property
    def min_value(self) -> float:
        return self._min

    @property
    def max_value(self) -> float:
        return self._max

    def __repr__(self) -> str:
        return (
            f"KLLSketch(k={self.k}, n={self._count}, "
            f"retained={self.retained_items}, levels={self.num_levels})"
        )
