"""t-digest quantile sketch (Dunning & Ertl).

A third quantile-sketch substrate alongside GK and KLL.  The t-digest
clusters values into centroids whose maximum weight shrinks near the
distribution's tails (governed by the scale function ``k(q) =
delta/2pi * asin(2q - 1)``), giving very accurate extreme quantiles —
useful for gradient analysis where the tails decide the value range.

Unlike GK (deterministic bounds) and KLL (randomized, mergeable with
provable space), the t-digest trades formal worst-case guarantees for
excellent practical accuracy; it is included because it is the de facto
production quantile sketch in database systems, and because plugging it
into :class:`~repro.core.quantizer.QuantileBucketQuantizer`'s interface
demonstrates that SketchML's design is sketch-agnostic.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

import numpy as np

from .base import QuantileSketch, as_float_array

__all__ = ["TDigest"]


class TDigest(QuantileSketch):
    """Merging t-digest with the asin scale function.

    Args:
        delta: compression parameter; the digest keeps O(delta)
            centroids.  100 gives ~0.1–1% rank error in the body and
            far better in the tails.
        buffer_size: unmerged values buffered before a merge pass.

    Example:
        >>> td = TDigest(delta=100)
        >>> td.insert_many(range(100_000))
        >>> abs(td.query(0.99) - 99_000) < 500
        True
    """

    def __init__(self, delta: float = 100.0, buffer_size: int = 512) -> None:
        if delta < 10:
            raise ValueError("delta must be >= 10")
        if buffer_size < 1:
            raise ValueError("buffer_size must be positive")
        self.delta = float(delta)
        self.buffer_size = int(buffer_size)
        self._means: np.ndarray = np.empty(0)
        self._weights: np.ndarray = np.empty(0)
        self._buffer: List[float] = []
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------
    def insert(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot insert NaN into a t-digest")
        self._buffer.append(value)
        self._count += 1
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if len(self._buffer) >= self.buffer_size:
            self._merge_buffer()

    def insert_many(self, values: Iterable[float]) -> None:
        arr = as_float_array(values)
        if arr.size == 0:
            return
        if np.isnan(arr).any():
            raise ValueError("cannot insert NaN into a t-digest")
        if self._count == 0:
            self.insert_sorted(np.sort(arr))
            return
        self._count += arr.size
        self._min = min(self._min, float(arr.min()))
        self._max = max(self._max, float(arr.max()))
        for start in range(0, arr.size, self.buffer_size):
            self._buffer.extend(arr[start:start + self.buffer_size].tolist())
            self._merge_buffer()

    def insert_sorted(self, values: np.ndarray) -> None:
        """Batch-build from an ascending array in one merge pass.

        Only a bulk load into an *empty* digest takes this path (the
        quantizer's fit case); otherwise it defers to
        :meth:`insert_many`.  Because a fresh build has uniform unit
        weights, each centroid's extent can be found by bisecting the
        scale-limit predicate instead of walking item by item, so the
        merge costs O(centroids * log n) predicate evaluations plus one
        segmented numpy sum — not an O(n) Python loop.
        """
        arr = as_float_array(values)
        if arr.size == 0:
            return
        if self._count != 0 or self._buffer or self._means.size:
            self.insert_many(arr)
            return
        if np.isnan(arr).any():
            raise ValueError("cannot insert NaN into a t-digest")
        n = int(arr.size)
        self._count = n
        self._min = min(self._min, float(arr[0]))
        self._max = max(self._max, float(arr[-1]))
        sizes: List[int] = []
        total = float(n)
        weight_so_far = 0.0
        k_lower = self._scale_limit(0.0)
        start = 0
        while start < n:
            remaining = n - start

            def joins(c: int) -> bool:
                # Item number ``c`` of this centroid may join when the
                # scale-limit budget still covers the grown centroid.
                q_upper = (weight_so_far + c) / total
                return self._scale_limit(q_upper) - k_lower <= 1.0

            if remaining == 1 or not joins(2):
                size = 1
            else:
                lo, hi = 2, remaining
                while lo < hi:  # largest c with joins(c)
                    mid = (lo + hi + 1) // 2
                    if joins(mid):
                        lo = mid
                    else:
                        hi = mid - 1
                size = lo
            sizes.append(size)
            start += size
            weight_so_far += float(size)
            k_lower = self._scale_limit(weight_so_far / total)
        counts = np.asarray(sizes, dtype=np.float64)
        starts = np.zeros(len(sizes), dtype=np.int64)
        np.cumsum(np.asarray(sizes[:-1], dtype=np.int64), out=starts[1:])
        self._means = np.add.reduceat(arr, starts) / counts
        self._weights = counts

    # ------------------------------------------------------------------
    def _scale_limit(self, q: float) -> float:
        """k(q): the asin scale function, tighter near 0 and 1."""
        q = min(max(q, 0.0), 1.0)
        return self.delta / (2.0 * math.pi) * math.asin(2.0 * q - 1.0)

    def _merge_buffer(self) -> None:
        if not self._buffer:
            return
        means = np.concatenate([self._means, np.asarray(self._buffer)])
        weights = np.concatenate(
            [self._weights, np.ones(len(self._buffer), dtype=np.float64)]
        )
        self._buffer.clear()
        self._means, self._weights = self._compress(means, weights)

    def _compress(
        self, means: np.ndarray, weights: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One merge pass over (possibly unsorted) centroids."""
        order = np.argsort(means, kind="stable")
        means = means[order]
        weights = weights[order]
        total = weights.sum()

        merged_means: List[float] = [float(means[0])]
        merged_weights: List[float] = [float(weights[0])]
        weight_so_far = 0.0
        k_lower = self._scale_limit(0.0)
        for mean, weight in zip(means[1:], weights[1:]):
            candidate = merged_weights[-1] + weight
            q_upper = (weight_so_far + candidate) / total
            if self._scale_limit(q_upper) - k_lower <= 1.0:
                # Merge into the current centroid.
                merged_means[-1] += (mean - merged_means[-1]) * weight / candidate
                merged_weights[-1] = candidate
            else:
                weight_so_far += merged_weights[-1]
                k_lower = self._scale_limit(weight_so_far / total)
                merged_means.append(float(mean))
                merged_weights.append(float(weight))
        return np.asarray(merged_means), np.asarray(merged_weights)

    # ------------------------------------------------------------------
    def query(self, phi: float) -> float:
        if self._count == 0:
            raise ValueError("cannot query an empty TDigest")
        self._merge_buffer()
        phi = min(max(float(phi), 0.0), 1.0)
        if phi <= 0.0:
            return self._min
        if phi >= 1.0:
            return self._max
        target = phi * self._weights.sum()
        cumulative = np.cumsum(self._weights) - self._weights / 2.0
        idx = int(np.searchsorted(cumulative, target))
        if idx == 0:
            return float(self._means[0])
        if idx >= self._means.size:
            return float(self._means[-1])
        # Linear interpolation between neighbouring centroids, clamped
        # to the observed range (incremental mean updates can drift by
        # an ulp past the true extremes).
        left_c, right_c = cumulative[idx - 1], cumulative[idx]
        fraction = (target - left_c) / max(right_c - left_c, 1e-12)
        estimate = self._means[idx - 1] + fraction * (
            self._means[idx] - self._means[idx - 1]
        )
        return float(min(max(estimate, self._min), self._max))

    def rank(self, value: float) -> float:
        """Approximate CDF at ``value``."""
        if self._count == 0:
            raise ValueError("cannot query an empty TDigest")
        self._merge_buffer()
        below = self._weights[self._means <= value].sum()
        return float(below / self._weights.sum())

    # ------------------------------------------------------------------
    def merge(self, other: "TDigest") -> "TDigest":
        if not isinstance(other, TDigest):
            raise TypeError(f"cannot merge TDigest with {type(other).__name__}")
        if other._count == 0:
            return self
        other._merge_buffer()
        self._merge_buffer()
        self._means, self._weights = self._compress(
            np.concatenate([self._means, other._means]),
            np.concatenate([self._weights, other._weights]),
        )
        self._count += other._count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def num_centroids(self) -> int:
        self._merge_buffer()
        return int(self._means.size)

    @property
    def min_value(self) -> float:
        return self._min

    @property
    def max_value(self) -> float:
        return self._max

    def __repr__(self) -> str:
        return (
            f"TDigest(delta={self.delta}, n={self._count}, "
            f"centroids={self.num_centroids})"
        )
