"""Greenwald–Khanna ε-approximate quantile summary (SIGMOD 2001).

This is the "GK algorithm" the paper cites as the classical quantile
sketch (§2.3): a summary ``S(n, k)`` of tuples ``(v, g, Δ)`` kept in
value order, where for tuple ``i``

* ``v_i`` is a value seen in the stream,
* ``g_i = rmin(v_i) - rmin(v_{i-1})``,
* ``Δ_i = rmax(v_i) - rmin(v_i)``,

and the invariant ``g_i + Δ_i <= 2 ε n`` guarantees any rank query is
answered within ``ε n``.

The implementation follows the original paper: inserts place a new tuple
with ``Δ = floor(2 ε n) `` (0 for stream extremes), and a periodic
COMPRESS pass merges tuples whose combined uncertainty still fits the
invariant.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ... import kernels
from .base import QuantileSketch, as_float_array

__all__ = ["GKSummary", "GKTuple"]


@dataclass
class GKTuple:
    """One summary tuple ``(value, g, delta)`` of the GK structure."""

    value: float
    g: int
    delta: int


class GKSummary(QuantileSketch):
    """Greenwald–Khanna summary with rank error at most ``epsilon * n``.

    Args:
        epsilon: target rank-error fraction.  Space is
            O((1/ε) log(εn)); ``epsilon=0.01`` keeps a few hundred
            tuples for millions of inserts.

    Example:
        >>> gk = GKSummary(epsilon=0.01)
        >>> gk.insert_many(range(10000))
        >>> abs(gk.query(0.5) - 5000) < 200
        True
    """

    def __init__(self, epsilon: float = 0.01) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = float(epsilon)
        self._tuples: List[GKTuple] = []
        self._values: List[float] = []  # parallel sorted list for bisect
        self._count = 0
        self._inserts_since_compress = 0
        # COMPRESS every ~1/(2ε) inserts, as in the original paper.
        self._compress_interval = max(int(1.0 / (2.0 * self.epsilon)), 1)
        # Lazily rebuilt query acceleration arrays (cumulative g and
        # per-tuple delta); any mutation drops them.
        self._rank_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def _invalidate(self) -> None:
        self._rank_cache = None

    def _rank_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(cumulative g, delta)`` int64 arrays over the tuples."""
        if self._rank_cache is None:
            cum_g = np.cumsum(
                np.fromiter(
                    (t.g for t in self._tuples), dtype=np.int64, count=len(self._tuples)
                )
            )
            deltas = np.fromiter(
                (t.delta for t in self._tuples), dtype=np.int64, count=len(self._tuples)
            )
            self._rank_cache = (cum_g, deltas)
        return self._rank_cache

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, value: float) -> None:
        value = float(value)
        if np.isnan(value):
            raise ValueError("cannot insert NaN into a quantile summary")
        idx = bisect.bisect_left(self._values, value)
        if idx == 0 or idx == len(self._tuples):
            # new minimum or maximum: exact rank, delta = 0
            delta = 0
        else:
            delta = int(2.0 * self.epsilon * self._count)
        self._tuples.insert(idx, GKTuple(value, 1, delta))
        self._values.insert(idx, value)
        self._count += 1
        self._invalidate()
        self._inserts_since_compress += 1
        if self._inserts_since_compress >= self._compress_interval:
            self._compress()
            self._inserts_since_compress = 0

    def insert_many(self, values: Iterable[float]) -> None:
        arr = as_float_array(values)
        if arr.size == 0:
            return
        if np.isnan(arr).any():
            raise ValueError("cannot insert NaN into a quantile summary")
        if self._count == 0:
            self.insert_sorted(np.sort(arr))
            return
        for value in arr:
            self.insert(float(value))

    def insert_sorted(self, values: np.ndarray) -> None:
        """Batch-build from an ascending array: tuple array + one COMPRESS.

        Only valid as a bulk load into an empty summary (the quantizer's
        fit path); a non-empty summary falls back to per-value inserts.
        Every value enters with exact rank (``g = 1``, ``Δ = 0``) and a
        single COMPRESS pass restores the ``2 ε n`` space bound, so the
        result is at least as accurate as the incremental stream build.
        """
        arr = as_float_array(values)
        if arr.size == 0:
            return
        if self._count != 0:
            for value in arr:
                self.insert(float(value))
            return
        if np.isnan(arr).any():
            raise ValueError("cannot insert NaN into a quantile summary")
        n = int(arr.size)
        self._count = n
        self._inserts_since_compress = 0
        self._invalidate()
        threshold = int(2.0 * self.epsilon * n)
        if not kernels.vectorised_enabled():
            self._tuples = [GKTuple(float(v), 1, 0) for v in arr]
            self._values = [t.value for t in self._tuples]
            self._compress()
            return
        # Closed form of the single COMPRESS pass over uniform tuples
        # (g = 1, Δ = 0): the greedy fold keeps the first tuple, then
        # every ``threshold``-th tuple (each absorbing the fold weight
        # of its predecessors), then the last tuple with the leftover
        # weight.  Verified bit-identical to the scalar pass by the
        # golden-equivalence tests.
        if n < 3 or threshold < 2:
            kept = np.arange(n, dtype=np.int64)
            gs = np.ones(n, dtype=np.int64)
        else:
            interior = np.arange(threshold, n - 1, threshold, dtype=np.int64)
            kept = np.concatenate(([0], interior, [n - 1]))
            last_g = n - 1 - (int(interior[-1]) if interior.size else 0)
            gs = np.concatenate(
                ([1], np.full(interior.size, threshold, dtype=np.int64), [last_g])
            )
        kept_values = arr[kept]
        self._tuples = [
            GKTuple(float(v), int(g), 0) for v, g in zip(kept_values, gs)
        ]
        self._values = kept_values.tolist()

    def _compress(self) -> None:
        """Merge adjacent tuples whose combined error fits ``2 ε n``."""
        self._invalidate()
        if len(self._tuples) < 3:
            return
        threshold = int(2.0 * self.epsilon * self._count)
        merged: List[GKTuple] = [self._tuples[0]]
        # Never merge into the last tuple's slot from the right; iterate
        # middle tuples and fold them into their successor when allowed.
        for i in range(1, len(self._tuples) - 1):
            cur = self._tuples[i]
            nxt = self._tuples[i + 1]
            if cur.g + nxt.g + nxt.delta <= threshold:
                nxt.g += cur.g  # fold cur into nxt
            else:
                merged.append(cur)
        merged.append(self._tuples[-1])
        self._tuples = merged
        self._values = [t.value for t in merged]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, phi: float) -> float:
        if self._count == 0:
            raise ValueError("cannot query an empty GKSummary")
        phi = min(max(float(phi), 0.0), 1.0)
        target_rank = phi * self._count
        bound = self.epsilon * self._count
        if not kernels.vectorised_enabled():
            rmin = 0
            for t in self._tuples:
                rmin += t.g
                rmax = rmin + t.delta
                if target_rank - rmin <= bound and rmax - target_rank <= bound:
                    return t.value
            return self._tuples[-1].value
        cum_g, deltas = self._rank_arrays()
        # The scalar scan returns the first tuple satisfying both rank
        # conditions; the rmin condition is monotone (true on a suffix),
        # so locate that suffix by bisection, then nudge with the exact
        # scalar predicate to stay bit-compatible with the loop above.
        i = int(np.searchsorted(cum_g, target_rank - bound, side="left"))
        while i > 0 and target_rank - float(cum_g[i - 1]) <= bound:
            i -= 1
        while i < len(cum_g) and target_rank - float(cum_g[i]) > bound:
            i += 1
        for j in range(i, len(cum_g)):
            if float(cum_g[j] + deltas[j]) - target_rank <= bound:
                return self._tuples[j].value
        return self._tuples[-1].value

    def rank(self, value: float) -> int:
        """Approximate rank (number of inserted items ≤ ``value``)."""
        if not kernels.vectorised_enabled():
            rmin = 0
            last_below = 0
            for t in self._tuples:
                rmin += t.g
                if t.value <= value:
                    last_below = rmin
                else:
                    break
            return last_below
        # Tuples are value-ordered, so the scan's break point is a plain
        # bisection over the parallel ``_values`` list.
        j = bisect.bisect_right(self._values, value)
        if j == 0:
            return 0
        return int(self._rank_arrays()[0][j - 1])

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def merge(self, other: "GKSummary") -> "GKSummary":
        """Merge another GK summary into this one.

        Uses the standard merge-then-compress construction: the tuple
        lists are interleaved in value order (g and delta carry over),
        after which a COMPRESS pass restores the space bound.  The
        resulting rank error is bounded by the sum of the two errors.
        """
        if not isinstance(other, GKSummary):
            raise TypeError(f"cannot merge GKSummary with {type(other).__name__}")
        if other._count == 0:
            return self
        if self._count == 0:
            self._tuples = [GKTuple(t.value, t.g, t.delta) for t in other._tuples]
            self._values = list(other._values)
            self._count = other._count
            self._invalidate()
            return self
        combined: List[GKTuple] = []
        i = j = 0
        a, b = self._tuples, other._tuples
        while i < len(a) and j < len(b):
            if a[i].value <= b[j].value:
                combined.append(a[i])
                i += 1
            else:
                combined.append(GKTuple(b[j].value, b[j].g, b[j].delta))
                j += 1
        combined.extend(a[i:])
        combined.extend(GKTuple(t.value, t.g, t.delta) for t in b[j:])
        self._tuples = combined
        self._count += other._count
        self._values = [t.value for t in combined]
        self._compress()
        return self

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def num_tuples(self) -> int:
        """Current size of the summary (``k`` in ``S(n, k)``)."""
        return len(self._tuples)

    def __repr__(self) -> str:
        return (
            f"GKSummary(epsilon={self.epsilon}, n={self._count}, "
            f"tuples={self.num_tuples})"
        )
