"""Greenwald–Khanna ε-approximate quantile summary (SIGMOD 2001).

This is the "GK algorithm" the paper cites as the classical quantile
sketch (§2.3): a summary ``S(n, k)`` of tuples ``(v, g, Δ)`` kept in
value order, where for tuple ``i``

* ``v_i`` is a value seen in the stream,
* ``g_i = rmin(v_i) - rmin(v_{i-1})``,
* ``Δ_i = rmax(v_i) - rmin(v_i)``,

and the invariant ``g_i + Δ_i <= 2 ε n`` guarantees any rank query is
answered within ``ε n``.

The implementation follows the original paper: inserts place a new tuple
with ``Δ = floor(2 ε n) `` (0 for stream extremes), and a periodic
COMPRESS pass merges tuples whose combined uncertainty still fits the
invariant.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from .base import QuantileSketch

__all__ = ["GKSummary", "GKTuple"]


@dataclass
class GKTuple:
    """One summary tuple ``(value, g, delta)`` of the GK structure."""

    value: float
    g: int
    delta: int


class GKSummary(QuantileSketch):
    """Greenwald–Khanna summary with rank error at most ``epsilon * n``.

    Args:
        epsilon: target rank-error fraction.  Space is
            O((1/ε) log(εn)); ``epsilon=0.01`` keeps a few hundred
            tuples for millions of inserts.

    Example:
        >>> gk = GKSummary(epsilon=0.01)
        >>> gk.insert_many(range(10000))
        >>> abs(gk.query(0.5) - 5000) < 200
        True
    """

    def __init__(self, epsilon: float = 0.01) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = float(epsilon)
        self._tuples: List[GKTuple] = []
        self._values: List[float] = []  # parallel sorted list for bisect
        self._count = 0
        self._inserts_since_compress = 0
        # COMPRESS every ~1/(2ε) inserts, as in the original paper.
        self._compress_interval = max(int(1.0 / (2.0 * self.epsilon)), 1)

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, value: float) -> None:
        value = float(value)
        if np.isnan(value):
            raise ValueError("cannot insert NaN into a quantile summary")
        idx = bisect.bisect_left(self._values, value)
        if idx == 0 or idx == len(self._tuples):
            # new minimum or maximum: exact rank, delta = 0
            delta = 0
        else:
            delta = int(2.0 * self.epsilon * self._count)
        self._tuples.insert(idx, GKTuple(value, 1, delta))
        self._values.insert(idx, value)
        self._count += 1
        self._inserts_since_compress += 1
        if self._inserts_since_compress >= self._compress_interval:
            self._compress()
            self._inserts_since_compress = 0

    def insert_many(self, values: Iterable[float]) -> None:
        for value in np.asarray(list(values), dtype=np.float64):
            self.insert(float(value))

    def _compress(self) -> None:
        """Merge adjacent tuples whose combined error fits ``2 ε n``."""
        if len(self._tuples) < 3:
            return
        threshold = int(2.0 * self.epsilon * self._count)
        merged: List[GKTuple] = [self._tuples[0]]
        # Never merge into the last tuple's slot from the right; iterate
        # middle tuples and fold them into their successor when allowed.
        for i in range(1, len(self._tuples) - 1):
            cur = self._tuples[i]
            nxt = self._tuples[i + 1]
            if cur.g + nxt.g + nxt.delta <= threshold:
                nxt.g += cur.g  # fold cur into nxt
            else:
                merged.append(cur)
        merged.append(self._tuples[-1])
        self._tuples = merged
        self._values = [t.value for t in merged]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, phi: float) -> float:
        if self._count == 0:
            raise ValueError("cannot query an empty GKSummary")
        phi = min(max(float(phi), 0.0), 1.0)
        target_rank = phi * self._count
        bound = self.epsilon * self._count
        rmin = 0
        for t in self._tuples:
            rmin += t.g
            rmax = rmin + t.delta
            if target_rank - rmin <= bound and rmax - target_rank <= bound:
                return t.value
        return self._tuples[-1].value

    def rank(self, value: float) -> int:
        """Approximate rank (number of inserted items ≤ ``value``)."""
        rmin = 0
        last_below = 0
        for t in self._tuples:
            rmin += t.g
            if t.value <= value:
                last_below = rmin
            else:
                break
        return last_below

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def merge(self, other: "GKSummary") -> "GKSummary":
        """Merge another GK summary into this one.

        Uses the standard merge-then-compress construction: the tuple
        lists are interleaved in value order (g and delta carry over),
        after which a COMPRESS pass restores the space bound.  The
        resulting rank error is bounded by the sum of the two errors.
        """
        if not isinstance(other, GKSummary):
            raise TypeError(f"cannot merge GKSummary with {type(other).__name__}")
        if other._count == 0:
            return self
        if self._count == 0:
            self._tuples = [GKTuple(t.value, t.g, t.delta) for t in other._tuples]
            self._values = list(other._values)
            self._count = other._count
            return self
        combined: List[GKTuple] = []
        i = j = 0
        a, b = self._tuples, other._tuples
        while i < len(a) and j < len(b):
            if a[i].value <= b[j].value:
                combined.append(a[i])
                i += 1
            else:
                combined.append(GKTuple(b[j].value, b[j].g, b[j].delta))
                j += 1
        combined.extend(a[i:])
        combined.extend(GKTuple(t.value, t.g, t.delta) for t in b[j:])
        self._tuples = combined
        self._count += other._count
        self._values = [t.value for t in combined]
        self._compress()
        return self

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def num_tuples(self) -> int:
        """Current size of the summary (``k`` in ``S(n, k)``)."""
        return len(self._tuples)

    def __repr__(self) -> str:
        return (
            f"GKSummary(epsilon={self.epsilon}, n={self._count}, "
            f"tuples={self.num_tuples})"
        )
