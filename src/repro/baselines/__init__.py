"""Non-distributed baselines (Figure 12's single-node comparison)."""

from .single_node import SingleNodeConfig, SingleNodeTrainer

__all__ = ["SingleNodeConfig", "SingleNodeTrainer"]
