"""Serial single-node trainer — the SkLearn stand-in for Figure 12.

Appendix B.1 compares SketchML on 5/10 machines against scikit-learn on
one machine.  The relevant structural facts are: no network at all, one
machine's compute, plus a data-loading phase that dominates for large
files ("SkLearn consumes more than ten minutes to load the dataset").
We model loading as a throughput term over the dataset's in-memory
size, matching the 5× loading speedup the paper reports when the file
is split across five machines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..distributed.metrics import EpochRecord, TrainingHistory
from ..models.base import Model
from ..optim.optimizers import Optimizer

__all__ = ["SingleNodeConfig", "SingleNodeTrainer"]


@dataclass(frozen=True)
class SingleNodeConfig:
    """Configuration of a serial run.

    Attributes:
        batch_fraction: mini-batch fraction of the train set.
        epochs: passes over the data.
        seed: batch shuffle seed.
        disk_bytes_per_sec: modelled data-loading throughput; the load
            time ``dataset_bytes / disk_bytes_per_sec`` is charged to
            the first epoch (None disables it).
        compute_seconds_per_nnz: modelled compute time per batch
            nonzero, same calibration knob as
            :class:`~repro.distributed.trainer.TrainerConfig` — the
            serial trainer pays it for *every* nonzero, which is
            exactly why the distributed runs of Fig. 12 win.
    """

    batch_fraction: float = 0.1
    epochs: int = 10
    seed: int = 0
    disk_bytes_per_sec: Optional[float] = 8e6
    compute_seconds_per_nnz: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.batch_fraction <= 1.0:
            raise ValueError("batch_fraction must be in (0, 1]")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.disk_bytes_per_sec is not None and self.disk_bytes_per_sec <= 0:
            raise ValueError("disk_bytes_per_sec must be positive")
        if self.compute_seconds_per_nnz < 0:
            raise ValueError("compute_seconds_per_nnz must be non-negative")


class SingleNodeTrainer:
    """Mini-batch SGD on one machine, no compression, no network."""

    def __init__(
        self,
        model: Model,
        optimizer: Optimizer,
        config: Optional[SingleNodeConfig] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.config = config or SingleNodeConfig()

    def _dataset_bytes(self, dataset) -> int:
        """In-memory size proxy for the load-time model (12 B per nnz)."""
        return 12 * dataset.nnz

    def train(self, train_dataset, test_dataset=None) -> TrainingHistory:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        theta = self.model.init_theta()
        self.optimizer.prepare(self.model.num_parameters)
        history = TrainingHistory(
            method="single-node", model=self.model.name, num_workers=1
        )
        batch_size = max(1, int(round(train_dataset.num_rows * cfg.batch_fraction)))
        load_seconds = 0.0
        if cfg.disk_bytes_per_sec is not None:
            load_seconds = self._dataset_bytes(train_dataset) / cfg.disk_bytes_per_sec
        for epoch in range(cfg.epochs):
            compute = load_seconds if epoch == 0 else 0.0
            loss_sum = 0.0
            loss_count = 0
            for rows in train_dataset.iter_batches(batch_size, rng):
                t0 = time.perf_counter()
                keys, values, loss = self.model.batch_gradient(
                    train_dataset, rows, theta
                )
                if keys.size:
                    self.optimizer.step(theta, keys, values)
                compute += time.perf_counter() - t0
                batch_nnz = int(
                    (train_dataset.indptr[rows + 1] - train_dataset.indptr[rows]).sum()
                )
                compute += cfg.compute_seconds_per_nnz * batch_nnz
                loss_sum += loss
                loss_count += 1
            record = EpochRecord(
                epoch=epoch,
                compute_seconds=compute,
                network_seconds=0.0,
                encode_seconds=0.0,
                decode_seconds=0.0,
                train_loss=loss_sum / loss_count if loss_count else float("nan"),
                test_loss=None,
                bytes_sent=0,
                raw_bytes=0,
                num_messages=0,
                gradient_nnz=0.0,
            )
            if test_dataset is not None:
                record.test_loss = self.model.full_loss(test_dataset, theta)
            history.append(record)
        self._theta = theta
        return history

    @property
    def theta(self) -> np.ndarray:
        if not hasattr(self, "_theta"):
            raise RuntimeError("train() has not been run yet")
        return self._theta
