"""The flight-recorder event schema (``repro-trace/1``) and validators.

Every line of a trace file is one JSON object — an *event*.  The
schema is deliberately flat (no nesting beyond the optional ``attrs``
bag) so traces stream through line-oriented tools, and deliberately
stable: consumers pin on ``schema = "repro-trace/1"`` in the leading
``meta`` event of each process and the field tables below.

Common fields (every event):

======== ======= ====================================================
field    type    meaning
======== ======= ====================================================
``type`` str     one of :data:`EVENT_TYPES`
``ts``   float   unix wall-clock seconds (comparable across processes)
``pid``  int     emitting OS process id
``seq``  int     per-process sequence number, strictly increasing
======== ======= ====================================================

Ambient context fields (optional on every event; omitted when unset):

``run`` (str), ``worker`` (int), ``epoch`` (int), ``round`` (int),
``phase`` (str).

Per-type fields:

* ``meta`` — first event of every process file.  Required:
  ``schema`` (== :data:`SCHEMA`), ``source`` (``"driver"`` or
  ``"worker"``).
* ``span`` — required ``name`` (dotted, e.g. ``codec.compress``) and
  ``dur`` (float seconds, >= 0); ``ts`` is the span *start*.  Optional
  ``attrs``, and (since the live-ops plane) optional causal ids:
  ``span`` (int, unique per process) and ``parent`` (int, the opening
  span id of the causally enclosing span — possibly one propagated
  over the wire from another process).
* ``span_open`` — emitted at span *entry* when causal ids are in use:
  required ``name`` and ``span`` (int); optional ``parent``.  Every
  ``span_open`` must be matched by a ``span`` close carrying the same
  id — a trace with unmatched opens is a truncated flight (e.g. a
  killed worker) and fails :func:`validate_trace`.  Closes without a
  prior open stay valid, so pre-ops traces (no ``span_open`` events at
  all) remain schema-clean.
* ``measure`` — an accounting sample: required ``name``, ``value``
  (float); optional ``unit``.  Per-epoch sums of ``trainer.*``
  measures reproduce the ``EpochRecord`` timing fields exactly.
* ``counter`` — required ``name``, ``value`` (int increment).
* ``gauge`` / ``hist`` — required ``name``, ``value`` (number): a
  point-in-time level / one histogram observation.
* ``event`` — a discrete occurrence (retry, fault injection, worker
  lost): required ``name``; optional ``attrs``.

All multi-byte serialization in this package is JSON text (UTF-8) —
there is deliberately no struct/dtype packing here, and the wire lint
rules (``wire-format``, ``wire-endianness``) police that this stays
true.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "SCHEMA",
    "EVENT_TYPES",
    "CONTEXT_FIELDS",
    "TraceSchemaError",
    "validate_event",
    "validate_trace",
]

SCHEMA = "repro-trace/1"

EVENT_TYPES = (
    "meta",
    "span",
    "span_open",
    "measure",
    "counter",
    "gauge",
    "hist",
    "event",
)

#: Optional ambient-context fields and their required types.
CONTEXT_FIELDS: Dict[str, type] = {
    "run": str,
    "worker": int,
    "epoch": int,
    "round": int,
    "phase": str,
}

_SOURCES = ("driver", "worker")


class TraceSchemaError(ValueError):
    """An event (or a whole trace) violates ``repro-trace/1``."""


def _require(event: Dict[str, object], field: str, types) -> object:
    if field not in event:
        raise TraceSchemaError(f"event missing required field {field!r}: {event}")
    value = event[field]
    if not isinstance(value, types) or isinstance(value, bool):
        raise TraceSchemaError(
            f"field {field!r} must be {types}, got {type(value).__name__}"
        )
    return value


def validate_event(event: Dict[str, object]) -> None:
    """Raise :class:`TraceSchemaError` unless ``event`` is schema-valid."""
    if not isinstance(event, dict):
        raise TraceSchemaError(f"event must be a JSON object, got {type(event)}")
    etype = _require(event, "type", str)
    if etype not in EVENT_TYPES:
        raise TraceSchemaError(f"unknown event type {etype!r}")
    _require(event, "ts", (int, float))
    _require(event, "pid", int)
    seq = _require(event, "seq", int)
    if seq < 0:
        raise TraceSchemaError(f"seq must be >= 0, got {seq}")
    for field, ftype in CONTEXT_FIELDS.items():
        if field in event and (
            not isinstance(event[field], ftype) or isinstance(event[field], bool)
        ):
            raise TraceSchemaError(
                f"context field {field!r} must be {ftype.__name__}"
            )
    if etype == "meta":
        schema = _require(event, "schema", str)
        if schema != SCHEMA:
            raise TraceSchemaError(
                f"unsupported trace schema {schema!r} (expected {SCHEMA!r})"
            )
        source = _require(event, "source", str)
        if source not in _SOURCES:
            raise TraceSchemaError(f"meta source must be one of {_SOURCES}")
        return
    name = _require(event, "name", str)
    if not name:
        raise TraceSchemaError("event name must be non-empty")
    if etype == "span":
        dur = _require(event, "dur", (int, float))
        if dur < 0:
            raise TraceSchemaError(f"span dur must be >= 0, got {dur}")
        for field in ("span", "parent"):
            if field in event and (
                not isinstance(event[field], int)
                or isinstance(event[field], bool)
            ):
                raise TraceSchemaError(f"span field {field!r} must be an int")
    elif etype == "span_open":
        _require(event, "span", int)
        if "parent" in event and (
            not isinstance(event["parent"], int)
            or isinstance(event["parent"], bool)
        ):
            raise TraceSchemaError("span_open parent must be an int")
    elif etype == "measure":
        _require(event, "value", (int, float))
        if "unit" in event and not isinstance(event["unit"], str):
            raise TraceSchemaError("measure unit must be a string")
    elif etype == "counter":
        _require(event, "value", int)
    elif etype in ("gauge", "hist"):
        _require(event, "value", (int, float))
    if "attrs" in event and not isinstance(event["attrs"], dict):
        raise TraceSchemaError("attrs must be a JSON object")


def validate_trace(
    events: Iterable[Dict[str, object]],
) -> Dict[str, object]:
    """Validate a whole (merged or per-process) trace.

    Checks every event individually, plus the cross-event invariants:
    each process contributes exactly one ``meta`` header carrying
    ``seq == 0`` (so it is that process's first emission), and per-pid
    sequence numbers never repeat.  Strict *file-order* monotonicity is
    deliberately not required: spans are emitted on exit but
    timestamped at their start, so a ``(ts, pid, seq)`` merge-sort
    legally interleaves a parent span (early ``ts``, late ``seq``)
    before its children.

    Returns:
        summary stats: ``{"events": n, "processes": p, "types": {...}}``.
    """
    seen_seq: Dict[int, set] = {}
    meta_pids: set = set()
    type_counts: Dict[str, int] = {}
    opened: Dict[int, set] = {}
    closed: Dict[int, set] = {}
    count = 0
    for event in events:
        validate_event(event)
        count += 1
        etype = str(event["type"])
        type_counts[etype] = type_counts.get(etype, 0) + 1
        pid = int(event["pid"])  # type: ignore[arg-type]
        seq = int(event["seq"])  # type: ignore[arg-type]
        if etype == "span_open":
            opened.setdefault(pid, set()).add(int(event["span"]))  # type: ignore[arg-type]
        elif etype == "span" and "span" in event:
            closed.setdefault(pid, set()).add(int(event["span"]))  # type: ignore[arg-type]
        if etype == "meta":
            if pid in meta_pids:
                raise TraceSchemaError(f"duplicate meta event for pid {pid}")
            if seq != 0:
                raise TraceSchemaError(
                    f"meta event for pid {pid} must carry seq 0, got {seq}"
                )
            meta_pids.add(pid)
        per_pid = seen_seq.setdefault(pid, set())
        if seq in per_pid:
            raise TraceSchemaError(f"duplicate seq {seq} for pid {pid}")
        per_pid.add(seq)
    missing = sorted(set(seen_seq) - meta_pids)
    if missing:
        raise TraceSchemaError(f"pids missing a meta header: {missing}")
    for pid in sorted(opened):
        unclosed = opened[pid] - closed.get(pid, set())
        if unclosed:
            raise TraceSchemaError(
                f"pid {pid} has {len(unclosed)} span(s) opened but never "
                f"closed (truncated flight?): ids "
                f"{sorted(unclosed)[:5]}"
            )
    return {
        "events": count,
        "processes": len(seen_seq),
        "types": dict(sorted(type_counts.items())),
    }
