"""``repro.telemetry``: tracing, metrics, and the flight recorder.

Zero-dependency observability for the codec hot path, the runtime, and
the trainer loop (see ``docs/observability.md``):

* **spans** — nestable context managers carrying the ambient
  ``run/worker/epoch/round/phase`` context;
* **metrics** — typed counters/gauges/histograms (bytes on wire,
  retries, fault injections, sketch collision rates, ...);
* **flight recorder** — per-process JSONL files in the documented
  ``repro-trace/1`` schema, merged driver-side into one ordered trace
  across ``mp``/``tcp`` worker processes.

Disabled (the default) it is free in practice: every entry point
checks one module global and returns a shared no-op, and the perf
suite enforces <= 2% overhead on the e2e compress benchmark.

Usage::

    from repro import telemetry

    with telemetry.span("codec.compress", nnz=int(keys.size)):
        ...
    telemetry.counter("transport.bytes_sent", nbytes)

    session = telemetry.start_run("out.jsonl", run_id="demo")
    ...  # traced work
    telemetry.finish_run()          # merged trace at out.jsonl

Submodules :mod:`~repro.telemetry.epoch` (the trainer's single-source
accounting), :mod:`~repro.telemetry.merge`, :mod:`~repro.telemetry.
summary` (the ``python -m repro trace`` renderer), and
:mod:`~repro.telemetry.schema` are imported on demand.
"""

from .recorder import (
    Span,
    TraceRecorder,
    TraceSession,
    active_run_id,
    active_session,
    close_worker_recorder,
    context,
    counter,
    current_span_id,
    enable_worker_recorder,
    enabled,
    event,
    finish_run,
    gauge,
    get_context,
    get_recorder,
    hist,
    ingest_worker_metrics,
    measure,
    metrics_hub,
    remote_parent,
    set_context,
    set_metrics_hub,
    set_recorder,
    span,
    start_run,
    worker_trace_dir,
)
from .schema import SCHEMA, TraceSchemaError, validate_event, validate_trace

__all__ = [
    "SCHEMA",
    "Span",
    "TraceRecorder",
    "TraceSession",
    "TraceSchemaError",
    "active_run_id",
    "active_session",
    "close_worker_recorder",
    "context",
    "counter",
    "current_span_id",
    "enable_worker_recorder",
    "enabled",
    "event",
    "finish_run",
    "gauge",
    "get_context",
    "get_recorder",
    "hist",
    "ingest_worker_metrics",
    "measure",
    "metrics_hub",
    "remote_parent",
    "set_context",
    "set_metrics_hub",
    "set_recorder",
    "span",
    "start_run",
    "validate_event",
    "validate_trace",
    "worker_trace_dir",
]
