"""Critical-path attribution over a causal trace.

PR 4's flight recorder gave traces; the live-ops plane gives every
span a process-unique id and a causal parent — including worker spans
parented under the *driver's* round span via wire-propagated context.
This module walks that DAG and attributes each training round's wall
time to four buckets:

* ``codec``   — compress/encode on the median worker, driver decode +
  re-encode (including broadcast serialization), median worker
  decode of the update;
* ``compute`` — gradient computation on the median worker, driver
  aggregation, optimizer apply on driver and median worker;
* ``straggler_wait`` — the gap between the slowest and the median
  worker in each fan-in (the cost elasticity/SSP tries to recover);
* ``wire``    — fan-out/gather time not explained by worker busy time
  (serialization of frames, kernel buffers, real wire).

Whatever the tiling cannot explain lands in ``other``; the test tier
pins ``other`` under 1% of round wall time on the committed 8-worker
fleet trace, so the buckets are trustworthy, not decorative.

The entry points work on a merged trace (a list of event dicts or a
JSONL path): :func:`critical_path` → :class:`CriticalPathReport`,
:func:`causal_edges` (the DAG projection the golden test pins), and
:func:`render_report` (the ``repro trace --critical-path`` renderer).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "BUCKETS",
    "RoundAttribution",
    "CriticalPathReport",
    "causal_edges",
    "critical_path",
    "load_events",
    "render_report",
]

#: Attribution buckets, in render order.  ``other`` is the residual.
BUCKETS = ("codec", "compute", "straggler_wait", "wire", "other")


def load_events(path: str) -> List[Dict[str, Any]]:
    """Read one merged JSONL trace into memory."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def _median(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return float((ordered[mid - 1] + ordered[mid]) / 2.0)


@dataclass
class _SpanRec:
    name: str
    span_id: int
    parent: Optional[int]
    dur: float
    attrs: Dict[str, Any]
    epoch: Optional[int]
    round: Optional[int]
    worker: Optional[int]


def _index_spans(
    events: Iterable[Dict[str, Any]],
) -> Tuple[Dict[int, _SpanRec], Dict[int, List[int]]]:
    """Closed spans by id + children adjacency, from ``span`` events."""
    spans: Dict[int, _SpanRec] = {}
    children: Dict[int, List[int]] = {}
    for event in events:
        if event.get("type") != "span" or "span" not in event:
            continue
        rec = _SpanRec(
            name=str(event.get("name")),
            span_id=int(event["span"]),
            parent=event.get("parent"),
            dur=float(event.get("dur", 0.0)),
            attrs=dict(event.get("attrs") or {}),
            epoch=event.get("epoch"),
            round=event.get("round"),
            worker=event.get("worker"),
        )
        spans[rec.span_id] = rec
        if rec.parent is not None:
            children.setdefault(int(rec.parent), []).append(rec.span_id)
    return spans, children


def _descendants(
    root: int, children: Dict[int, List[int]]
) -> List[int]:
    found: List[int] = []
    frontier = list(children.get(root, ()))
    while frontier:
        sid = frontier.pop()
        found.append(sid)
        frontier.extend(children.get(sid, ()))
    return found


@dataclass
class RoundAttribution:
    """One round's wall time, tiled into :data:`BUCKETS` seconds."""

    round: int
    epoch: Optional[int]
    dur: float
    workers: int
    buckets: Dict[str, float] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of the round's wall time the four real buckets
        explain (1.0 − |other| / dur)."""
        if self.dur <= 0:
            return 1.0
        return 1.0 - abs(self.buckets.get("other", 0.0)) / self.dur


@dataclass
class CriticalPathReport:
    """Per-round attributions plus per-epoch and whole-run rollups."""

    rounds: List[RoundAttribution]

    def epoch_totals(self) -> Dict[Optional[int], Dict[str, float]]:
        totals: Dict[Optional[int], Dict[str, float]] = {}
        for r in self.rounds:
            bucket = totals.setdefault(
                r.epoch, {name: 0.0 for name in BUCKETS + ("wall",)}
            )
            bucket["wall"] += r.dur
            for name in BUCKETS:
                bucket[name] += r.buckets.get(name, 0.0)
        return totals

    def totals(self) -> Dict[str, float]:
        out = {name: 0.0 for name in BUCKETS + ("wall",)}
        for r in self.rounds:
            out["wall"] += r.dur
            for name in BUCKETS:
                out[name] += r.buckets.get(name, 0.0)
        return out


def _phase_of(rec: _SpanRec) -> Optional[str]:
    phase = rec.attrs.get("phase")
    return str(phase) if phase is not None else None


def _attribute_round(
    round_span: _SpanRec,
    spans: Dict[int, _SpanRec],
    children: Dict[int, List[int]],
) -> RoundAttribution:
    descendants = [spans[s] for s in _descendants(round_span.span_id, children)]
    by_name: Dict[str, List[_SpanRec]] = {}
    for rec in descendants:
        by_name.setdefault(rec.name, []).append(rec)

    def phase_dur(name: str, phase: str) -> float:
        return sum(
            r.dur for r in by_name.get(name, ()) if _phase_of(r) == phase
        )

    codec = compute = straggler = wire = 0.0

    # Parallel rounds (any real backend) drive workers through
    # runtime.fanout/gather; the pure-sim trainer runs them inline,
    # one after another, so worker time tiles the round sequentially
    # — sum it instead of taking the median, with no straggler gap
    # or wire remainder to speak of.
    parallel = (
        "runtime.fanout" in by_name or "runtime.gather" in by_name
    )

    # STEP fan-in: worker busy split by the worker's own measured
    # compute/encode shares; the slowest-vs-median gap is straggler
    # wait; the driver-side remainder of fanout+gather is wire.
    steps = by_name.get("worker.step", [])
    busy = [r.dur for r in steps]
    med_busy, max_busy = _median(busy), max(busy, default=0.0)
    enc_share: List[float] = []
    comp_share: List[float] = []
    for r in steps:
        c = float(r.attrs.get("compute_s", 0.0))
        e = float(r.attrs.get("encode_s", 0.0))
        total = c + e
        frac = e / total if total > 0 else 0.0
        enc_share.append(r.dur * frac)
        comp_share.append(r.dur * (1.0 - frac))
    if parallel:
        codec += _median(enc_share)
        compute += _median(comp_share)
        straggler += max_busy - med_busy
        step_drive = phase_dur("runtime.fanout", "step") + phase_dur(
            "runtime.gather", "step"
        )
        wire += max(0.0, step_drive - max_busy)
    else:
        codec += sum(enc_share)
        compute += sum(comp_share)

    # Driver aggregate: decode + merge + re-encode (the span also
    # covers broadcast serialization, which is codec work).
    for rec in by_name.get("trainer.aggregate", ()):
        agg_s = float(rec.attrs.get("aggregate_s", 0.0))
        compute += min(agg_s, rec.dur)
        codec += max(0.0, rec.dur - agg_s)

    # UPDATE fan-out: worker update application (decode → codec,
    # apply remainder → compute), straggler gap, wire remainder.
    updates = by_name.get("worker.update", [])
    upd = [r.dur for r in updates]
    med_upd, max_upd = _median(upd), max(upd, default=0.0)
    upd_decode = [
        min(float(r.attrs.get("decode_s", 0.0)), r.dur) for r in updates
    ]
    if parallel:
        med_upd_decode = _median(upd_decode)
        codec += med_upd_decode
        compute += max(0.0, med_upd - med_upd_decode)
        straggler += max_upd - med_upd
        upd_drive = phase_dur("runtime.fanout", "update") + phase_dur(
            "runtime.gather", "update"
        )
        wire += max(0.0, upd_drive - max_upd)
    else:
        codec += sum(upd_decode)
        compute += sum(
            max(0.0, r.dur - d) for r, d in zip(updates, upd_decode)
        )

    # Driver apply.
    compute += sum(r.dur for r in by_name.get("trainer.apply", ()))

    wall = round_span.dur
    other = wall - (codec + compute + straggler + wire)
    return RoundAttribution(
        round=int(round_span.round or 0),
        epoch=round_span.epoch,
        dur=wall,
        workers=len(steps),
        buckets={
            "codec": codec,
            "compute": compute,
            "straggler_wait": straggler,
            "wire": wire,
            "other": other,
        },
    )


def critical_path(
    events: Iterable[Dict[str, Any]],
) -> CriticalPathReport:
    """Attribute every ``trainer.round`` span in a causal trace.

    Raises ``ValueError`` on a trace without span ids (recorded before
    the live-ops plane) — there is no DAG to walk.
    """
    spans, children = _index_spans(events)
    if not spans:
        raise ValueError(
            "trace carries no span ids; critical-path attribution "
            "needs a live-ops trace (repro >= PR 10)"
        )
    rounds = [
        _attribute_round(rec, spans, children)
        for rec in spans.values()
        if rec.name == "trainer.round"
    ]
    rounds.sort(key=lambda r: r.round)
    return CriticalPathReport(rounds=rounds)


def causal_edges(
    events: Iterable[Dict[str, Any]],
) -> List[Tuple[str, str, int]]:
    """The trace's causal DAG projected to named edges.

    Returns sorted ``(parent_name, child_name, count)`` triples — a
    stable shape for golden pinning that survives timestamp and id
    churn across regenerations of the same seeded run.
    """
    spans, children = _index_spans(events)
    counts: Dict[Tuple[str, str], int] = {}
    for parent_id, kids in children.items():
        parent = spans.get(parent_id)
        if parent is None:
            continue
        for kid in kids:
            key = (parent.name, spans[kid].name)
            counts[key] = counts.get(key, 0) + 1
    return sorted(
        (parent, child, count)
        for (parent, child), count in counts.items()
    )


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:8.3f}s"
    return f"{value * 1e3:7.2f}ms"


def render_report(
    report: CriticalPathReport, *, per_round: bool = False
) -> str:
    """Human-readable attribution table (per epoch, then the run)."""
    lines: List[str] = []
    header = (
        f"{'':>10} {'wall':>9} "
        + " ".join(f"{name:>15}" for name in BUCKETS)
    )

    def row(label: str, wall: float, buckets: Dict[str, float]) -> str:
        cells = []
        for name in BUCKETS:
            val = buckets.get(name, 0.0)
            pct = (100.0 * val / wall) if wall > 0 else 0.0
            cells.append(f"{_fmt_seconds(val)} {pct:4.0f}%")
        return f"{label:>10} {_fmt_seconds(wall)} " + " ".join(cells)

    lines.append("critical path (driver wall time per round, tiled)")
    lines.append(header)
    if per_round:
        for r in report.rounds:
            lines.append(row(f"round {r.round}", r.dur, r.buckets))
    for epoch, totals in sorted(
        report.epoch_totals().items(), key=lambda kv: (kv[0] is None, kv[0])
    ):
        label = f"epoch {epoch}" if epoch is not None else "epoch ?"
        lines.append(row(label, totals["wall"], totals))
    totals = report.totals()
    lines.append(row("total", totals["wall"], totals))
    coverage = (
        1.0 - abs(totals["other"]) / totals["wall"]
        if totals["wall"] > 0 else 1.0
    )
    lines.append(
        f"attributed: {100.0 * coverage:.2f}% of round wall time "
        f"across {len(report.rounds)} round(s)"
    )
    return "\n".join(lines)
