"""The ``repro top`` dashboard: live per-worker metrics at a glance.

Renders one :meth:`~repro.telemetry.metrics.MetricsHub.snapshot` dict
as a fixed-width terminal table — one row per worker plus a driver
row — showing round progress, shipped bytes, codec time, retries, and
freshness.  Two data sources feed it:

* **live** — poll a running exporter's ``/snapshot.json``
  (``repro top --connect HOST:PORT``), refreshing in place;
* **offline** — fold a recorded trace's counter events into a hub and
  render the end state (``repro top TRACE --once``), which is also
  what the CI smoke job asserts on.

Only the rendering lives here; scraping and the refresh loop are in
:mod:`repro.cli` (they own the terminal).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from .metrics import DRIVER_KEY, MetricsHub

__all__ = ["snapshot_from_trace", "render_top"]

#: Columns: label → (counter name, divisor, format)
_NS = 1e6  # ns → ms


def snapshot_from_trace(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold a trace's counter/gauge events into a snapshot dict.

    The offline twin of scraping ``/snapshot.json``: exact same shape,
    so :func:`render_top` serves both paths.  Counter events carry the
    worker either as an attr or as ambient context.
    """
    hub = MetricsHub()
    meta_info: Dict[str, Any] = {}
    for event in events:
        etype = event.get("type")
        if etype == "meta" and "run" not in meta_info:
            run = event.get("run")
            if run:
                meta_info["run"] = run
        if etype not in ("counter", "gauge"):
            continue
        attrs = event.get("attrs") or {}
        worker = attrs.get("worker", event.get("worker"))
        name = str(event.get("name"))
        if etype == "counter":
            hub.record_counter(name, int(event.get("value", 0)), worker)
        else:
            hub.record_gauge(name, float(event.get("value", 0.0)), worker)
    if meta_info:
        hub.set_info(**meta_info)
    hub.mark_ready()
    return hub.snapshot()


def _counter(counters: Dict[str, Any], worker: str, name: str) -> int:
    return int(counters.get(worker, {}).get(name, 0))


def _fmt_ms(ns: int) -> str:
    return f"{ns / _NS:9.1f}"


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 20:
        return f"{n / (1 << 20):7.1f}M"
    if n >= 1 << 10:
        return f"{n / (1 << 10):7.1f}K"
    return f"{n:7d} "


def render_top(
    snapshot: Dict[str, Any], *, now: Optional[float] = None
) -> str:
    """One frame of the dashboard from a snapshot dict."""
    info = snapshot.get("info", {})
    counters: Dict[str, Dict[str, int]] = snapshot.get("counters", {})
    last_seen: Dict[str, float] = snapshot.get("last_seen", {})
    ts = float(snapshot.get("ts", 0.0)) if now is None else float(now)

    lines: List[str] = []
    head = " ".join(
        f"{key}={info[key]}" for key in sorted(info)
    )
    ready = "ready" if snapshot.get("ready") else "warming up"
    lines.append(f"repro top — {ready}" + (f" — {head}" if head else ""))
    lines.append(
        f"{'worker':>8} {'steps':>7} {'updates':>7} {'retries':>7} "
        f"{'bytes out':>9} {'compute ms':>10} {'encode ms':>9} "
        f"{'decode ms':>9} {'hb lag ms':>9} {'seen':>6}"
    )

    driver_key = str(DRIVER_KEY)
    worker_keys = sorted(
        (k for k in counters if k != driver_key), key=lambda k: int(k)
    )
    for key in worker_keys:
        seen = last_seen.get(key)
        age = f"{max(0.0, ts - float(seen)):5.1f}s" if seen else "    —"
        lines.append(
            f"{key:>8} "
            f"{_counter(counters, key, 'worker.steps'):>7} "
            f"{_counter(counters, key, 'worker.updates'):>7} "
            f"{_counter(counters, key, 'worker.step_retries'):>7} "
            f"{_fmt_bytes(_counter(counters, key, 'worker.bytes_out')):>9} "
            f"{_fmt_ms(_counter(counters, key, 'worker.compute_ns')):>10} "
            f"{_fmt_ms(_counter(counters, key, 'worker.encode_ns')):>9} "
            f"{_fmt_ms(_counter(counters, key, 'worker.decode_ns')):>9} "
            f"{_fmt_ms(_counter(counters, key, 'worker.heartbeat_lag_ns')):>9} "
            f"{age:>6}"
        )
    if not worker_keys:
        lines.append("  (no worker metrics yet)")

    driver = counters.get(driver_key, {})
    if driver:
        parts = [
            f"{name}={value}" for name, value in sorted(driver.items())
        ]
        lines.append("driver: " + " ".join(parts))
    return "\n".join(lines)
