"""Live metrics: worker-side delta accumulator + driver-side hub.

The post-hoc flight recorder (:mod:`repro.telemetry.recorder`) only
answers questions after ``finish_run`` merges the parts.  This module
is the *live* half of the ops plane:

* :class:`WorkerMetrics` — a tiny thread-safe integer accumulator a
  worker process bumps from its hot path (``ns`` and byte units keep
  everything integral, so driver-side folds are bit-exact).  The
  heartbeat thread and GRAD replies drain it with :meth:`take` and
  ship the deltas over the wire as an ops block
  (:func:`repro.runtime.framing.pack_metrics`).

* :class:`MetricsHub` — the driver-side in-memory time series.  It
  receives (a) wire-delivered worker deltas via :meth:`ingest` and
  (b) a tee of every driver ``telemetry.counter``/``gauge`` call
  (installed with :func:`repro.telemetry.set_metrics_hub`) — exactly
  the calls the trace recorder sees, so exporter counter totals match
  trace sums bit-exactly by construction.  Samples land in a bounded
  ring (oldest evicted) while per-worker totals accumulate without
  bound; :meth:`snapshot` is the JSON-ready aggregation the exporter
  and ``repro top`` render.

Driver-origin samples are keyed under worker id ``-1`` ("driver") so
they never collide with real worker ids.
"""

from __future__ import annotations

import collections
import threading
from typing import Any, Deque, Dict, List, Optional, Tuple

from .recorder import _wall_clock

__all__ = ["WorkerMetrics", "MetricsHub", "SpoolHub", "DRIVER_KEY"]

#: Synthetic worker key for driver-process samples in the hub.
DRIVER_KEY = -1


class WorkerMetrics:
    """Thread-safe integer counter deltas, drained by :meth:`take`."""

    __slots__ = ("_lock", "_deltas")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._deltas: Dict[str, int] = {}

    def add(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._deltas[name] = self._deltas.get(name, 0) + int(value)

    def take(self) -> Dict[str, int]:
        """Return and clear the accumulated deltas (empty dict when
        nothing accrued since the last drain)."""
        with self._lock:
            if not self._deltas:
                return {}
            deltas = self._deltas
            self._deltas = {}
            return deltas

    def peek(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._deltas)


class SpoolHub:
    """Worker-process stand-in for the driver's hub.

    A spawned worker installs this with
    :func:`repro.telemetry.set_metrics_hub` so the same recorder tee
    that feeds the driver's :class:`MetricsHub` instead spools *every*
    counter — the runtime's ``worker.*`` deltas and the codec's own
    ``codec.*`` instrumentation alike — into one :class:`WorkerMetrics`
    for wire delivery.  That single interception point is what makes
    driver-side exporter totals equal trace counter sums bit-exactly:
    each worker-process counter event has exactly one wire twin.

    Gauges stay process-local (a last-value sample cannot be shipped
    as a delta); the worker key is ignored because the driver rekeys
    deltas by the connection they arrived on.
    """

    __slots__ = ("spool",)

    def __init__(self, spool: WorkerMetrics) -> None:
        self.spool = spool

    def record_counter(
        self, name: str, value: int, worker: Optional[int] = None
    ) -> None:
        self.spool.add(name, int(value))

    def record_gauge(
        self, name: str, value: float, worker: Optional[int] = None
    ) -> None:
        return


class MetricsHub:
    """Bounded time-series ring + running totals, per worker.

    Args:
        ring_size: total samples retained across all workers; the ring
            is a sliding window for ``repro top`` rate displays, while
            totals are exact for the whole run.
    """

    def __init__(self, ring_size: int = 8192) -> None:
        if ring_size <= 0:
            raise ValueError("ring_size must be positive")
        self._lock = threading.Lock()
        #: (ts, worker, name, value) samples, oldest evicted.
        self._ring: Deque[Tuple[float, int, str, float]] = collections.deque(
            maxlen=int(ring_size)
        )
        self._counters: Dict[int, Dict[str, int]] = {}
        self._gauges: Dict[int, Dict[str, float]] = {}
        self._last_seen: Dict[int, float] = {}
        self._info: Dict[str, Any] = {}
        self._ready = False

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def record_counter(
        self, name: str, value: int, worker: Optional[int] = None
    ) -> None:
        key = DRIVER_KEY if worker is None else int(worker)
        value = int(value)
        with self._lock:
            per = self._counters.setdefault(key, {})
            per[name] = per.get(name, 0) + value
            self._ring.append((_wall_clock(), key, name, float(value)))

    def record_gauge(
        self, name: str, value: float, worker: Optional[int] = None
    ) -> None:
        key = DRIVER_KEY if worker is None else int(worker)
        value = float(value)
        with self._lock:
            self._gauges.setdefault(key, {})[name] = value
            self._ring.append((_wall_clock(), key, name, value))

    def ingest(self, worker_id: int, deltas: Dict[str, int]) -> None:
        """Fold wire-delivered worker deltas (always marks the worker
        live, even on an empty delta set — heartbeats carry empties)."""
        key = int(worker_id)
        now = _wall_clock()
        with self._lock:
            self._last_seen[key] = now
            if not deltas:
                return
            per = self._counters.setdefault(key, {})
            for name, value in deltas.items():
                per[name] = per.get(name, 0) + int(value)
                self._ring.append((now, key, name, float(value)))

    # ------------------------------------------------------------------
    # run metadata / readiness
    # ------------------------------------------------------------------
    def set_info(self, **fields: Any) -> None:
        """Attach run metadata (backend, entropy_coding, chunk_bytes,
        ...) surfaced in every snapshot."""
        with self._lock:
            self._info.update(fields)

    def mark_ready(self, ready: bool = True) -> None:
        with self._lock:
            self._ready = bool(ready)

    @property
    def ready(self) -> bool:
        with self._lock:
            return self._ready

    # ------------------------------------------------------------------
    # aggregation surface
    # ------------------------------------------------------------------
    def counter_total(self, name: str, worker: Optional[int] = None) -> int:
        """Total for one counter: one worker's, or summed over all."""
        with self._lock:
            if worker is not None:
                return self._counters.get(int(worker), {}).get(name, 0)
            return sum(
                per.get(name, 0) for per in self._counters.values()
            )

    def worker_ids(self) -> List[int]:
        with self._lock:
            ids = set(self._counters) | set(self._gauges) | set(
                self._last_seen
            )
        ids.discard(DRIVER_KEY)
        return sorted(ids)

    def recent(
        self, window_seconds: float = 5.0
    ) -> List[Tuple[float, int, str, float]]:
        """Ring samples newer than ``now - window_seconds`` (rates)."""
        cutoff = _wall_clock() - window_seconds
        with self._lock:
            return [s for s in self._ring if s[0] >= cutoff]

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-ready view: info, totals, gauges, liveness."""
        with self._lock:
            return {
                "info": dict(self._info),
                "ready": self._ready,
                "ts": _wall_clock(),
                "counters": {
                    str(worker): dict(per)
                    for worker, per in sorted(self._counters.items())
                },
                "gauges": {
                    str(worker): dict(per)
                    for worker, per in sorted(self._gauges.items())
                },
                "last_seen": {
                    str(worker): ts
                    for worker, ts in sorted(self._last_seen.items())
                },
                "ring_samples": len(self._ring),
            }
