"""Merging per-process part files into one ordered trace.

Each process (driver + every spawned worker) writes its own JSONL part
file; the driver merges them after the run into a single trace ordered
by ``(ts, pid, seq)``.  Ordering is a *presentation* choice — analysis
code must key on the explicit ``pid``/``seq``/context fields, never on
line position (wall clocks across processes are only loosely
synchronised).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Sequence

__all__ = [
    "read_trace",
    "merge_trace_events",
    "merge_trace_files",
    "write_trace",
]


def read_trace(path: str) -> List[Dict[str, object]]:
    """Parse one JSONL trace (or part) file into event dicts."""
    events: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: invalid trace line: {exc}"
                ) from exc
            if not isinstance(event, dict):
                raise ValueError(
                    f"{path}:{lineno}: trace line is not a JSON object"
                )
            events.append(event)
    return events


def _sort_key(event: Dict[str, object]):
    return (
        float(event.get("ts", 0.0)),  # type: ignore[arg-type]
        int(event.get("pid", 0)),  # type: ignore[arg-type]
        int(event.get("seq", 0)),  # type: ignore[arg-type]
    )


def merge_trace_events(
    event_lists: Iterable[List[Dict[str, object]]],
) -> List[Dict[str, object]]:
    """Flatten + stable-sort event lists by ``(ts, pid, seq)``."""
    merged: List[Dict[str, object]] = []
    for events in event_lists:
        merged.extend(events)
    merged.sort(key=_sort_key)
    return merged


def merge_trace_files(paths: Sequence[str]) -> List[Dict[str, object]]:
    """Merge part files; silently skips paths that no longer exist
    (a crashed worker may never have produced its part)."""
    lists = [read_trace(path) for path in paths if os.path.isfile(path)]
    return merge_trace_events(lists)


def write_trace(events: Iterable[Dict[str, object]], path: str) -> None:
    """Write events as one JSON object per line."""
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event, separators=(",", ":")))
            fh.write("\n")
