"""Trace analysis for ``python -m repro trace``.

Consumes a merged ``repro-trace/1`` file and renders:

* the **per-phase time tree** — span totals grouped by dotted name
  (``codec.compress`` nests under ``codec``), with counts and the
  share of recorded span time;
* the **per-worker timeline** — per worker: rounds answered, busy
  seconds, bytes over the transport, retries/faults/heartbeats, and a
  sparkline of per-round step durations;
* the **slowest-round drill-down** — the longest driver rounds with
  each worker's step time and the bytes the round moved;
* the **per-epoch accounting table** — file-order replay of the
  ``trainer.*`` events (bit-identical to the run's ``EpochRecord``
  fields, see :mod:`repro.telemetry.epoch`).

Everything here is read-only analysis over plain dicts; rendering
avoids the bench helpers so the telemetry package stays leaf-level.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .epoch import COUNT_FIELDS, TIME_FIELDS, replay_epoch_sums
from .merge import read_trace

__all__ = [
    "load_trace",
    "phase_tree",
    "worker_timeline",
    "slowest_rounds",
    "epoch_table",
    "summarize",
    "render_summary",
]

load_trace = read_trace

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _sparkline(values: Sequence[float], width: int = 24) -> str:
    finite = [v for v in values if isinstance(v, (int, float)) and v == v]
    if not finite:
        return ""
    if len(finite) > width:
        # Downsample by taking per-bucket maxima (peaks matter most).
        step = len(finite) / width
        finite = [
            max(finite[int(i * step):max(int(i * step) + 1, int((i + 1) * step))])
            for i in range(width)
        ]
    peak = max(finite)
    if peak <= 0:
        return _SPARK_CHARS[0] * len(finite)
    return "".join(
        _SPARK_CHARS[min(len(_SPARK_CHARS) - 1,
                         int(v / peak * (len(_SPARK_CHARS) - 1)))]
        for v in finite
    )


# ----------------------------------------------------------------------
# phase time tree
# ----------------------------------------------------------------------
def phase_tree(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate span durations into a dotted-name tree.

    Each node carries ``self_seconds``/``count`` for spans with exactly
    that name and ``rollup_seconds`` — its own time, or (for pure
    grouping nodes like ``codec``) the sum of its children's rollups.
    Child time is *contained in* parent span time, so rollups are not
    sums over the whole subtree.
    """
    root: Dict[str, Any] = {
        "name": "", "self_seconds": 0.0, "count": 0, "children": {}
    }
    for event in events:
        if event.get("type") != "span":
            continue
        node = root
        for part in str(event.get("name", "")).split("."):
            node = node["children"].setdefault(
                part,
                {"name": part, "self_seconds": 0.0, "count": 0, "children": {}},
            )
        node["self_seconds"] += float(event.get("dur", 0.0))
        node["count"] += 1

    def rollup(node: Dict[str, Any]) -> float:
        child_total = sum(rollup(c) for c in node["children"].values())
        node["rollup_seconds"] = (
            node["self_seconds"] if node["count"] else child_total
        )
        return node["rollup_seconds"]

    rollup(root)
    return root


def _render_tree(root: Dict[str, Any]) -> List[str]:
    total = sum(c["rollup_seconds"] for c in root["children"].values())
    lines = [f"{'phase':<34}{'count':>7}  {'seconds':>10}  {'share':>6}"]

    def walk(node: Dict[str, Any], depth: int) -> None:
        label = "  " * depth + node["name"]
        count = node["count"] or ""
        share = node["rollup_seconds"] / total if total else 0.0
        lines.append(
            f"{label:<34}{count:>7}  {node['rollup_seconds']:>10.4f}  "
            f"{share:>5.1%}"
        )
        children = sorted(
            node["children"].values(),
            key=lambda c: c["rollup_seconds"],
            reverse=True,
        )
        for child in children:
            walk(child, depth + 1)

    for child in sorted(
        root["children"].values(),
        key=lambda c: c["rollup_seconds"],
        reverse=True,
    ):
        walk(child, 0)
    return lines


# ----------------------------------------------------------------------
# per-worker timeline
# ----------------------------------------------------------------------
def _event_worker(event: Dict[str, Any]) -> Optional[int]:
    """Worker attribution: explicit attr wins over ambient context."""
    attrs = event.get("attrs")
    if isinstance(attrs, dict) and isinstance(attrs.get("worker"), int):
        return attrs["worker"]
    worker = event.get("worker")
    return worker if isinstance(worker, int) else None


def worker_timeline(
    events: Sequence[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Per-worker activity rows (the driver is row ``worker=None``)."""
    rows: Dict[Optional[int], Dict[str, Any]] = {}

    def row(worker: Optional[int]) -> Dict[str, Any]:
        return rows.setdefault(worker, {
            "worker": worker,
            "rounds": set(),
            "busy_seconds": 0.0,
            "step_durations": [],
            "bytes_sent": 0,
            "bytes_recv": 0,
            "retries": 0,
            "timeouts": 0,
            "heartbeats": 0,
            "faults": 0,
            "lost": False,
        })

    for event in events:
        etype = event.get("type")
        name = str(event.get("name", ""))
        worker = _event_worker(event)
        if etype == "span":
            if name in ("worker.step", "worker.update", "trainer.round"):
                entry = row(worker)
                entry["busy_seconds"] += float(event.get("dur", 0.0))
                if isinstance(event.get("round"), int):
                    entry["rounds"].add(event["round"])
                if name in ("worker.step", "trainer.round"):
                    entry["step_durations"].append(
                        (event.get("round", -1), float(event.get("dur", 0.0)))
                    )
        elif etype == "counter":
            if name == "transport.bytes_sent":
                row(worker)["bytes_sent"] += int(event.get("value", 0))
            elif name == "transport.bytes_recv":
                row(worker)["bytes_recv"] += int(event.get("value", 0))
            elif name == "runtime.retries":
                row(worker)["retries"] += int(event.get("value", 0))
            elif name == "runtime.timeouts":
                row(worker)["timeouts"] += int(event.get("value", 0))
            elif name == "runtime.heartbeats":
                row(worker)["heartbeats"] += int(event.get("value", 0))
        elif etype == "event":
            if name.startswith("fault."):
                row(worker)["faults"] += 1
            elif name == "runtime.worker_lost":
                row(worker)["lost"] = True

    out = []
    for worker in sorted(rows, key=lambda w: (w is None, w)):
        entry = rows[worker]
        entry["rounds"] = len(entry["rounds"])
        durations = [d for _, d in sorted(entry.pop("step_durations"))]
        entry["timeline"] = _sparkline(durations)
        out.append(entry)
    return out


def _render_workers(rows: List[Dict[str, Any]]) -> List[str]:
    lines = [
        f"{'worker':<8}{'rounds':>7}{'busy s':>9}{'sent B':>10}"
        f"{'recv B':>10}{'retry':>6}{'hb':>5}{'fault':>6}  timeline"
    ]
    for entry in rows:
        label = "driver" if entry["worker"] is None else str(entry["worker"])
        if entry["lost"]:
            label += "†"
        lines.append(
            f"{label:<8}{entry['rounds']:>7}{entry['busy_seconds']:>9.4f}"
            f"{entry['bytes_sent']:>10}{entry['bytes_recv']:>10}"
            f"{entry['retries']:>6}{entry['heartbeats']:>5}"
            f"{entry['faults']:>6}  {entry['timeline']}"
        )
    if any(entry["lost"] for entry in rows):
        lines.append("† worker dropped/lost during the run")
    return lines


# ----------------------------------------------------------------------
# slowest rounds
# ----------------------------------------------------------------------
def slowest_rounds(
    events: Sequence[Dict[str, Any]], limit: int = 3
) -> List[Dict[str, Any]]:
    """The longest driver rounds, with per-worker step drill-down."""
    rounds = [
        e for e in events
        if e.get("type") == "span" and e.get("name") == "trainer.round"
        and e.get("worker") is None and isinstance(e.get("round"), int)
    ]
    rounds.sort(key=lambda e: float(e.get("dur", 0.0)), reverse=True)
    out = []
    for event in rounds[:max(0, limit)]:
        rid = event["round"]
        steps = sorted(
            (e["worker"], float(e.get("dur", 0.0)))
            for e in events
            if e.get("type") == "span" and e.get("name") == "worker.step"
            and e.get("round") == rid and isinstance(e.get("worker"), int)
        )
        bytes_sent = sum(
            int(e.get("value", 0)) for e in events
            if e.get("type") == "counter"
            and e.get("name") == "trainer.bytes_sent" and e.get("round") == rid
        )
        out.append({
            "round": rid,
            "epoch": event.get("epoch"),
            "seconds": float(event.get("dur", 0.0)),
            "bytes_sent": bytes_sent,
            "worker_steps": [
                {"worker": w, "seconds": d} for w, d in steps
            ],
        })
    return out


def _render_slowest(entries: List[Dict[str, Any]]) -> List[str]:
    lines = []
    for entry in entries:
        lines.append(
            f"round {entry['round']} (epoch {entry['epoch']}): "
            f"{entry['seconds']:.4f}s, {entry['bytes_sent']} B gathered"
        )
        for step in entry["worker_steps"]:
            lines.append(
                f"  worker {step['worker']:<4} step {step['seconds']:.4f}s"
            )
    return lines or ["(no trainer.round spans recorded)"]


# ----------------------------------------------------------------------
# per-epoch accounting
# ----------------------------------------------------------------------
def epoch_table(events: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    sums = replay_epoch_sums(events)
    return [
        {"epoch": epoch, **sums[epoch]} for epoch in sorted(sums)
    ]


def _render_epochs(rows: List[Dict[str, Any]]) -> List[str]:
    header = f"{'epoch':>5}"
    for field in TIME_FIELDS:
        header += f"{field + ' s':>11}"
    for field in COUNT_FIELDS:
        header += f"{field:>13}"
    lines = [header]
    for entry in rows:
        line = f"{entry['epoch']:>5}"
        for field in TIME_FIELDS:
            line += f"{entry[f'{field}_seconds']:>11.4f}"
        for field in COUNT_FIELDS:
            line += f"{entry[field]:>13}"
        lines.append(line)
    return lines


# ----------------------------------------------------------------------
# top level
# ----------------------------------------------------------------------
def summarize(
    events: Sequence[Dict[str, Any]], slowest: int = 3
) -> Dict[str, Any]:
    """The full JSON summary (``--format json``)."""
    runs = sorted({
        e["run"] for e in events if isinstance(e.get("run"), str)
    })
    return {
        "schema": "repro-trace-summary/1",
        "runs": runs,
        "events": len(events),
        "processes": len({e.get("pid") for e in events}),
        "epochs": epoch_table(events),
        "phases": phase_tree(events),
        "workers": worker_timeline(events),
        "slowest_rounds": slowest_rounds(events, limit=slowest),
    }


def render_summary(
    events: Sequence[Dict[str, Any]], slowest: int = 3
) -> str:
    """The human table rendering (``--format table``, the default)."""
    summary = summarize(events, slowest=slowest)
    run_label = ", ".join(summary["runs"]) or "(unnamed)"
    sections = [
        f"trace: run {run_label} — {summary['events']} events from "
        f"{summary['processes']} process(es)",
        "",
        "== per-phase time tree ==",
        *_render_tree(summary["phases"]),
        "",
        "== per-worker timeline ==",
        *_render_workers(summary["workers"]),
        "",
        f"== slowest rounds (top {slowest}) ==",
        *_render_slowest(summary["slowest_rounds"]),
    ]
    if summary["epochs"]:
        sections += [
            "",
            "== per-epoch accounting (replayed from trainer.* events) ==",
            *_render_epochs(summary["epochs"]),
        ]
    return "\n".join(sections)
