"""The flight recorder: spans, metrics, ambient context, run plumbing.

Zero dependencies, and **default-off is free**: the module-level API
(:func:`span`, :func:`counter`, ...) checks one global and returns a
shared no-op object when no recorder is installed, so instrumented hot
paths pay a few tens of nanoseconds per call (the perf suite enforces
<= 2% on the e2e compress benchmark — see ``repro.perf.overhead``).

When recording, every process appends JSON-lines events (schema
``repro-trace/1``, see :mod:`repro.telemetry.schema`) to its own part
file; :func:`finish_run` merges the parts into one ordered trace.
Worker processes are enabled via the ``trace_dir``/``run_id`` fields
of their :class:`~repro.runtime.worker_runtime.WorkerBootstrap`.

Ambient context (``run``/``worker``/``epoch``/``round``/``phase``) is
process-global (guarded by a lock, shared across threads): the runtime
is one logical actor per process, and the heartbeat thread only bumps
counters.

Causality (the live-ops plane): every :class:`Span` mints a
process-unique id on entry, emits a ``span_open`` event, and records
its causal parent — the innermost open span of this process, or, when
the process-local stack is empty, the *remote parent* adopted from a
wire-propagated span context (:func:`remote_parent`).  The driver
stamps :func:`current_span_id` into outbound frames so worker spans
parent under the exact driver round span instead of being correlated
by timestamp heuristics.

Live metrics: :func:`set_metrics_hub` installs an in-process sink that
tees every :func:`counter`/:func:`gauge` call (exactly the calls the
recorder sees, so exporter totals match trace sums bit-exactly) and
receives worker-side metric deltas via :func:`ingest_worker_metrics`.
"""

from __future__ import annotations

import itertools
import json
import os
import shutil
import threading
import time
from typing import Any, Dict, IO, List, Optional

from .merge import merge_trace_files, write_trace
from .schema import CONTEXT_FIELDS, SCHEMA

__all__ = [
    "Span",
    "TraceRecorder",
    "TraceSession",
    "enabled",
    "get_recorder",
    "set_recorder",
    "span",
    "counter",
    "gauge",
    "hist",
    "measure",
    "event",
    "context",
    "set_context",
    "get_context",
    "current_span_id",
    "remote_parent",
    "set_metrics_hub",
    "metrics_hub",
    "ingest_worker_metrics",
    "start_run",
    "finish_run",
    "active_session",
    "worker_trace_dir",
    "active_run_id",
    "enable_worker_recorder",
    "close_worker_recorder",
]


def _wall_clock() -> float:
    """Trace timestamps: comparable across worker processes.

    Timestamps annotate events for ordering and human reading — they
    never influence training behaviour (durations always come from
    ``time.perf_counter`` deltas).
    """
    return time.time()  # repro: noqa[rng-discipline] — trace timestamps must be comparable across processes; they annotate events and never decide behaviour


def _json_default(value: Any) -> Any:
    """Last-resort JSON coercion: numpy scalars -> native, else str."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


class _NullSpan:
    """The shared no-op span returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set_attrs(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()

# Causal-span state: ids are minted per process (pid-prefixed so they
# stay unique in a merged trace) and the open-span stack is
# process-global, like the ambient context — one logical actor per
# process; only the main thread opens spans.
_SPAN_SEQ = itertools.count(1)
_SPAN_STACK: List[int] = []
_REMOTE_PARENT: Optional[int] = None


def _next_span_id() -> int:
    return (os.getpid() << 24) | (next(_SPAN_SEQ) & 0xFFFFFF)


class Span:
    """A live span: ``with telemetry.span("codec.compress"): ...``.

    Entry mints a process-unique span id, records the causal parent
    (innermost open span, else the adopted remote parent), and emits a
    ``span_open`` event; exit emits the ``span`` close with ``ts`` =
    wall-clock start, ``dur`` = the ``perf_counter`` delta, and the
    same ``span``/``parent`` ids.  Spans must be used as context
    managers (the ``telemetry-discipline`` lint rule enforces it) so
    no code path can leak an unclosed span — and a killed process
    leaves its opens unmatched, which ``validate_trace`` reports as a
    truncated flight.
    """

    __slots__ = ("_recorder", "_name", "_attrs", "_ts", "_t0", "_id", "_parent")

    def __init__(
        self, recorder: "TraceRecorder", name: str, attrs: Dict[str, Any]
    ) -> None:
        self._recorder = recorder
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "Span":
        self._ts = _wall_clock()
        self._id = _next_span_id()
        stack = _SPAN_STACK
        self._parent = stack[-1] if stack else _REMOTE_PARENT
        stack.append(self._id)
        self._recorder.emit(
            "span_open", self._name, ts=self._ts,
            span=self._id, parent=self._parent,
        )
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        dur = time.perf_counter() - self._t0
        stack = _SPAN_STACK
        if stack and stack[-1] == self._id:
            stack.pop()
        elif self._id in stack:  # out-of-order exit: still unwind
            stack.remove(self._id)
        self._recorder.emit(
            "span", self._name, ts=self._ts, dur=dur,
            span=self._id, parent=self._parent,
            attrs=self._attrs or None,
        )

    def set_attrs(self, **attrs: Any) -> None:
        """Attach attrs mid-span (emitted with the close event) — e.g.
        ``worker.step`` attaching ``compute_s`` once the result exists."""
        self._attrs.update(attrs)

    @property
    def span_id(self) -> int:
        """The minted id (valid after ``__enter__``)."""
        return self._id


class TraceRecorder:
    """Appends schema-valid events to one JSONL part file."""

    def __init__(
        self,
        path: str,
        *,
        source: str = "driver",
        worker_id: Optional[int] = None,
    ) -> None:
        self.path = path
        self._fh: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        self._seq = 0
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self.emit(
            "meta", None, schema=SCHEMA, source=source,
            **({} if worker_id is None else {"worker": worker_id}),
        )

    # ------------------------------------------------------------------
    def emit(
        self,
        etype: str,
        name: Optional[str],
        *,
        ts: Optional[float] = None,
        **fields: Any,
    ) -> None:
        """Serialize one event; context fields are folded in."""
        record: Dict[str, Any] = {"type": etype}
        if name is not None:
            record["name"] = name
        record["ts"] = _wall_clock() if ts is None else ts
        record["pid"] = self._pid
        with self._lock:
            if self._fh is None:
                return
            record["seq"] = self._seq
            self._seq += 1
            for key in CONTEXT_FIELDS:
                value = _CONTEXT.get(key)
                if value is not None and key not in fields:
                    record[key] = value
            for key, value in fields.items():
                if value is not None:
                    record[key] = value
            self._fh.write(
                json.dumps(record, separators=(",", ":"), default=_json_default)
            )
            self._fh.write("\n")

    # span/metric surface -----------------------------------------------
    def span(self, name: str, attrs: Dict[str, Any]) -> Span:
        return Span(self, name, attrs)

    def counter(self, name: str, value: int, attrs: Dict[str, Any]) -> None:
        self.emit("counter", name, value=int(value), attrs=attrs or None)

    def gauge(self, name: str, value: float, attrs: Dict[str, Any]) -> None:
        self.emit("gauge", name, value=float(value), attrs=attrs or None)

    def hist(self, name: str, value: float, attrs: Dict[str, Any]) -> None:
        self.emit("hist", name, value=float(value), attrs=attrs or None)

    def measure(self, name: str, value: float, unit: str) -> None:
        self.emit("measure", name, value=float(value), unit=unit)

    def event(self, name: str, attrs: Dict[str, Any]) -> None:
        self.emit("event", name, attrs=attrs or None)

    def flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                self._fh.close()
                self._fh = None


# ----------------------------------------------------------------------
# module-level state: the ambient recorder + context
# ----------------------------------------------------------------------
_RECORDER: Optional[TraceRecorder] = None
_CONTEXT: Dict[str, Any] = {}
_STATE_LOCK = threading.Lock()


def enabled() -> bool:
    """True when a recorder is installed (telemetry is recording)."""
    return _RECORDER is not None


def get_recorder() -> Optional[TraceRecorder]:
    return _RECORDER


def set_recorder(recorder: Optional[TraceRecorder]) -> Optional[TraceRecorder]:
    """Install (or clear, with ``None``) the process recorder.

    Returns the previously installed recorder; callers that install a
    probe should restore it.
    """
    global _RECORDER
    with _STATE_LOCK:
        previous = _RECORDER
        _RECORDER = recorder
    return previous


def span(name: str, **attrs: Any):
    """A nestable span context manager (no-op while disabled)."""
    recorder = _RECORDER
    if recorder is None:
        return _NULL_SPAN
    return recorder.span(name, attrs)


def counter(name: str, value: int = 1, **attrs: Any) -> None:
    """Bump a monotonically accumulating counter by ``value``."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.counter(name, value, attrs)
    hub = _METRICS_HUB
    if hub is not None:
        hub.record_counter(
            name, int(value), attrs.get("worker", _CONTEXT.get("worker"))
        )


def gauge(name: str, value: float, **attrs: Any) -> None:
    """Record a point-in-time level (e.g. ``codec.decay_scale``)."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.gauge(name, value, attrs)
    hub = _METRICS_HUB
    if hub is not None:
        hub.record_gauge(
            name, float(value), attrs.get("worker", _CONTEXT.get("worker"))
        )


def hist(name: str, value: float, **attrs: Any) -> None:
    """Record one histogram observation."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.hist(name, value, attrs)


def measure(name: str, value: float, unit: str = "s") -> None:
    """Record an accounting sample (the ``EpochRecord`` source data)."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.measure(name, value, unit)


def event(name: str, **attrs: Any) -> None:
    """Record a discrete occurrence (retry, fault, worker lost...)."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.event(name, attrs)


class _ContextScope:
    """Restores the ambient-context fields it shadowed on exit."""

    __slots__ = ("_fields", "_saved")

    def __init__(self, fields: Dict[str, Any]) -> None:
        self._fields = fields

    def __enter__(self) -> "_ContextScope":
        self._saved = {key: _CONTEXT.get(key) for key in self._fields}
        _CONTEXT.update(self._fields)
        return self

    def __exit__(self, *exc_info: object) -> None:
        _CONTEXT.update(self._saved)


def context(**fields: Any) -> _ContextScope:
    """Scope ambient fields: ``with telemetry.context(round=3): ...``.

    Only :data:`~repro.telemetry.schema.CONTEXT_FIELDS` keys are
    meaningful; values stamp every event emitted inside the scope.
    """
    return _ContextScope(fields)


def set_context(**fields: Any) -> None:
    """Set ambient fields for the rest of the process (e.g. ``run``)."""
    _CONTEXT.update(fields)


def get_context() -> Dict[str, Any]:
    return dict(_CONTEXT)


# ----------------------------------------------------------------------
# causal-span surface (the live-ops plane)
# ----------------------------------------------------------------------
def current_span_id() -> Optional[int]:
    """Id of the innermost open span of this process, or ``None``.

    The driver stamps this into outbound STEP/UPDATE frames so worker
    spans can adopt it as their causal parent across the process
    boundary.
    """
    stack = _SPAN_STACK
    return stack[-1] if stack else None


class _RemoteParentScope:
    """Adopt a wire-propagated span id as the root causal parent."""

    __slots__ = ("_span_id", "_saved")

    def __init__(self, span_id: Optional[int]) -> None:
        self._span_id = span_id

    def __enter__(self) -> "_RemoteParentScope":
        global _REMOTE_PARENT
        self._saved = _REMOTE_PARENT
        _REMOTE_PARENT = self._span_id
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _REMOTE_PARENT
        _REMOTE_PARENT = self._saved


def remote_parent(span_id: Optional[int]) -> _RemoteParentScope:
    """Scope a remote causal parent: spans opened while the local
    stack is empty parent under ``span_id`` (``None`` is a no-op
    scope, so call sites need no conditional)."""
    return _RemoteParentScope(span_id)


# ----------------------------------------------------------------------
# live metrics hub (tee + worker-delta ingestion)
# ----------------------------------------------------------------------
_METRICS_HUB: Optional[Any] = None


def set_metrics_hub(hub: Optional[Any]) -> Optional[Any]:
    """Install (or clear) the process metrics hub; returns the previous.

    While installed, every :func:`counter`/:func:`gauge` call is teed
    into the hub — whether or not a recorder is active — and
    :func:`ingest_worker_metrics` folds worker-side deltas in.
    """
    global _METRICS_HUB
    with _STATE_LOCK:
        previous = _METRICS_HUB
        _METRICS_HUB = hub
    return previous


def metrics_hub() -> Optional[Any]:
    return _METRICS_HUB


def ingest_worker_metrics(worker_id: int, deltas: Dict[str, int]) -> None:
    """Fold wire-delivered worker metric deltas into the hub (no-op
    when no hub is installed)."""
    hub = _METRICS_HUB
    if hub is not None:
        hub.ingest(worker_id, deltas)


# ----------------------------------------------------------------------
# run lifecycle (driver side)
# ----------------------------------------------------------------------
class TraceSession:
    """One recording run: the output path plus its scratch parts dir."""

    __slots__ = ("out_path", "parts_dir", "run_id")

    def __init__(self, out_path: str, parts_dir: str, run_id: str) -> None:
        self.out_path = out_path
        self.parts_dir = parts_dir
        self.run_id = run_id


_SESSION: Optional[TraceSession] = None


def start_run(out_path: str, run_id: str = "run") -> TraceSession:
    """Begin recording: installs the driver recorder, returns the session.

    Creates ``<out_path>.parts/`` where the driver and every worker
    process append their part files; :func:`finish_run` merges them
    into ``out_path`` and removes the scratch directory.
    """
    global _SESSION
    if _SESSION is not None:
        raise RuntimeError(f"a trace run is already active: {_SESSION.out_path}")
    parts_dir = out_path + ".parts"
    os.makedirs(parts_dir, exist_ok=True)
    set_context(run=run_id)
    set_recorder(
        TraceRecorder(os.path.join(parts_dir, "driver.jsonl"), source="driver")
    )
    _SESSION = TraceSession(out_path, parts_dir, run_id)
    return _SESSION


def finish_run() -> str:
    """Merge every part file into the session's output path.

    Closes the driver recorder, sorts all events by ``(ts, pid, seq)``
    into one trace, deletes the scratch directory, and returns the
    merged path.
    """
    global _SESSION
    session = _SESSION
    if session is None:
        raise RuntimeError("no trace run is active")
    recorder = set_recorder(None)
    if recorder is not None:
        recorder.close()
    _CONTEXT.pop("run", None)
    _SESSION = None
    parts = sorted(
        os.path.join(session.parts_dir, fname)
        for fname in os.listdir(session.parts_dir)
        if fname.endswith(".jsonl")
    )
    events = merge_trace_files(parts)
    write_trace(events, session.out_path)
    shutil.rmtree(session.parts_dir, ignore_errors=True)
    return session.out_path


def active_session() -> Optional[TraceSession]:
    return _SESSION


def active_run_id() -> Optional[str]:
    return _SESSION.run_id if _SESSION is not None else None


def worker_trace_dir() -> Optional[str]:
    """Where spawned workers should write their part files (or None)."""
    return _SESSION.parts_dir if _SESSION is not None else None


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def enable_worker_recorder(
    trace_dir: str, worker_id: int, run_id: Optional[str] = None
) -> TraceRecorder:
    """Install a recorder in a spawned worker process."""
    if run_id is not None:
        set_context(run=run_id)
    set_context(worker=worker_id)
    recorder = TraceRecorder(
        os.path.join(trace_dir, f"worker-{worker_id:04d}.jsonl"),
        source="worker",
        worker_id=worker_id,
    )
    set_recorder(recorder)
    return recorder


def close_worker_recorder() -> None:
    """Flush + close the worker recorder (serve loop ``finally``)."""
    recorder = set_recorder(None)
    if recorder is not None:
        recorder.close()
