"""Epoch accounting that *is* the trace: the single source of truth.

Before telemetry, the trainer summed timing/byte fields into ad-hoc
locals and a trace (had one existed) would have been a second,
independently-drifting bookkeeping path.  :class:`EpochAccumulator`
collapses the two: every ``add_*`` call both updates the running sums
the ``EpochRecord`` is built from **and** emits a ``measure``/
``counter`` event with the identical value.  Summing the driver's
``trainer.*`` events for an epoch (in file order) replays the same
float additions in the same order, so the trace reproduces the
``EpochRecord`` fields *exactly* — bit-for-bit, not approximately.

This module intentionally does not import ``repro.distributed``: the
trainer builds its own ``EpochRecord`` from the public attributes here
(keeps the package dependency one-way: distributed -> telemetry).
"""

from __future__ import annotations

from typing import Dict

from . import recorder as telemetry

__all__ = [
    "TIME_FIELDS",
    "COUNT_FIELDS",
    "EpochAccumulator",
    "replay_epoch_sums",
]

#: EpochRecord timing fields, accumulated as ``measure`` events
#: named ``trainer.<field>_seconds``.
TIME_FIELDS = ("compute", "network", "encode", "decode")

#: EpochRecord byte/count fields, accumulated as ``counter`` events
#: named ``trainer.<field>``.
COUNT_FIELDS = ("bytes_sent", "raw_bytes", "num_messages", "gradient_nnz")


class EpochAccumulator:
    """Accumulates one epoch's accounting and mirrors it to the trace.

    Attributes:
        epoch: the epoch index (also expected as ambient context).
        seconds: running float sums per :data:`TIME_FIELDS` entry.
        counts: running int sums per :data:`COUNT_FIELDS` entry.
        loss_sum / loss_count: per-round local-loss accumulation.
    """

    __slots__ = ("epoch", "seconds", "counts", "loss_sum", "loss_count")

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.seconds: Dict[str, float] = {field: 0.0 for field in TIME_FIELDS}
        self.counts: Dict[str, int] = {field: 0 for field in COUNT_FIELDS}
        self.loss_sum = 0.0
        self.loss_count = 0

    # ------------------------------------------------------------------
    def add_seconds(self, field: str, value: float) -> None:
        """Add ``value`` seconds to a timing field and trace it.

        The emitted ``measure`` carries the exact float added, so a
        file-order replay of ``trainer.<field>_seconds`` events
        reproduces ``self.seconds[field]`` bit-for-bit.
        """
        value = float(value)
        self.seconds[field] += value
        telemetry.measure(f"trainer.{field}_seconds", value, unit="s")

    def add_counts(self, **fields: int) -> None:
        """Add integer byte/message/nnz counts and trace each one."""
        for field, value in fields.items():
            value = int(value)
            self.counts[field] += value
            telemetry.counter(f"trainer.{field}", value)

    def add_loss(self, loss_sum: float, count: int) -> None:
        self.loss_sum += float(loss_sum)
        self.loss_count += int(count)

    # ------------------------------------------------------------------
    @property
    def train_loss(self) -> float:
        if not self.loss_count:
            return float("nan")
        return self.loss_sum / self.loss_count

    @property
    def mean_gradient_nnz(self) -> float:
        if not self.counts["num_messages"]:
            return 0.0
        return self.counts["gradient_nnz"] / self.counts["num_messages"]

    def record_fields(self) -> Dict[str, object]:
        """Keyword arguments for ``EpochRecord`` (minus loss extras)."""
        return {
            "epoch": self.epoch,
            "compute_seconds": self.seconds["compute"],
            "network_seconds": self.seconds["network"],
            "encode_seconds": self.seconds["encode"],
            "decode_seconds": self.seconds["decode"],
            "train_loss": self.train_loss,
            "bytes_sent": self.counts["bytes_sent"],
            "raw_bytes": self.counts["raw_bytes"],
            "num_messages": self.counts["num_messages"],
            "gradient_nnz": self.mean_gradient_nnz,
        }


def replay_epoch_sums(events) -> Dict[int, Dict[str, float]]:
    """Re-derive per-epoch sums from ``trainer.*`` events, in order.

    Only driver-emitted accounting events are considered (workers never
    emit ``trainer.*`` names).  Float additions happen in event order,
    which matches the accumulator's order, so the result equals the
    ``EpochRecord`` fields exactly.
    """
    sums: Dict[int, Dict[str, float]] = {}
    for event in events:
        name = event.get("name", "")
        if not isinstance(name, str) or not name.startswith("trainer."):
            continue
        etype = event.get("type")
        if etype not in ("measure", "counter"):
            continue
        epoch = event.get("epoch")
        if not isinstance(epoch, int):
            continue
        per_epoch = sums.setdefault(
            epoch,
            {f"{field}_seconds": 0.0 for field in TIME_FIELDS}
            | {field: 0 for field in COUNT_FIELDS},
        )
        key = name[len("trainer."):]
        if key in per_epoch:
            per_epoch[key] += event["value"]
    return sums
