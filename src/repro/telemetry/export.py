"""Zero-dependency Prometheus-text exporter over a :class:`MetricsHub`.

``repro train --metrics-port N`` starts one of these on the driver: a
stdlib ``ThreadingHTTPServer`` on a daemon thread serving

* ``/metrics`` — Prometheus text exposition (version 0.0.4).  Counter
  totals render as ``repro_<name>_total{worker="<id>"}`` (the driver's
  own samples under ``worker="driver"``), gauges as ``repro_<name>``,
  plus per-worker liveness (``repro_worker_last_seen_seconds``).
  Counter values are integers end to end, so a scrape matches the
  trace's counter sums bit-exactly for the same run.
* ``/healthz`` — 200 while the server is up (process liveness).
* ``/readyz`` — 200 once the cluster marked the hub ready (all
  workers bootstrapped), 503 before.
* ``/snapshot.json`` — the raw :meth:`MetricsHub.snapshot` JSON that
  ``repro top --connect`` renders.

Port 0 binds an ephemeral port (tests); :attr:`MetricsExporter.port`
reports the bound one.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from .metrics import DRIVER_KEY, MetricsHub

__all__ = ["MetricsExporter", "render_prometheus", "sanitize_metric_name"]


def sanitize_metric_name(name: str) -> str:
    """Map a dotted repro metric name onto the Prometheus charset."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _worker_label(worker: int) -> str:
    return "driver" if worker == DRIVER_KEY else str(worker)


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(hub: MetricsHub) -> str:
    """Render the hub's totals as Prometheus text exposition."""
    snap = hub.snapshot()
    lines = []
    names = sorted(
        {
            name
            for per in snap["counters"].values()
            for name in per
        }
    )
    for name in names:
        metric = f"repro_{sanitize_metric_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        for worker_key in sorted(snap["counters"], key=int):
            per = snap["counters"][worker_key]
            if name in per:
                label = _worker_label(int(worker_key))
                lines.append(
                    f'{metric}{{worker="{label}"}} {int(per[name])}'
                )
    gauge_names = sorted(
        {name for per in snap["gauges"].values() for name in per}
    )
    for name in gauge_names:
        metric = f"repro_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        for worker_key in sorted(snap["gauges"], key=int):
            per = snap["gauges"][worker_key]
            if name in per:
                label = _worker_label(int(worker_key))
                lines.append(
                    f'{metric}{{worker="{label}"}} '
                    f"{_format_value(per[name])}"
                )
    if snap["last_seen"]:
        lines.append("# TYPE repro_worker_last_seen_seconds gauge")
        for worker_key in sorted(snap["last_seen"], key=int):
            label = _worker_label(int(worker_key))
            lines.append(
                f'repro_worker_last_seen_seconds{{worker="{label}"}} '
                f"{_format_value(snap['last_seen'][worker_key])}"
            )
    lines.append("# TYPE repro_exporter_ready gauge")
    lines.append(f"repro_exporter_ready {int(bool(snap['ready']))}")
    return "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    hub: MetricsHub  # set on the subclass by MetricsExporter

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(self.hub).encode("utf-8")
            self._reply(200, body, "text/plain; version=0.0.4")
        elif path == "/healthz":
            self._reply(200, b"ok\n", "text/plain")
        elif path == "/readyz":
            if self.hub.ready:
                self._reply(200, b"ready\n", "text/plain")
            else:
                self._reply(503, b"not ready\n", "text/plain")
        elif path == "/snapshot.json":
            body = json.dumps(self.hub.snapshot()).encode("utf-8")
            self._reply(200, body, "application/json")
        else:
            self._reply(404, b"not found\n", "text/plain")

    def _reply(self, code: int, body: bytes, ctype: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args: object) -> None:
        return  # never write scrape noise to the driver's stderr


class MetricsExporter:
    """Daemon-thread HTTP server exposing a hub; ``close()`` to stop."""

    def __init__(
        self, hub: MetricsHub, port: int = 0, host: str = "127.0.0.1"
    ) -> None:
        handler = type("_BoundHandler", (_Handler,), {"hub": hub})
        self._server = ThreadingHTTPServer((host, int(port)), handler)
        self._server.daemon_threads = True
        self.hub = hub
        self.host = host
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return int(self._server.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsExporter":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-metrics-exporter",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
