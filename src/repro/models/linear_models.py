"""The paper's three statistical models (§4.1): LR, SVM, Linear.

Loss functions exactly as printed in the paper (with mean instead of
sum, see :mod:`repro.models.base`):

* Logistic Regression: ``log(1 + exp(-y * theta.x)) + lambda/2 ||theta||^2``
* SVM (hinge):         ``max(0, 1 - y * theta.x) + lambda/2 ||theta||^2``
* Linear Regression:   ``(y - theta.x)^2 + lambda/2 ||theta||^2``

Classification labels are in {-1, +1}.
"""

from __future__ import annotations

import numpy as np

from ..data.sparse import SparseDataset
from .base import SparseLinearModel

__all__ = ["LogisticRegression", "LinearSVM", "LinearRegression"]


def _stable_log1pexp(x: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(1 + exp(x))``."""
    out = np.empty_like(x)
    positive = x > 0
    out[positive] = x[positive] + np.log1p(np.exp(-x[positive]))
    out[~positive] = np.log1p(np.exp(x[~positive]))
    return out


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class LogisticRegression(SparseLinearModel):
    """L2-regularised logistic regression with {-1, +1} labels."""

    name = "lr"

    def _instance_losses(self, scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
        return _stable_log1pexp(-labels * scores)

    def _loss_derivatives(self, scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
        # d/ds log(1 + exp(-y s)) = -y * sigmoid(-y s)
        return -labels * _sigmoid(-labels * scores)

    def predict_proba(
        self, dataset: SparseDataset, rows: np.ndarray, theta: np.ndarray
    ) -> np.ndarray:
        """P(label = +1) per row."""
        return _sigmoid(self.predict_scores(dataset, rows, theta))

    def accuracy(
        self, dataset: SparseDataset, rows: np.ndarray, theta: np.ndarray
    ) -> float:
        scores = self.predict_scores(dataset, rows, theta)
        predictions = np.where(scores >= 0, 1.0, -1.0)
        return float(np.mean(predictions == dataset.labels[rows]))


class LinearSVM(SparseLinearModel):
    """L2-regularised soft-margin SVM (hinge loss) with {-1, +1} labels."""

    name = "svm"

    def _instance_losses(self, scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, 1.0 - labels * scores)

    def _loss_derivatives(self, scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
        # Subgradient: -y on the margin-violating side, 0 elsewhere.
        return np.where(labels * scores < 1.0, -labels, 0.0)

    def accuracy(
        self, dataset: SparseDataset, rows: np.ndarray, theta: np.ndarray
    ) -> float:
        scores = self.predict_scores(dataset, rows, theta)
        predictions = np.where(scores >= 0, 1.0, -1.0)
        return float(np.mean(predictions == dataset.labels[rows]))


class LinearRegression(SparseLinearModel):
    """L2-regularised least squares."""

    name = "linear"

    def _instance_losses(self, scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
        return (labels - scores) ** 2

    def _loss_derivatives(self, scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
        return -2.0 * (labels - scores)
