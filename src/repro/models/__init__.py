"""Statistical models of §4.1 (LR, SVM, Linear) and §B.3 (MLP)."""

from .base import Model, SparseLinearModel
from .factorization_machine import FactorizationMachine
from .linear_models import LinearRegression, LinearSVM, LogisticRegression
from .mlp import DenseDataset, MLPClassifier

__all__ = [
    "Model",
    "SparseLinearModel",
    "LogisticRegression",
    "LinearSVM",
    "LinearRegression",
    "FactorizationMachine",
    "DenseDataset",
    "MLPClassifier",
    "make_model",
]


def make_model(name: str, num_features: int, reg_lambda: float = 0.01) -> Model:
    """Build a sparse model by name (the paper's three, plus ``fm``)."""
    models = {
        "lr": LogisticRegression,
        "svm": LinearSVM,
        "linear": LinearRegression,
        "fm": FactorizationMachine,
    }
    try:
        cls = models[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; choose from {sorted(models)}"
        ) from None
    return cls(num_features=num_features, reg_lambda=reg_lambda)
