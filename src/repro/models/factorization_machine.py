"""Second-order Factorization Machine (Rendle 2010).

The paper's related work leans on DiFacto (ref [30]), a distributed
factorization-machine system with quantized communication — FMs are the
canonical "large sparse model" beyond plain linear models.  This
implementation follows the standard O(k·nnz) formulation::

    score(x) = w0 + w.x + 1/2 * sum_f [ (sum_i v_if x_i)^2 - sum_i v_if^2 x_i^2 ]

Parameters are flattened into one theta vector — ``[w0, w (D), V (D*k)]``
— so the distributed trainer and every compressor treat FM gradients
exactly like the linear models'.  Gradients are sparse: a batch only
touches ``w0``, the active features' ``w`` entries, and the active
features' ``k`` factor rows.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..data.sparse import SparseDataset
from .base import Model
from .linear_models import _sigmoid, _stable_log1pexp

__all__ = ["FactorizationMachine"]


class FactorizationMachine(Model):
    """FM for binary classification ({-1, +1} labels, logistic loss).

    Args:
        num_features: input dimension ``D``.
        num_factors: latent dimension ``k`` (paper-scale systems use
            8–128; default 8).
        reg_lambda: L2 penalty on ``w`` and ``V`` (not the bias).
        init_scale: stddev of the factor initialisation.
        seed: initialisation seed.
    """

    name = "fm"

    def __init__(
        self,
        num_features: int,
        num_factors: int = 8,
        reg_lambda: float = 0.0,
        init_scale: float = 0.01,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, reg_lambda)
        if num_factors <= 0:
            raise ValueError("num_factors must be positive")
        self.num_factors = int(num_factors)
        self.init_scale = float(init_scale)
        self.seed = int(seed)

    # Layout: [w0 | w_0..w_{D-1} | V_{0,0}..V_{0,k-1} | V_{1,0}.. ...]
    @property
    def num_parameters(self) -> int:
        return 1 + self.num_features + self.num_features * self.num_factors

    def init_theta(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        theta = np.zeros(self.num_parameters)
        theta[1 + self.num_features:] = rng.normal(
            scale=self.init_scale, size=self.num_features * self.num_factors
        )
        return theta

    def _reg_loss(self, theta: np.ndarray) -> float:
        # The global bias w0 is conventionally unregularised.
        if self.reg_lambda == 0.0:
            return 0.0
        return 0.5 * self.reg_lambda * float(np.dot(theta[1:], theta[1:]))

    def _factor_keys(self, features: np.ndarray) -> np.ndarray:
        """Flat theta keys of the factor rows for the given features."""
        base = 1 + self.num_features + features * self.num_factors
        return (base[:, None] + np.arange(self.num_factors)[None, :]).ravel()

    # ------------------------------------------------------------------
    def _forward_batch(
        self, dataset: SparseDataset, rows: np.ndarray, theta: np.ndarray
    ):
        """Scores plus the per-row caches backprop needs."""
        w0 = theta[0]
        w = theta[1:1 + self.num_features]
        scores = np.empty(rows.size)
        caches = []
        for out_i, row_i in enumerate(rows):
            start, end = dataset.indptr[row_i], dataset.indptr[row_i + 1]
            cols = dataset.indices[start:end]
            x = dataset.data[start:end]
            v = theta[self._factor_keys(cols)].reshape(cols.size, self.num_factors)
            vx = v * x[:, None]  # (nnz, k)
            sum_vx = vx.sum(axis=0)  # (k,)
            interaction = 0.5 * float(np.dot(sum_vx, sum_vx) - (vx**2).sum())
            scores[out_i] = w0 + float(np.dot(x, w[cols])) + interaction
            caches.append((cols, x, vx, sum_vx))
        return scores, caches

    def batch_gradient(
        self, dataset: SparseDataset, rows: np.ndarray, theta: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            raise ValueError("batch must contain at least one row")
        scores, caches = self._forward_batch(dataset, rows, theta)
        labels = dataset.labels[rows]
        dscores = -labels * _sigmoid(-labels * scores) / rows.size

        grad = np.zeros(self.num_parameters)
        grad[0] = dscores.sum()
        for dscore, (cols, x, vx, sum_vx) in zip(dscores, caches):
            grad[1 + cols] += dscore * x
            # dV_if = x_i * (sum_vx_f - v_if x_i)
            dv = x[:, None] * (sum_vx[None, :] - vx)
            np.add.at(grad, self._factor_keys(cols), (dscore * dv).ravel())

        keys = np.flatnonzero(grad)
        values = grad[keys]
        if self.reg_lambda:
            # Lazy L2 on the touched weights/factors (not the bias).
            reg_mask = keys > 0
            values = values.copy()
            values[reg_mask] += self.reg_lambda * theta[keys[reg_mask]]
        loss = float(np.mean(_stable_log1pexp(-labels * scores)))
        return keys, values, loss + self._reg_loss(theta)

    # ------------------------------------------------------------------
    def data_loss(
        self, dataset: SparseDataset, rows: np.ndarray, theta: np.ndarray
    ) -> float:
        rows = np.asarray(rows, dtype=np.int64)
        scores, _ = self._forward_batch(dataset, rows, theta)
        labels = dataset.labels[rows]
        return float(np.mean(_stable_log1pexp(-labels * scores)))

    def loss(
        self, dataset: SparseDataset, rows: np.ndarray, theta: np.ndarray
    ) -> float:
        return self.data_loss(dataset, rows, theta) + self._reg_loss(theta)

    def accuracy(
        self, dataset: SparseDataset, rows: np.ndarray, theta: np.ndarray
    ) -> float:
        rows = np.asarray(rows, dtype=np.int64)
        scores, _ = self._forward_batch(dataset, rows, theta)
        predictions = np.where(scores >= 0, 1.0, -1.0)
        return float(np.mean(predictions == dataset.labels[rows]))

    def __repr__(self) -> str:
        return (
            f"FactorizationMachine(D={self.num_features}, k={self.num_factors}, "
            f"params={self.num_parameters})"
        )
