"""Multilayer perceptron for the Appendix B.3 neural-net experiment.

The paper trains a 20×20-input MLP with two fully connected layers of
600 units and a 10-way output on MNIST.  We implement the same
architecture (hidden width configurable so laptop-scale benches can
shrink it) with ReLU activations and softmax cross-entropy, entirely in
numpy, exposing the parameters as a single flattened ``theta`` vector so
the distributed trainer and every gradient compressor treat it exactly
like the linear models — the gradient is simply *dense*, which is the
regime where the paper observes key compression to be redundant
(Appendix B.3's closing remark).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .base import Model

__all__ = ["DenseDataset", "MLPClassifier"]


class DenseDataset:
    """Dense labelled dataset with the same batching API as SparseDataset.

    Args:
        features: float array of shape ``(num_rows, input_dim)``.
        labels: int class labels of shape ``(num_rows,)``.
    """

    def __init__(self, features: np.ndarray, labels: np.ndarray) -> None:
        self.features = np.asarray(features, dtype=np.float64)
        self.labels = np.asarray(labels)
        if self.features.ndim != 2:
            raise ValueError("features must be 2-D (rows x input_dim)")
        if self.labels.shape != (self.features.shape[0],):
            raise ValueError("labels must be parallel to feature rows")

    @property
    def num_rows(self) -> int:
        return self.features.shape[0]

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    def iter_batches(self, batch_size: int, rng: np.random.Generator, shuffle=True):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = np.arange(self.num_rows)
        if shuffle:
            rng.shuffle(order)
        for start in range(0, self.num_rows, batch_size):
            yield order[start:start + batch_size]

    def subset(self, rows: np.ndarray) -> "DenseDataset":
        rows = np.asarray(rows, dtype=np.int64)
        return DenseDataset(self.features[rows], self.labels[rows])

    def __repr__(self) -> str:
        return f"DenseDataset(rows={self.num_rows}, dim={self.num_features})"


class MLPClassifier(Model):
    """Fully connected ReLU network with softmax cross-entropy loss.

    Args:
        input_dim: input size (400 for the paper's 20×20 images).
        hidden_dims: hidden layer widths (paper: ``[600, 600]``).
        num_classes: output size (paper: 10).
        reg_lambda: L2 penalty on all weights (not biases).
        seed: initialisation seed (He-normal weights).
    """

    name = "mlp"

    def __init__(
        self,
        input_dim: int = 400,
        hidden_dims: Tuple[int, ...] = (600, 600),
        num_classes: int = 10,
        reg_lambda: float = 0.0,
        seed: int = 0,
    ) -> None:
        layer_dims = [int(input_dim), *[int(h) for h in hidden_dims], int(num_classes)]
        if any(dim <= 0 for dim in layer_dims):
            raise ValueError("all layer dimensions must be positive")
        super().__init__(num_features=input_dim, reg_lambda=reg_lambda)
        self.layer_dims = layer_dims
        self.num_classes = int(num_classes)
        self.seed = int(seed)
        # Flat layout: [W1, b1, W2, b2, ...]
        self._shapes: List[Tuple[Tuple[int, int], int]] = []
        offset = 0
        self._slices: List[Tuple[slice, slice]] = []
        for fan_in, fan_out in zip(layer_dims[:-1], layer_dims[1:]):
            w_size = fan_in * fan_out
            self._shapes.append(((fan_in, fan_out), fan_out))
            self._slices.append(
                (slice(offset, offset + w_size), slice(offset + w_size, offset + w_size + fan_out))
            )
            offset += w_size + fan_out
        self._num_parameters = offset

    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return self._num_parameters

    def init_theta(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        theta = np.zeros(self._num_parameters, dtype=np.float64)
        for (w_shape, _), (w_slice, _) in zip(self._shapes, self._slices):
            fan_in = w_shape[0]
            theta[w_slice] = rng.normal(
                scale=np.sqrt(2.0 / fan_in), size=w_shape[0] * w_shape[1]
            )
        return theta

    def _unpack(self, theta: np.ndarray) -> List[Tuple[np.ndarray, np.ndarray]]:
        layers = []
        for (w_shape, _), (w_slice, b_slice) in zip(self._shapes, self._slices):
            layers.append((theta[w_slice].reshape(w_shape), theta[b_slice]))
        return layers

    # ------------------------------------------------------------------
    def _forward(
        self, x: np.ndarray, layers: List[Tuple[np.ndarray, np.ndarray]]
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Forward pass; returns logits and post-activation caches."""
        activations = [x]
        h = x
        for i, (w, b) in enumerate(layers):
            z = h @ w + b
            if i < len(layers) - 1:
                h = np.maximum(z, 0.0)
                activations.append(h)
            else:
                return z, activations
        raise AssertionError("unreachable: network has at least one layer")

    @staticmethod
    def _softmax_ce(
        logits: np.ndarray, labels: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Mean cross-entropy and d(loss)/d(logits)."""
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        n = logits.shape[0]
        nll = -np.log(probs[np.arange(n), labels] + 1e-12)
        dlogits = probs
        dlogits[np.arange(n), labels] -= 1.0
        return float(nll.mean()), dlogits / n

    # ------------------------------------------------------------------
    def batch_gradient(
        self, dataset: DenseDataset, rows: np.ndarray, theta: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        rows = np.asarray(rows, dtype=np.int64)
        x = dataset.features[rows]
        labels = dataset.labels[rows]
        layers = self._unpack(theta)
        logits, activations = self._forward(x, layers)
        loss, delta = self._softmax_ce(logits, labels)

        grad = np.zeros_like(theta)
        for i in reversed(range(len(layers))):
            w, _ = layers[i]
            w_slice, b_slice = self._slices[i]
            h = activations[i]
            grad[w_slice] = (h.T @ delta).ravel()
            grad[b_slice] = delta.sum(axis=0)
            if self.reg_lambda:
                grad[w_slice] += self.reg_lambda * theta[w_slice]
            if i > 0:
                delta = (delta @ w.T) * (activations[i] > 0)

        keys = np.flatnonzero(grad)
        if self.reg_lambda:
            loss += 0.5 * self.reg_lambda * sum(
                float(np.dot(theta[ws], theta[ws])) for ws, _ in self._slices
            )
        return keys, grad[keys], loss

    def data_loss(
        self, dataset: DenseDataset, rows: np.ndarray, theta: np.ndarray
    ) -> float:
        rows = np.asarray(rows, dtype=np.int64)
        logits, _ = self._forward(dataset.features[rows], self._unpack(theta))
        loss, _ = self._softmax_ce(logits, dataset.labels[rows])
        return loss

    def loss(
        self, dataset: DenseDataset, rows: np.ndarray, theta: np.ndarray
    ) -> float:
        loss = self.data_loss(dataset, rows, theta)
        if self.reg_lambda:
            loss += 0.5 * self.reg_lambda * sum(
                float(np.dot(theta[ws], theta[ws])) for ws, _ in self._slices
            )
        return loss

    def accuracy(
        self, dataset: DenseDataset, rows: np.ndarray, theta: np.ndarray
    ) -> float:
        rows = np.asarray(rows, dtype=np.int64)
        logits, _ = self._forward(dataset.features[rows], self._unpack(theta))
        return float(np.mean(logits.argmax(axis=1) == dataset.labels[rows]))

    def __repr__(self) -> str:
        return f"MLPClassifier(dims={self.layer_dims}, params={self.num_parameters})"
