"""Model interface for SGD-trainable objectives.

A :class:`Model` knows how to compute, for a mini-batch of rows of a
:class:`~repro.data.sparse.SparseDataset`, the mean loss and the sparse
mean gradient in key–value form — the object SketchML compresses.

Conventions shared by all linear models here (matching §4.1):

* losses are *means* over the batch plus ``lambda/2 * ||theta||^2``
  (the paper writes sums; using means only rescales the tuned learning
  rate and keeps magnitudes comparable across batch sizes);
* the L2-regularisation gradient ``lambda * theta`` is applied lazily on
  the batch's *active* columns only, the standard sparse-training trick
  — it keeps gradients sparse, which the paper's setting presumes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..data.sparse import SparseDataset

__all__ = ["Model", "SparseLinearModel"]


class Model:
    """Abstract SGD-trainable model over a sparse dataset."""

    #: registry-style name used in benchmark tables.
    name: str = "abstract"

    def __init__(self, num_features: int, reg_lambda: float = 0.01) -> None:
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        if reg_lambda < 0:
            raise ValueError("reg_lambda must be non-negative")
        self.num_features = int(num_features)
        self.reg_lambda = float(reg_lambda)

    @property
    def num_parameters(self) -> int:
        """Dimension of the parameter vector ``theta``."""
        return self.num_features

    def init_theta(self) -> np.ndarray:
        """Initial parameter vector (zeros for convex linear models)."""
        return np.zeros(self.num_parameters, dtype=np.float64)

    def batch_gradient(
        self, dataset: SparseDataset, rows: np.ndarray, theta: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """Sparse mean gradient and mean loss for a batch.

        Returns:
            ``(keys, values, loss)`` — ascending nonzero gradient keys,
            parallel values, and the batch's regularised mean loss.
        """
        raise NotImplementedError

    def loss(
        self, dataset: SparseDataset, rows: np.ndarray, theta: np.ndarray
    ) -> float:
        """Regularised mean loss over ``rows`` (no gradient)."""
        raise NotImplementedError

    def data_loss(
        self, dataset: SparseDataset, rows: np.ndarray, theta: np.ndarray
    ) -> float:
        """Mean loss *without* the regulariser.

        This is the paper's evaluation metric: Figure 10 and Table 2
        report the testing loss of the data term, not the training
        objective (whose L2 penalty depends on the model norm and would
        mask convergence).
        """
        raise NotImplementedError

    def full_loss(self, dataset: SparseDataset, theta: np.ndarray) -> float:
        """Unregularised loss over a whole dataset (test evaluation)."""
        return self.data_loss(dataset, np.arange(dataset.num_rows), theta)

    def _reg_loss(self, theta: np.ndarray) -> float:
        if self.reg_lambda == 0.0:
            return 0.0
        return 0.5 * self.reg_lambda * float(np.dot(theta, theta))


class SparseLinearModel(Model):
    """Base for linear models ``score = theta . x``.

    Subclasses provide :meth:`_instance_losses` and
    :meth:`_loss_derivatives` in terms of scores and labels; this class
    handles batching, sparsification, and lazy regularisation.
    """

    def _instance_losses(self, scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Per-instance losses given scores and labels."""
        raise NotImplementedError

    def _loss_derivatives(self, scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """d(loss_i)/d(score_i) given scores and labels."""
        raise NotImplementedError

    def predict_scores(
        self, dataset: SparseDataset, rows: np.ndarray, theta: np.ndarray
    ) -> np.ndarray:
        return dataset.dot_rows(rows, theta)

    def batch_gradient(
        self, dataset: SparseDataset, rows: np.ndarray, theta: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            raise ValueError("batch must contain at least one row")
        scores = dataset.dot_rows(rows, theta)
        labels = dataset.labels[rows]
        coefficients = self._loss_derivatives(scores, labels) / rows.size
        dense_grad = dataset.gradient_rows(rows, coefficients)
        active = dataset.active_columns(rows)
        values = dense_grad[active]
        if self.reg_lambda:
            values = values + self.reg_lambda * theta[active]
        # Keep exact zeros out of the key-value stream (they carry no
        # update and would distort the compression accounting).
        nonzero = values != 0.0
        keys = active[nonzero]
        values = values[nonzero]
        loss = float(np.mean(self._instance_losses(scores, labels)))
        return keys, values, loss + self._reg_loss(theta)

    def loss(
        self, dataset: SparseDataset, rows: np.ndarray, theta: np.ndarray
    ) -> float:
        return self.data_loss(dataset, rows, theta) + self._reg_loss(theta)

    def data_loss(
        self, dataset: SparseDataset, rows: np.ndarray, theta: np.ndarray
    ) -> float:
        rows = np.asarray(rows, dtype=np.int64)
        scores = dataset.dot_rows(rows, theta)
        labels = dataset.labels[rows]
        return float(np.mean(self._instance_losses(scores, labels)))
